//! Offline property-testing harness with a proptest-compatible API subset.
//!
//! Supports the surface this workspace's property tests use:
//! - [`Strategy`] with `prop_map` / `prop_flat_map`
//! - numeric [`Range`](std::ops::Range) strategies, tuple strategies,
//!   [`collection::vec`], [`any`], and `&'static str` regex-subset string
//!   strategies (char classes with ranges, negation, `&&` intersection,
//!   and `{n,m}` repetition)
//! - the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header, plus
//!   [`prop_assert!`] / [`prop_assert_eq!`]
//!
//! There is no shrinking: a failing case panics with its case number, and
//! case generation is deterministic (seeded from the test name), so
//! failures reproduce exactly on re-run.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner {
    //! Deterministic RNG used to drive generation.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic generator seeded from the test name.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seeds from a test name via FNV-1a, so each test gets a stable,
        /// distinct stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { inner: StdRng::seed_from_u64(h) }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform in `[0.0, 1.0)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Run configuration (case count only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub use test_runner::{ProptestConfig, TestRng};

/// Error carried by `prop_assert!` failures out of a test case body.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy adapter returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64..self.end as f64).generate(rng) as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait ArbitraryValue: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained value of type `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specifications accepted by [`vec`].
    pub trait IntoSizeRange {
        /// Lower and upper (inclusive) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec length range");
            (self.start, self.end - 1)
        }
    }

    /// Strategy for vectors of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.max > self.min {
                self.min + rng.below((self.max - self.min + 1) as u64) as usize
            } else {
                self.min
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector with elements from `element` and a length within `size`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

mod regex_subset {
    //! The regex subset accepted by `&'static str` strategies: a sequence
    //! of atoms (literal chars or `[...]` classes with ranges, `^`
    //! negation, and `&&`-intersection of a nested class), each followed
    //! by an optional `{n}` / `{n,m}` repetition. Alternation, anchors,
    //! `*`/`+`/`?`, and escapes are not supported — the workspace's
    //! patterns don't use them.

    #[derive(Debug, Clone)]
    enum ClassItem {
        Single(char),
        Range(char, char),
    }

    #[derive(Debug, Clone)]
    struct ClassExpr {
        negated: bool,
        items: Vec<ClassItem>,
        intersect: Option<Box<ClassExpr>>,
    }

    impl ClassExpr {
        fn matches(&self, c: char) -> bool {
            let mut hit = self.items.iter().any(|item| match *item {
                ClassItem::Single(s) => s == c,
                ClassItem::Range(lo, hi) => (lo..=hi).contains(&c),
            });
            if self.negated {
                hit = !hit;
            }
            hit && self.intersect.as_ref().is_none_or(|i| i.matches(c))
        }
    }

    #[derive(Debug, Clone)]
    pub struct Atom {
        /// Characters this atom may produce (pre-expanded for sampling).
        pub choices: Vec<char>,
        pub min_rep: usize,
        pub max_rep: usize,
    }

    /// Parses `pattern` into atoms; panics on unsupported syntax so that a
    /// bad pattern fails loudly at test time.
    pub fn parse(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let mut atoms = Vec::new();
        while pos < chars.len() {
            let class = if chars[pos] == '[' {
                parse_class(&chars, &mut pos)
            } else {
                let c = chars[pos];
                assert!(
                    !"\\^$.|?*+(){}".contains(c),
                    "unsupported regex metacharacter {c:?} in {pattern:?}"
                );
                pos += 1;
                ClassExpr { negated: false, items: vec![ClassItem::Single(c)], intersect: None }
            };
            let (min_rep, max_rep) = parse_repetition(&chars, &mut pos);
            // Sample space: printable ASCII plus tab, matching what the
            // workspace's HTTP/text tests can round-trip.
            let choices: Vec<char> = (0x09u8..0x7f)
                .map(|b| b as char)
                .filter(|&c| c == '\t' || (' '..='~').contains(&c))
                .filter(|&c| class.matches(c))
                .collect();
            assert!(!choices.is_empty(), "empty character class in {pattern:?}");
            atoms.push(Atom { choices, min_rep, max_rep });
        }
        atoms
    }

    fn parse_class(chars: &[char], pos: &mut usize) -> ClassExpr {
        assert_eq!(chars[*pos], '[');
        *pos += 1;
        let negated = chars.get(*pos) == Some(&'^');
        if negated {
            *pos += 1;
        }
        let mut items = Vec::new();
        let mut intersect = None;
        loop {
            match chars.get(*pos) {
                None => panic!("unterminated character class"),
                Some(']') => {
                    *pos += 1;
                    break;
                }
                Some('&') if chars.get(*pos + 1) == Some(&'&') => {
                    *pos += 2;
                    assert_eq!(
                        chars.get(*pos),
                        Some(&'['),
                        "expected nested class after && intersection"
                    );
                    let nested = parse_class(chars, pos);
                    intersect = Some(Box::new(nested));
                }
                Some(&c) => {
                    *pos += 1;
                    // `a-z` range, unless `-` is the last char before `]`.
                    if chars.get(*pos) == Some(&'-')
                        && chars.get(*pos + 1).is_some_and(|&n| n != ']')
                    {
                        let hi = chars[*pos + 1];
                        *pos += 2;
                        items.push(ClassItem::Range(c, hi));
                    } else {
                        items.push(ClassItem::Single(c));
                    }
                }
            }
        }
        ClassExpr { negated, items, intersect }
    }

    fn parse_repetition(chars: &[char], pos: &mut usize) -> (usize, usize) {
        if chars.get(*pos) != Some(&'{') {
            return (1, 1);
        }
        *pos += 1;
        let read_num = |pos: &mut usize| -> usize {
            let start = *pos;
            while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
                *pos += 1;
            }
            chars[start..*pos].iter().collect::<String>().parse().expect("repetition count")
        };
        let min = read_num(pos);
        let max = if chars.get(*pos) == Some(&',') {
            *pos += 1;
            read_num(pos)
        } else {
            min
        };
        assert_eq!(chars.get(*pos), Some(&'}'), "unterminated repetition");
        *pos += 1;
        assert!(min <= max, "inverted repetition bounds");
        (min, max)
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = regex_subset::parse(self);
        let mut out = String::new();
        for atom in &atoms {
            let reps = if atom.max_rep > atom.min_rep {
                atom.min_rep + rng.below((atom.max_rep - atom.min_rep + 1) as u64) as usize
            } else {
                atom.min_rep
            };
            for _ in 0..reps {
                out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
            }
        }
        out
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// the process) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $( let $pat = $crate::Strategy::generate(&($strat), &mut rng); )+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property {} failed at case {}/{}: {}",
                        stringify!($name), case, config.cases, e);
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (2usize..6).generate(&mut rng);
            assert!((2..6).contains(&v));
            let f = (-5.0..5.0f64).generate(&mut rng);
            assert!((-5.0..5.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_honor_range() {
        let mut rng = TestRng::from_name("vecs");
        for _ in 0..200 {
            let v = proptest::collection::vec(0.0..1.0f64, 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
        let exact = proptest::collection::vec(0u64..9, 7usize).generate(&mut rng);
        assert_eq!(exact.len(), 7);
    }

    #[test]
    fn regex_subset_classes() {
        let mut rng = TestRng::from_name("regex");
        for _ in 0..200 {
            let s = "[a-zA-Z0-9._-]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || ".-_".contains(c)), "{s}");

            let h = "[a-z][a-z0-9-]{0,15}".generate(&mut rng);
            assert!(h.chars().next().unwrap().is_ascii_lowercase());
            assert!(h.len() <= 16);

            let v = "[ -~&&[^:]]{0,30}".generate(&mut rng);
            assert!(v.chars().all(|c| (' '..='~').contains(&c) && c != ':'), "{v:?}");
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let strat = (2usize..5)
            .prop_flat_map(|n| proptest::collection::vec(0.0..1.0f64, n).prop_map(move |v| (n, v)));
        let mut rng = TestRng::from_name("flat");
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns bind, asserts pass, config honored.
        #[test]
        fn macro_smoke((a, b) in (0u64..10, 0u64..10), flip in any::<bool>()) {
            prop_assert!(a < 10 && b < 10);
            let _ = flip;
            prop_assert_eq!(a + b, b + a);
        }
    }
}
