//! Offline drop-in subset of the `parking_lot` API.
//!
//! Backed by `std::sync` primitives. Matches the parking_lot calling
//! convention the workspace relies on: `lock()` / `read()` / `write()`
//! return guards directly (no `Result`), and a poisoned std lock is
//! recovered rather than propagated, mirroring parking_lot's lack of
//! poisoning.

#![forbid(unsafe_code)]

use std::sync::{self, TryLockError};

/// A mutual exclusion primitive (std-backed, non-poisoning interface).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (std-backed, non-poisoning interface).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Blocks until notified, atomically releasing the guard's lock.
    pub fn wait<T: ?Sized>(&self, guard: &mut MutexGuard<'_, T>) {
        // parking_lot mutates the guard in place; with std we have to
        // round-trip through a move, so take/replace via an Option dance
        // is not possible on &mut. Instead rely on std's wait taking the
        // guard by value — callers in this workspace only use the
        // notify_all/wait_while pattern below.
        let _ = guard;
        unimplemented!("use wait_while on the std-backed Condvar stub");
    }

    /// Blocks while `condition` holds.
    pub fn wait_while<'a, T, F>(
        &self,
        guard: MutexGuard<'a, T>,
        condition: F,
    ) -> MutexGuard<'a, T>
    where
        F: FnMut(&mut T) -> bool,
    {
        self.inner
            .wait_while(guard, condition)
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
