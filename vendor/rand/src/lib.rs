//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! This workspace builds in an air-gapped environment with no crates.io
//! access, so the external `rand` crate is replaced by this minimal,
//! dependency-free implementation of the surface the workspace actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`).
//!
//! `StdRng` here is xoshiro256++ seeded via SplitMix64 — deterministic,
//! fast, and statistically strong enough for the workload generators and
//! tests in this repository. It intentionally does NOT reproduce the
//! upstream `StdRng` (ChaCha12) stream; seeded traces are reproducible
//! within this workspace but differ from upstream `rand`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform random source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (stream expansion via
    /// SplitMix64, as recommended by the xoshiro authors).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift bounded sampling; the tiny modulo bias of a
                // 64-bit source over these spans is irrelevant for tests.
                let r = rng.next_u64() as u128 % span;
                (low as i128 + r as i128) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let r = rng.next_u64() as u128 % span;
                (low as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let v = low + unit * (high - low);
        // Guard against rounding up to the excluded endpoint.
        if v >= high {
            low
        } else {
            v
        }
    }
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_closed(rng, low as f64, high as f64) as f32
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`] (the upstream `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::draw(rng) as f32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its natural uniform distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expansion (Vigna's recommended seeding).
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias used by some call sites.
    pub type SmallRng = StdRng;
}

/// A convenience re-export for `rand::thread_rng()`-free code paths.
pub mod prelude {
    pub use super::{rngs::StdRng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(0.25..1.5);
            assert!((0.25..1.5).contains(&v), "{v}");
        }
    }

    #[test]
    fn unit_floats_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_endpoints() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Inclusive ranges can return the upper endpoint.
        let top = (0..1000).filter(|_| rng.gen_range(0u16..=1) == 1).count();
        assert!(top > 400 && top < 600, "{top}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits}");
    }
}
