//! No-op `Serialize` / `Deserialize` derive shims.
//!
//! The workspace builds offline without the real serde. Types keep their
//! `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` annotations so
//! the real crates can be dropped back in later; these shims accept the
//! attributes and expand to nothing. Actual JSON (de)serialization in the
//! workspace is hand-rolled in `covenant-core`.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]` attributes; expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]` attributes; expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
