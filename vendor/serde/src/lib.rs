//! Offline facade for `serde`.
//!
//! Re-exports no-op `Serialize` / `Deserialize` derive macros so existing
//! `#[derive(...)]` annotations compile unchanged in this air-gapped
//! workspace. There is no serialization framework behind them; JSON
//! handling is hand-rolled in `covenant-core`.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
