//! Offline mini benchmark harness exposing the subset of the `criterion`
//! API this workspace uses: `criterion_group!` / `criterion_main!`,
//! `Criterion::bench_function`, `benchmark_group` + `bench_with_input`,
//! `Bencher::iter`, and `BenchmarkId::from_parameter`.
//!
//! Timing model: a short warm-up, then a fixed number of timed samples,
//! reporting the mean ns/iter (median-of-samples is also kept). Results
//! accumulate on the [`Criterion`] instance so custom `main` functions can
//! export them (see `covenant-bench`'s JSON emitters).

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One recorded benchmark measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Fully qualified benchmark id (`group/param` or bare function name).
    pub id: String,
    /// Mean nanoseconds per iteration across samples.
    pub mean_ns: f64,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
    /// Number of timed samples taken.
    pub samples: usize,
}

/// Benchmark identifier, `group_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    param: String,
}

impl BenchmarkId {
    /// Builds an id from a displayable parameter (e.g. problem size).
    pub fn from_parameter<P: fmt::Display>(param: P) -> Self {
        BenchmarkId { param: param.to_string() }
    }

    /// Builds an id from a function name and parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(function: S, param: P) -> Self {
        BenchmarkId { param: format!("{}/{}", function.into(), param) }
    }
}

/// Passed to benchmark closures; drives the timing loop.
pub struct Bencher {
    warmup: Duration,
    sample_count: usize,
    iters_per_sample: u64,
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            warmup: Duration::from_millis(50),
            sample_count: 30,
            iters_per_sample: 0, // calibrated during warm-up
            samples_ns: Vec::new(),
        }
    }

    /// Times `routine`, recording ns/iter samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find an iteration count that makes one
        // sample take roughly 1 ms, so Instant overhead is negligible.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warmup.as_nanos() as f64 / warm_iters.max(1) as f64;
        self.iters_per_sample = ((1_000_000.0 / per_iter.max(1.0)) as u64).clamp(1, 1_000_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / self.iters_per_sample as f64);
        }
    }

    fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
    }

    fn median_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        let mut v = self.samples_ns.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<Measurement>,
    quiet: bool,
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        self.record(id.to_string(), &b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// All measurements recorded so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    fn record(&mut self, id: String, b: &Bencher) {
        let m = Measurement {
            id,
            mean_ns: b.mean_ns(),
            median_ns: b.median_ns(),
            samples: b.samples_ns.len(),
        };
        if !self.quiet {
            println!(
                "{:<40} mean {:>12.1} ns/iter  median {:>12.1} ns/iter  ({} samples)",
                m.id, m.mean_ns, m.median_ns, m.samples
            );
        }
        self.results.push(m);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; this harness
    /// keeps its fixed sampling scheme).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        let full = format!("{}/{}", self.name, id.param);
        self.criterion.record(full, &b);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<S: fmt::Display, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        let full = format!("{}/{}", self.name, id);
        self.criterion.record(full, &b);
        self
    }

    /// Closes the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group: a runner function invoking each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_measurement() {
        let mut c = Criterion { results: Vec::new(), quiet: true };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].mean_ns > 0.0);
    }

    #[test]
    fn group_ids_are_prefixed() {
        let mut c = Criterion { results: Vec::new(), quiet: true };
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
        assert_eq!(c.results()[0].id, "grp/4");
    }
}
