//! `covenant` CLI: run agreement-enforcement deployments from JSON specs
//! and regenerate the paper's experiments.
//!
//! ```text
//! covenant example-spec                 # print a starter deployment spec
//! covenant check deployment.json [--json] [--deny all|V1,...] [--list-rules]
//!                                      # static agreement-contract verifier:
//!                                      # rules V1-V7 with file:line:col
//!                                      # diagnostics; exits non-zero on
//!                                      # errors or denied warnings
//! covenant levels deployment.json      # entitlement table for a spec
//! covenant run deployment.json [--csv | --json]
//!                                      # simulate a spec; report rates as a
//!                                      # table, CSV series, or a JSON report
//!                                      # with engine counters
//! covenant figures                     # reproduce Figures 1 and 6-10
//! covenant cluster deployment.json [secs]
//!                                      # launch the spec's combining tree as
//!                                      # real OS processes, run for `secs`
//!                                      # (default 5), scrape every node's
//!                                      # /metrics endpoint, and tear down
//! ```

use covenant::agreements::PrincipalId;
use covenant::core::scenarios;
use covenant::core::DeploymentSpec;
use covenant::sim::Simulation;
use std::process::ExitCode;

fn main() -> ExitCode {
    // If this process was fork/exec'd as a cluster node, run the node and
    // never return; the CLI path continues below otherwise.
    covenant::cluster::maybe_run_node();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("example-spec") => {
            println!("{EXAMPLE_SPEC}");
            ExitCode::SUCCESS
        }
        Some("check") => check_cmd(&args),
        Some("levels") => with_spec(args.get(1), false, |spec| {
            let g = spec.build_graph()?;
            let lv = g.access_levels();
            println!(
                "{:<16}{:>12}{:>14}{:>14}",
                "principal", "capacity", "mandatory", "optional"
            );
            for (i, p) in g.principals().iter().enumerate() {
                let id = PrincipalId(i);
                println!(
                    "{:<16}{:>12.1}{:>14.1}{:>14.1}",
                    p.name,
                    p.capacity,
                    lv.mandatory(id),
                    lv.optional(id)
                );
            }
            Ok(())
        }),
        Some("run") => with_spec(args.get(1), true, |spec| {
            let csv = args.iter().any(|a| a == "--csv");
            let json = args.iter().any(|a| a == "--json");
            let cfg = spec.build_sim()?;
            let names: Vec<String> = spec.principals.iter().map(|p| p.name.clone()).collect();
            let duration = cfg.duration;
            let report = Simulation::new(cfg).run();
            if csv {
                println!("time_s,principal,rate_req_s");
                for (i, name) in names.iter().enumerate() {
                    for (t, r) in report.rates.series(PrincipalId(i)) {
                        println!("{t},{name},{r}");
                    }
                }
                return Ok(());
            }
            if json {
                use covenant::core::json::Value;
                let principals = Value::Arr(
                    names
                        .iter()
                        .enumerate()
                        .map(|(i, name)| {
                            let id = PrincipalId(i);
                            Value::Obj(vec![
                                ("name".into(), name.as_str().into()),
                                ("offered".into(), (report.offered[i] as f64).into()),
                                (
                                    "served_per_sec".into(),
                                    report
                                        .rates
                                        .mean_rate_secs(id, duration * 0.2, duration)
                                        .into(),
                                ),
                                ("deferred".into(), (report.deferred[i] as f64).into()),
                                (
                                    "mean_response_ms".into(),
                                    (report.response[i].mean().unwrap_or(0.0) * 1000.0).into(),
                                ),
                            ])
                        })
                        .collect(),
                );
                let doc = Value::Obj(vec![
                    ("duration_s".into(), duration.into()),
                    ("principals".into(), principals),
                    ("counters".into(), covenant::core::sim_counters_json(&report)),
                ]);
                println!("{}", doc.to_pretty());
                return Ok(());
            }
            println!(
                "{:<16}{:>12}{:>12}{:>12}{:>14}",
                "principal", "offered", "served/s", "deferred", "mean resp ms"
            );
            for (i, name) in names.iter().enumerate() {
                let id = PrincipalId(i);
                println!(
                    "{:<16}{:>12}{:>12.1}{:>12}{:>14.1}",
                    name,
                    report.offered[i],
                    report.rates.mean_rate_secs(id, duration * 0.2, duration),
                    report.deferred[i],
                    report.response[i].mean().unwrap_or(0.0) * 1000.0
                );
            }
            println!(
                "\nserver drops: {}; tree messages: {} (pairwise equivalent {})",
                report.dropped_server, report.tree_messages, report.pairwise_messages_equivalent
            );
            Ok(())
        }),
        Some("cluster") => with_spec(args.get(1), true, |spec| {
            let secs = args
                .get(2)
                .and_then(|a| a.parse::<f64>().ok())
                .unwrap_or(5.0)
                .clamp(0.5, 600.0);
            let mut cluster = covenant::cluster::Cluster::launch(spec)?;
            println!("origin backend: http://{}/", cluster.origin_addr());
            println!("{:<6}{:<12}{:<24}{:<24}{:<24}", "node", "role", "wire", "metrics", "http");
            for n in cluster.nodes() {
                println!(
                    "{:<6}{:<12}{:<24}{:<24}{:<24}",
                    n.node,
                    n.role,
                    n.wire_addr.to_string(),
                    n.metrics_addr.to_string(),
                    n.http_addr.map(|a| a.to_string()).unwrap_or_else(|| "-".into())
                );
            }
            println!("\nrunning for {secs:.1} s …\n");
            std::thread::sleep(std::time::Duration::from_secs_f64(secs));
            let ids: Vec<usize> = cluster.nodes().iter().map(|n| n.node).collect();
            for node in ids {
                println!("--- node {node} /metrics ---");
                match cluster.scrape(node) {
                    Ok(body) => print!("{body}"),
                    Err(e) => println!("scrape failed: {e}"),
                }
            }
            cluster.shutdown();
            Ok(())
        }),
        Some("figures") => {
            let f1 = scenarios::fig1();
            println!("== Figure 1 ==");
            println!(
                "uncoordinated (A {:.0}, B {:.0})  coordinated (A {:.0}, B {:.0})\n",
                f1.uncoordinated.0, f1.uncoordinated.1, f1.coordinated.0, f1.coordinated.1
            );
            for (name, scenario) in [
                ("Figure 6", scenarios::fig6(30.0)),
                ("Figure 7", scenarios::fig7(30.0)),
                ("Figure 8", scenarios::fig8(10.0)),
                ("Figure 9", scenarios::fig9(30.0)),
                ("Figure 10", scenarios::fig10(30.0)),
            ] {
                println!("== {name} ==");
                println!("{}", scenario.run().phase_table());
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: covenant <example-spec | check <spec.json> [--json] [--deny all|V1,...] [--list-rules] | levels <spec.json> | run <spec.json> [--csv | --json] | figures | cluster <spec.json> [secs]>"
            );
            ExitCode::FAILURE
        }
    }
}

/// `covenant check`: run the static verifier over a spec file and report
/// `file:line:col` diagnostics. Exits non-zero on error-severity findings
/// or on any finding whose rule appears in `--deny`.
fn check_cmd(args: &[String]) -> ExitCode {
    use covenant::verify::{check_text, has_errors, to_json, RuleMeta, VRule};
    if args.iter().any(|a| a == "--list-rules") {
        for r in VRule::registry() {
            println!("{:<4}{:<9}{}", r.code(), r.severity().to_string(), r.describe());
        }
        return ExitCode::SUCCESS;
    }
    let deny_val = args.iter().position(|a| a == "--deny").map(|i| i + 1);
    let deny: Vec<VRule> = match deny_val.map(|i| args.get(i)) {
        None => Vec::new(),
        Some(None) => {
            eprintln!("--deny needs an argument: `all` or a comma-separated rule list");
            return ExitCode::FAILURE;
        }
        Some(Some(spec)) => match VRule::parse_deny(spec) {
            Some(rules) => rules,
            None => {
                eprintln!("unknown rule in --deny {spec}; see --list-rules");
                return ExitCode::FAILURE;
            }
        },
    };
    let path = args
        .iter()
        .enumerate()
        .skip(1)
        .find(|(i, a)| !a.starts_with("--") && Some(*i) != deny_val)
        .map(|(_, a)| a.clone());
    let Some(path) = path else {
        eprintln!("usage: covenant check <spec.json> [--json] [--deny all|V1,...] [--list-rules]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let diags = match check_text(&path, &text) {
        Ok(diags) => diags,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let json_out = args.iter().any(|a| a == "--json");
    if json_out {
        println!("{}", to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
    }
    if has_errors(&diags) || diags.iter().any(|d| deny.contains(&d.rule)) {
        return ExitCode::FAILURE;
    }
    if !json_out {
        if diags.is_empty() {
            println!("{path}: OK");
        } else {
            println!("{path}: OK with {} warning(s)", diags.len());
        }
    }
    ExitCode::SUCCESS
}

fn with_spec(
    path: Option<&String>,
    verify: bool,
    f: impl FnOnce(&DeploymentSpec) -> Result<(), Box<dyn std::error::Error>>,
) -> ExitCode {
    let Some(path) = path else {
        eprintln!("missing spec path");
        return ExitCode::FAILURE;
    };
    let run = || -> Result<(), Box<dyn std::error::Error>> {
        let json = std::fs::read_to_string(path)?;
        if verify {
            let diags = covenant::verify::check_text(path, &json)?;
            for d in &diags {
                eprintln!("{d}");
            }
            if covenant::verify::has_errors(&diags) {
                return Err("spec failed verification; see diagnostics above (suppress a \
                            rule deliberately via the spec's \"allow\" list)"
                    .into());
            }
        }
        let spec = DeploymentSpec::from_json(&json)?;
        f(&spec)
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const EXAMPLE_SPEC: &str = r#"{
  "principals": [
    {"name": "provider", "capacity": 320.0},
    {"name": "gold"},
    {"name": "bronze"}
  ],
  "agreements": [
    {"issuer": "provider", "holder": "gold", "lb": 0.7, "ub": 1.0},
    {"issuer": "provider", "holder": "bronze", "lb": 0.1, "ub": 1.0}
  ],
  "redirector_tree": [null, 0],
  "policy": {"kind": "community"},
  "queue_mode": {"kind": "credit_retry", "retry_delay": 0.05},
  "clients": [
    {"principal": "gold", "redirector": 0, "phases": [[60.0, 300.0]], "max_outstanding": 64},
    {"principal": "bronze", "redirector": 1, "phases": [[60.0, 300.0]], "max_outstanding": 64}
  ],
  "duration": 60.0
}"#;
