//! `covenant` CLI: run agreement-enforcement deployments and scenarios
//! from JSON specs and regenerate the paper's experiments.
//!
//! ```text
//! covenant example-spec                 # print a starter deployment spec
//! covenant check spec.json [--json] [--deny all|V1,...] [--list-rules]
//!                                      # static agreement-contract verifier:
//!                                      # rules V1-V10 with file:line:col
//!                                      # diagnostics; exits non-zero on
//!                                      # errors or denied warnings
//! covenant levels spec.json            # entitlement table for a spec
//! covenant run spec.json [--csv | --json] [--deny ...]
//!                                      # simulate the deployment (fixed-delay
//!                                      # network, static load); report rates
//!                                      # as a table, CSV series, or JSON
//! covenant sim scenario.json [--csv | --json] [--deny ...]
//!                                      # simulate the full scenario: shared
//!                                      # links, timeline dynamics, seeded
//!                                      # reply sizes; --json output is
//!                                      # replay-deterministic
//! covenant figures                     # reproduce Figures 1 and 6-10
//! covenant cluster spec.json [secs] [--deny ...]
//!                                      # launch the spec's combining tree as
//!                                      # real OS processes, run for `secs`
//!                                      # (default 5), scrape every node's
//!                                      # /metrics endpoint, and tear down
//! ```
//!
//! All spec-taking subcommands share one flag surface (see `cli`):
//! `--json`, `--csv`, and `--deny` mean the same thing everywhere, and
//! every spec is verified before it runs. `run` treats a scenario file as
//! its embedded deployment (net and timeline ignored); `sim` materializes
//! everything.

mod cli;

use cli::Options;
use covenant::agreements::PrincipalId;
use covenant::core::scenarios;
use covenant::core::{DeploymentSpec, ScenarioSpec};
use covenant::sim::{SimReport, Simulation};
use std::process::ExitCode;

fn main() -> ExitCode {
    // If this process was fork/exec'd as a cluster node, run the node and
    // never return; the CLI path continues below otherwise.
    covenant::cluster::maybe_run_node();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str);
    let opts = match cli::parse(args.get(1..).unwrap_or(&[])) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        Some("example-spec") => {
            println!("{EXAMPLE_SPEC}");
            ExitCode::SUCCESS
        }
        Some("check") => check_cmd(&opts),
        Some("levels") => with_spec(&opts, false, |spec| {
            let g = spec.build_graph()?;
            let lv = g.access_levels();
            println!(
                "{:<16}{:>12}{:>14}{:>14}",
                "principal", "capacity", "mandatory", "optional"
            );
            for (i, p) in g.principals().iter().enumerate() {
                let id = PrincipalId(i);
                println!(
                    "{:<16}{:>12.1}{:>14.1}{:>14.1}",
                    p.name,
                    p.capacity,
                    lv.mandatory(id),
                    lv.optional(id)
                );
            }
            Ok(())
        }),
        Some("run") => with_spec(&opts, true, |spec| {
            let mut spec = spec.clone();
            if let Some(d) = opts.duration {
                spec.duration = d;
            }
            let cfg = spec.build_sim()?;
            let names: Vec<String> = spec.principals.iter().map(|p| p.name.clone()).collect();
            let report = Simulation::new(cfg).run();
            print_report(&opts, &names, spec.duration, &report, false);
            Ok(())
        }),
        Some("sim") => sim_cmd(&opts),
        Some("cluster") => with_spec(&opts, true, |spec| {
            let secs = opts
                .rest
                .first()
                .and_then(|a| a.parse::<f64>().ok())
                .unwrap_or(5.0)
                .clamp(0.5, 600.0);
            let mut cluster = covenant::cluster::Cluster::launch(spec)?;
            println!("origin backend: http://{}/", cluster.origin_addr());
            println!("{:<6}{:<12}{:<24}{:<24}{:<24}", "node", "role", "wire", "metrics", "http");
            for n in cluster.nodes() {
                println!(
                    "{:<6}{:<12}{:<24}{:<24}{:<24}",
                    n.node,
                    n.role,
                    n.wire_addr.to_string(),
                    n.metrics_addr.to_string(),
                    n.http_addr.map(|a| a.to_string()).unwrap_or_else(|| "-".into())
                );
            }
            println!("\nrunning for {secs:.1} s …\n");
            std::thread::sleep(std::time::Duration::from_secs_f64(secs));
            let ids: Vec<usize> = cluster.nodes().iter().map(|n| n.node).collect();
            for node in ids {
                println!("--- node {node} /metrics ---");
                match cluster.scrape(node) {
                    Ok(body) => print!("{body}"),
                    Err(e) => println!("scrape failed: {e}"),
                }
            }
            cluster.shutdown();
            Ok(())
        }),
        Some("figures") => {
            let f1 = scenarios::fig1();
            println!("== Figure 1 ==");
            println!(
                "uncoordinated (A {:.0}, B {:.0})  coordinated (A {:.0}, B {:.0})\n",
                f1.uncoordinated.0, f1.uncoordinated.1, f1.coordinated.0, f1.coordinated.1
            );
            for (name, scenario) in [
                ("Figure 6", scenarios::fig6(30.0)),
                ("Figure 7", scenarios::fig7(30.0)),
                ("Figure 8", scenarios::fig8(10.0)),
                ("Figure 9", scenarios::fig9(30.0)),
                ("Figure 10", scenarios::fig10(30.0)),
            ] {
                println!("== {name} ==");
                println!("{}", scenario.run().phase_table());
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: covenant <example-spec | check <spec.json> [--json] [--deny all|V1,...] \
                 [--list-rules] | levels <spec.json> | run <spec.json> [--csv | --json] | \
                 sim <scenario.json> [--csv | --json] | figures | cluster <spec.json> [secs]>"
            );
            ExitCode::FAILURE
        }
    }
}

/// `covenant check`: run the static verifier over a spec file and report
/// `file:line:col` diagnostics. Exits non-zero on error-severity findings
/// or on any finding whose rule appears in `--deny`.
fn check_cmd(opts: &Options) -> ExitCode {
    use covenant::verify::{has_errors, to_json, RuleMeta, VRule};
    if opts.list_rules {
        for r in VRule::registry() {
            println!("{:<4}{:<9}{}", r.code(), r.severity().to_string(), r.describe());
        }
        return ExitCode::SUCCESS;
    }
    let path = match opts
        .require_path("covenant check <spec.json> [--json] [--deny all|V1,...] [--list-rules]")
    {
        Ok(path) => path,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let diags = match read_and_check(path) {
        Ok(diags) => diags,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.json {
        println!("{}", to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
    }
    if has_errors(&diags) || diags.iter().any(|d| opts.deny.contains(&d.rule)) {
        return ExitCode::FAILURE;
    }
    if !opts.json {
        if diags.is_empty() {
            println!("{path}: OK");
        } else {
            println!("{path}: OK with {} warning(s)", diags.len());
        }
    }
    ExitCode::SUCCESS
}

/// `covenant sim`: materialize a full scenario — shared links, timeline
/// dynamics, seeded reply sizes — and run it on the streaming engine.
fn sim_cmd(opts: &Options) -> ExitCode {
    let run = || -> Result<(), Box<dyn std::error::Error>> {
        let path =
            opts.require_path("covenant sim <scenario.json> [--csv | --json] [--deny ...]")?;
        let text = verify_gate(path, opts)?;
        let mut sc = ScenarioSpec::from_json(&text)?;
        if let Some(d) = opts.duration {
            sc.deployment.duration = d;
        }
        if let Some(s) = opts.seed {
            sc.seed = s;
        }
        let cfg = sc.build_sim()?;
        let names: Vec<String> =
            sc.deployment.principals.iter().map(|p| p.name.clone()).collect();
        let report = Simulation::new(cfg).run();
        print_report(opts, &names, sc.deployment.duration, &report, true);
        Ok(())
    };
    exit_of(run())
}

fn with_spec(
    opts: &Options,
    verify: bool,
    f: impl FnOnce(&DeploymentSpec) -> Result<(), Box<dyn std::error::Error>>,
) -> ExitCode {
    let run = || -> Result<(), Box<dyn std::error::Error>> {
        let path = opts.require_path("covenant <subcommand> <spec.json> [flags]")?;
        let text = if verify {
            verify_gate(path, opts)?
        } else {
            std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
        };
        let spec = DeploymentSpec::from_json(&text)?;
        f(&spec)
    };
    exit_of(run())
}

fn exit_of(r: Result<(), Box<dyn std::error::Error>>) -> ExitCode {
    match r {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn read_and_check(path: &str) -> Result<Vec<covenant::verify::Diagnostic>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    covenant::verify::check_text(path, &text).map_err(|e| format!("{path}: {e}"))
}

/// Reads the spec, verifies it (rules V1–V10 over the full scenario), and
/// fails on error-severity findings or anything in `--deny`.
fn verify_gate(path: &str, opts: &Options) -> Result<String, Box<dyn std::error::Error>> {
    use covenant::verify::RuleMeta;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let diags = covenant::verify::check_text(path, &text)?;
    for d in &diags {
        eprintln!("{d}");
    }
    if covenant::verify::has_errors(&diags) {
        return Err("spec failed verification; see diagnostics above (suppress a \
                    rule deliberately via the spec's \"allow\" list)"
            .into());
    }
    if let Some(d) = diags.iter().find(|d| opts.deny.contains(&d.rule)) {
        return Err(format!(
            "spec failed verification: {} finding denied by --deny (suppress it \
             deliberately via the spec's \"allow\" list)",
            d.rule.code()
        )
        .into());
    }
    Ok(text)
}

/// One report printer behind `run` and `sim`: rate table by default, CSV
/// series with `--csv`, the shared JSON document with `--json`
/// (deterministic — wall-clock throughput zeroed — for `sim`).
fn print_report(
    opts: &Options,
    names: &[String],
    duration: f64,
    report: &SimReport,
    deterministic: bool,
) {
    if opts.csv {
        println!("time_s,principal,rate_req_s");
        for (i, name) in names.iter().enumerate() {
            for (t, r) in report.rates.series(PrincipalId(i)) {
                println!("{t},{name},{r}");
            }
        }
        return;
    }
    if opts.json {
        let doc = covenant::core::run_report_json(names, duration, report, deterministic);
        println!("{}", doc.to_pretty());
        return;
    }
    println!(
        "{:<16}{:>12}{:>12}{:>12}{:>14}",
        "principal", "offered", "served/s", "deferred", "mean resp ms"
    );
    for (i, name) in names.iter().enumerate() {
        let id = PrincipalId(i);
        println!(
            "{:<16}{:>12}{:>12.1}{:>12}{:>14.1}",
            name,
            report.offered[i],
            report.rates.mean_rate_secs(id, duration * 0.2, duration),
            report.deferred[i],
            report.response[i].mean().unwrap_or(0.0) * 1000.0
        );
    }
    println!(
        "\nserver drops: {}; tree messages: {} (pairwise equivalent {})",
        report.dropped_server, report.tree_messages, report.pairwise_messages_equivalent
    );
    if let Some(net) = covenant::core::sim_counters(report).net {
        println!(
            "net: {} transfers, {:.2} MB over shared links, peak {} concurrent, \
             mean transfer {:.1} ms",
            net.transfers,
            net.bytes / 1.0e6,
            net.peak_concurrent,
            net.mean_transfer_secs * 1000.0
        );
    }
}

const EXAMPLE_SPEC: &str = r#"{
  "principals": [
    {"name": "provider", "capacity": 320.0},
    {"name": "gold"},
    {"name": "bronze"}
  ],
  "agreements": [
    {"issuer": "provider", "holder": "gold", "lb": 0.7, "ub": 1.0},
    {"issuer": "provider", "holder": "bronze", "lb": 0.1, "ub": 1.0}
  ],
  "redirector_tree": [null, 0],
  "policy": {"kind": "community"},
  "queue_mode": {"kind": "credit_retry", "retry_delay": 0.05},
  "clients": [
    {"principal": "gold", "redirector": 0, "phases": [[60.0, 300.0]], "max_outstanding": 64},
    {"principal": "bronze", "redirector": 1, "phases": [[60.0, 300.0]], "max_outstanding": 64}
  ],
  "duration": 60.0
}"#;
