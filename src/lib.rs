//! `covenant` — distributed enforcement of resource sharing agreements.
//!
//! Umbrella crate re-exporting the full workspace: the ticket/currency
//! agreement model, the simplex LP solver, window-based schedulers, the
//! combining-tree coordination layer, the discrete-event simulator, the
//! HTTP substrate, the Layer-7 and Layer-4 redirector prototypes, the
//! synthetic workload generator, and the deployment facade.
//!
//! This is a from-scratch Rust reproduction of Tao Zhao and Vijay
//! Karamcheti, *Enforcing Resource Sharing Agreements among Distributed
//! Server Clusters* (IPDPS 2002). See `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for the paper-vs-measured record.

#![forbid(unsafe_code)]

pub use covenant_agreements as agreements;
pub use covenant_cluster as cluster;
pub use covenant_coord as coord;
pub use covenant_core as core;
pub use covenant_enforce as enforce;
pub use covenant_http as http;
pub use covenant_l4 as l4;
pub use covenant_l7 as l7;
pub use covenant_lp as lp;
pub use covenant_reactor as reactor;
pub use covenant_sched as sched;
pub use covenant_sim as sim;
pub use covenant_tree as tree;
pub use covenant_verify as verify;
pub use covenant_wire as wire;
pub use covenant_workload as workload;
