//! Shared option parsing for the `covenant` subcommands.
//!
//! Every spec-taking subcommand (`check`, `levels`, `run`, `sim`,
//! `cluster`) accepts the same surface: one positional spec path plus the
//! common flags parsed here — `--json` (machine-readable output), `--csv`
//! (time-series output where meaningful), and `--deny all|V1,…`
//! (escalate verifier findings to hard failures, exactly as `check`
//! interprets it). The parser is strict: an unknown `--flag` is an error,
//! never silently ignored.
//!
//! The old ad-hoc simulation overrides survive as deprecated aliases:
//! `--duration <secs>` and `--seed <n>` rewrite the corresponding
//! `ScenarioSpec` fields after parsing, with a warning pointing at the
//! scenario file as the durable home for both.

use covenant::verify::{RuleMeta, VRule};

/// Parsed command line for one subcommand invocation.
#[derive(Debug, Default)]
pub struct Options {
    /// First free (non-flag) argument: the spec path.
    pub path: Option<String>,
    /// Remaining free arguments (e.g. the optional `cluster` run time).
    pub rest: Vec<String>,
    /// `--json`: emit a machine-readable report instead of tables.
    pub json: bool,
    /// `--csv`: emit the per-second rate series as CSV.
    pub csv: bool,
    /// `--list-rules`: print the verifier rule registry and exit.
    pub list_rules: bool,
    /// `--deny`: findings from these rules fail the command.
    pub deny: Vec<VRule>,
    /// Deprecated `--duration` alias onto the spec's `duration` field.
    pub duration: Option<f64>,
    /// Deprecated `--seed` alias onto the scenario's `seed` field.
    pub seed: Option<u64>,
}

impl Options {
    /// The spec path, or a per-command usage error.
    pub fn require_path(&self, usage: &str) -> Result<&str, String> {
        self.path.as_deref().ok_or_else(|| format!("missing spec path\nusage: {usage}"))
    }
}

/// Parses every argument after the subcommand name.
pub fn parse(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => o.json = true,
            "--csv" => o.csv = true,
            "--list-rules" => o.list_rules = true,
            "--deny" => {
                let spec = it.next().ok_or(
                    "--deny needs an argument: `all` or a comma-separated rule list",
                )?;
                o.deny = VRule::parse_deny(spec)
                    .ok_or_else(|| format!("unknown rule in --deny {spec}; see --list-rules"))?;
            }
            "--duration" => {
                let v = it.next().ok_or("--duration needs a number of seconds")?;
                eprintln!(
                    "warning: --duration is deprecated; set \"duration\" in the spec file"
                );
                o.duration =
                    Some(v.parse().map_err(|_| format!("--duration needs a number, got {v}"))?);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a non-negative integer")?;
                eprintln!("warning: --seed is deprecated; set \"seed\" in the scenario file");
                o.seed = Some(
                    v.parse()
                        .map_err(|_| format!("--seed needs a non-negative integer, got {v}"))?,
                );
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag}"));
            }
            free => {
                if o.path.is_none() {
                    o.path = Some(free.to_string());
                } else {
                    o.rest.push(free.to_string());
                }
            }
        }
    }
    Ok(o)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn positional_and_flags_mix_in_any_order() {
        let o = parse(&args(&["--json", "spec.json", "--deny", "V1,V9", "3"])).unwrap();
        assert_eq!(o.path.as_deref(), Some("spec.json"));
        assert_eq!(o.rest, vec!["3".to_string()]);
        assert!(o.json && !o.csv);
        assert_eq!(o.deny, vec![VRule::References, VRule::TimelineOrder]);
    }

    #[test]
    fn deny_all_expands_to_every_rule() {
        let o = parse(&args(&["spec.json", "--deny", "all"])).unwrap();
        assert_eq!(o.deny.len(), VRule::registry().len());
    }

    #[test]
    fn unknown_flags_and_bad_deny_are_errors() {
        assert!(parse(&args(&["--jsno"])).is_err());
        assert!(parse(&args(&["--deny"])).is_err());
        assert!(parse(&args(&["--deny", "V99"])).is_err());
    }

    #[test]
    fn deprecated_aliases_parse_with_values() {
        let o = parse(&args(&["s.json", "--duration", "12.5", "--seed", "9"])).unwrap();
        assert_eq!(o.duration, Some(12.5));
        assert_eq!(o.seed, Some(9));
        assert!(parse(&args(&["--duration", "soon"])).is_err());
    }
}
