//! Live-socket integration: both prototype redirectors enforcing the same
//! agreement graph on loopback, driven through the public umbrella API.

use covenant::agreements::AgreementGraph;
use covenant::coord::{AdmissionControl, Coordinator};
use covenant::http::{HttpClient, OriginServer, StatusCode};
use covenant::l4::{L4Config, L4Redirector, L4Service};
use covenant::l7::{L7Config, L7Redirector};
use covenant::sched::SchedulerConfig;
use covenant::tree::Topology;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One origin, A [0.3,1] and B [0.6,1].
fn system(capacity: f64) -> AgreementGraph {
    let mut g = AgreementGraph::new();
    let s = g.add_principal("S", capacity);
    let a = g.add_principal("A", 0.0);
    let b = g.add_principal("B", 0.0);
    g.add_agreement(s, a, 0.3, 1.0).unwrap();
    g.add_agreement(s, b, 0.6, 1.0).unwrap();
    g
}

#[test]
fn l7_and_l4_enforce_the_same_agreements() {
    let g = system(150.0);
    let levels = g.access_levels();
    let origin = OriginServer::bind("127.0.0.1:0", 2000.0, 64, Duration::from_secs(2)).unwrap();

    // Shared coordinator: both redirectors are nodes of one combining tree,
    // exactly the paper's deployment shape.
    let coordinator = Coordinator::new(Topology::star(2, 0.0), 0.0);
    let l7_ctrl = AdmissionControl::new(
        0,
        &levels,
        SchedulerConfig::community_default(),
        coordinator.clone(),
    );
    let l4_ctrl = AdmissionControl::new(
        1,
        &levels,
        SchedulerConfig::community_default(),
        coordinator.clone(),
    );

    let l7 = L7Redirector::start(
        "127.0.0.1:0",
        L7Config {
            principal_names: vec!["S".into(), "A".into(), "B".into()],
            backends: [(0, origin.addr())].into(),
        },
        l7_ctrl,
    )
    .unwrap();
    let l4 = L4Redirector::start(
        L4Config {
            services: vec![L4Service {
                principal: covenant::agreements::PrincipalId(2),
                bind: "127.0.0.1:0".into(),
            }],
            backends: [(0, origin.addr())].into(),
            park_limit: 256,
            live_limit: 1024,
        },
        l4_ctrl,
    )
    .unwrap();

    // A's clients flood via L7; B's clients flood via L4.
    let l7_addr = l7.addr();
    let l4_addr = l4.service_addr(covenant::agreements::PrincipalId(2)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(3);
    let a_done = Arc::new(AtomicU64::new(0));
    let b_done = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let done = Arc::clone(&a_done);
        handles.push(std::thread::spawn(move || {
            let client = HttpClient {
                max_redirects: 64,
                self_redirect_pause: Duration::from_millis(10),
                ..HttpClient::new()
            };
            while Instant::now() < deadline {
                if let Ok(r) = client.get(&format!("http://{l7_addr}/org/A/x")) {
                    if r.response.status == StatusCode::OK {
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
        let done = Arc::clone(&b_done);
        handles.push(std::thread::spawn(move || {
            let client = HttpClient { timeout: Duration::from_millis(500), ..HttpClient::new() };
            while Instant::now() < deadline {
                if let Ok(r) = client.get(&format!("http://{l4_addr}/x")) {
                    if r.response.status == StatusCode::OK {
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let a_rate = a_done.load(Ordering::Relaxed) as f64 / 3.0;
    let b_rate = b_done.load(Ordering::Relaxed) as f64 / 3.0;
    // θ-fairness with floors 45/90 and 15 leftover; under symmetric flood B
    // lands near 90+ and A near 45+; exact splits depend on demand noise,
    // so assert the enforcement-critical properties only.
    assert!(a_rate >= 30.0, "A starved: {a_rate}");
    assert!(b_rate >= 70.0, "B under floor: {b_rate}");
    assert!(b_rate > a_rate, "B ({b_rate}) must outpace A ({a_rate})");
    assert!(a_rate + b_rate <= 170.0, "pool overrun: {}", a_rate + b_rate);
    // Coordination actually happened over the shared tree.
    assert!(coordinator.messages() > 0);
}
