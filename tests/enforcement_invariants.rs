//! Cross-crate integration tests: enforcement invariants that must hold
//! for *any* agreement graph and load, exercised through the whole
//! pipeline (agreements → LP → window scheduler → simulator).

use covenant::agreements::{AgreementGraph, PrincipalId};
use covenant::sched::{CommunityScheduler, GlobalView, ProviderScheduler, SchedulerConfig, WindowScheduler};
use covenant::sim::{QueueMode, SimConfig, Simulation};
use covenant::workload::{ClientMachine, PhasedLoad};

/// Small deterministic pseudo-random stream for test-case generation.
struct Lcg(u64);
impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed | 1)
    }
    fn f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((self.0 >> 11) as f64) / ((1u64 << 53) as f64)
    }
}

fn random_graph(n: usize, density: f64, rng: &mut Lcg) -> AgreementGraph {
    let mut g = AgreementGraph::new();
    let ids: Vec<_> = (0..n)
        .map(|i| g.add_principal(format!("P{i}"), (rng.f64() * 500.0).round()))
        .collect();
    for (x, &i) in ids.iter().enumerate() {
        let mut budget: f64 = 0.95;
        for (y, &j) in ids.iter().enumerate() {
            if x == y || budget < 0.05 {
                continue;
            }
            if rng.f64() < density {
                let lb = (rng.f64() * budget.min(0.4) * 100.0).round() / 100.0;
                let ub = ((lb + rng.f64() * 0.5) * 100.0).round().min(100.0) / 100.0;
                if lb <= ub {
                    g.add_agreement(i, j, lb, ub).unwrap();
                    budget -= lb;
                }
            }
        }
    }
    g
}

/// For any random graph and demand vector, the community plan must
/// (a) never exceed any server capacity, (b) never exceed any queue,
/// (c) serve every principal at least min(demand, MC_i), and
/// (d) never exceed any pairwise agreement upper bound.
#[test]
fn community_plans_respect_agreements_on_random_graphs() {
    let mut rng = Lcg::new(2002);
    for case in 0..40 {
        let n = 2 + (rng.f64() * 5.0) as usize;
        let g = random_graph(n, 0.4, &mut rng);
        let levels = g.access_levels();
        let queues: Vec<f64> = (0..n).map(|_| (rng.f64() * 400.0).round()).collect();
        let plan = CommunityScheduler::new().plan(&levels, &queues);

        for k in 0..n {
            assert!(
                plan.server_load(k) <= levels.capacities()[k] + 1e-6,
                "case {case}: server {k} overloaded: {} > {}",
                plan.server_load(k),
                levels.capacities()[k]
            );
        }
        for (i, &queued) in queues.iter().enumerate() {
            let p = PrincipalId(i);
            let admitted = plan.admitted(p);
            assert!(
                admitted <= queued + 1e-6,
                "case {case}: principal {i} over-served"
            );
            let floor = levels.mandatory(p).min(queued);
            assert!(
                admitted >= floor - 1e-6,
                "case {case}: principal {i} mandatory violated: {admitted} < {floor}"
            );
            for k in 0..n {
                let pk = PrincipalId(k);
                let ub = levels.mand_share(p, pk) + levels.opt_share(p, pk);
                assert!(
                    plan.assignments[i][k] <= ub + 1e-6,
                    "case {case}: pair ({i},{k}) exceeds agreement upper bound"
                );
            }
        }
    }
}

/// The provider plan obeys the same safety invariants and additionally
/// never serves anyone beyond MC_i + OC_i.
#[test]
fn provider_plans_respect_agreements_on_random_graphs() {
    let mut rng = Lcg::new(77);
    for case in 0..40 {
        let n = 2 + (rng.f64() * 5.0) as usize;
        let g = random_graph(n, 0.4, &mut rng);
        let levels = g.access_levels();
        let queues: Vec<f64> = (0..n).map(|_| (rng.f64() * 400.0).round()).collect();
        let prices: Vec<f64> = (0..n).map(|_| (rng.f64() * 5.0).round()).collect();
        let plan = ProviderScheduler::new(prices).plan(&levels, &queues);

        let total_cap: f64 = levels.capacities().iter().sum();
        assert!(plan.total_admitted() <= total_cap + 1e-6, "case {case}: pool overloaded");
        for (i, &queued) in queues.iter().enumerate() {
            let p = PrincipalId(i);
            let admitted = plan.admitted(p);
            assert!(admitted <= queued + 1e-6, "case {case}: queue exceeded");
            assert!(
                admitted <= levels.mandatory(p) + levels.optional(p) + 1e-6,
                "case {case}: principal {i} beyond optional ceiling"
            );
            assert!(
                admitted >= levels.mandatory(p).min(queued) - 1e-6,
                "case {case}: principal {i} mandatory violated"
            );
            for k in 0..n {
                assert!(
                    plan.server_load(k) <= levels.capacities()[k] + 1e-6,
                    "case {case}: server {k} overloaded"
                );
            }
        }
    }
}

/// A distributed deployment (many redirectors, each seeing part of the
/// load) must produce the same aggregate service rates as a single
/// redirector seeing everything.
#[test]
fn distributed_equals_centralized() {
    let build = |n_redirectors: usize| {
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 120.0);
        let a = g.add_principal("A", 0.0);
        let b = g.add_principal("B", 0.0);
        g.add_agreement(s, a, 0.3, 1.0).unwrap();
        g.add_agreement(s, b, 0.6, 1.0).unwrap();
        let dur = 30.0;
        let mut cfg = SimConfig::new(g, dur)
            .with_tree(covenant::tree::Topology::star(n_redirectors, 0.0), 0.0);
        // Spread each principal's 3 clients across the redirectors.
        for c in 0..3 {
            cfg = cfg
                .client(
                    ClientMachine::uniform(c, a, PhasedLoad::constant(60.0, dur)),
                    c % n_redirectors,
                )
                .client(
                    ClientMachine::uniform(3 + c, b, PhasedLoad::constant(60.0, dur)),
                    (c + 1) % n_redirectors,
                );
        }
        let r = Simulation::new(cfg).run();
        (
            r.rates.mean_rate_secs(a, 10.0, 30.0),
            r.rates.mean_rate_secs(b, 10.0, 30.0),
        )
    };
    let single = build(1);
    let multi = build(3);
    assert!(
        (single.0 - multi.0).abs() < 6.0,
        "A: single {} vs distributed {}",
        single.0,
        multi.0
    );
    assert!(
        (single.1 - multi.1).abs() < 6.0,
        "B: single {} vs distributed {}",
        single.1,
        multi.1
    );
    // And both enforce: B ≥ its mandatory 72, A ≥ its mandatory 36.
    assert!(multi.1 >= 66.0, "B {}", multi.1);
    assert!(multi.0 >= 30.0, "A {}", multi.0);
}

/// All three queuing modes converge to the same steady-state shares; they
/// differ in latency, not allocation.
#[test]
fn queue_modes_agree_on_shares() {
    let run = |mode: QueueMode| {
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 100.0);
        let a = g.add_principal("A", 0.0);
        let b = g.add_principal("B", 0.0);
        g.add_agreement(s, a, 0.25, 1.0).unwrap();
        g.add_agreement(s, b, 0.75, 1.0).unwrap();
        let dur = 30.0;
        let cfg = SimConfig::new(g, dur)
            .with_mode(mode)
            .client(ClientMachine::uniform(0, a, PhasedLoad::constant(150.0, dur)), 0)
            .client(ClientMachine::uniform(1, b, PhasedLoad::constant(150.0, dur)), 0);
        let r = Simulation::new(cfg).run();
        (
            r.rates.mean_rate_secs(a, 10.0, dur),
            r.rates.mean_rate_secs(b, 10.0, dur),
        )
    };
    for mode in [
        QueueMode::Explicit,
        QueueMode::CreditRetry { retry_delay: 0.05 },
        QueueMode::CreditPark,
    ] {
        let (a, b) = run(mode.clone());
        assert!((a - 25.0).abs() < 5.0, "{mode:?}: A {a}");
        assert!((b - 75.0).abs() < 5.0, "{mode:?}: B {b}");
    }
}

/// The conservative fallback never admits more than the configured
/// fraction of the mandatory share, for any demand.
#[test]
fn conservative_fallback_is_bounded() {
    let mut g = AgreementGraph::new();
    let s = g.add_principal("S", 200.0);
    let a = g.add_principal("A", 0.0);
    g.add_agreement(s, a, 0.5, 1.0).unwrap();
    let mut ws = WindowScheduler::new(&g.access_levels(), SchedulerConfig::community_default());
    for demand in [0.0, 1.0, 5.0, 100.0, 10_000.0] {
        let plan = ws.plan_window(&GlobalView::Unknown, &[0.0, demand]);
        // Half of A's mandatory 100/s = 50/s = 5 per 100 ms window.
        assert!(plan.admitted(a) <= 5.0 + 1e-9, "demand {demand}: {}", plan.admitted(a));
        assert!(plan.admitted(a) <= demand + 1e-9);
    }
}
