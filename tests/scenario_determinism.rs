//! Tier-1 gates over the shipped scenario library (`examples/scenarios/`):
//! every scenario must verify clean under the strictest setting, and must
//! be replay-deterministic — two runs with the declared seed produce
//! byte-identical report JSON (the same document `covenant sim --json`
//! prints).

use covenant::core::{run_report_json, ScenarioSpec};
use covenant::sim::Simulation;
use std::path::PathBuf;

fn shipped_scenarios() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/scenarios");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 6,
        "scenario library must ship at least 6 scenarios, found {}",
        paths.len()
    );
    paths
}

#[test]
fn every_shipped_scenario_replays_byte_identically() {
    for path in shipped_scenarios() {
        let text = std::fs::read_to_string(&path).expect("scenario readable");
        let sc = ScenarioSpec::from_json(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let names: Vec<String> =
            sc.deployment.principals.iter().map(|p| p.name.clone()).collect();
        let render = || {
            let report = Simulation::new(sc.build_sim().expect("scenario builds")).run();
            run_report_json(&names, sc.deployment.duration, &report, true).to_pretty()
        };
        let (a, b) = (render(), render());
        assert!(!a.is_empty());
        assert_eq!(a, b, "{} is not replay-deterministic", path.display());
    }
}

#[test]
fn every_shipped_scenario_verifies_clean_under_deny_all() {
    for path in shipped_scenarios() {
        let text = std::fs::read_to_string(&path).expect("scenario readable");
        let name = path.display().to_string();
        let diags = covenant::verify::check_text(&name, &text)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            diags.is_empty(),
            "{name} must pass `covenant check --deny all` with zero findings: {diags:?}"
        );
    }
}

#[test]
fn shipped_scenarios_exercise_links_and_every_dynamic() {
    let mut kinds: Vec<String> = Vec::new();
    let mut with_net = 0usize;
    for path in shipped_scenarios() {
        let text = std::fs::read_to_string(&path).expect("scenario readable");
        let sc = ScenarioSpec::from_json(&text).expect("scenario parses");
        if sc.net.is_some() {
            with_net += 1;
        }
        kinds.extend(sc.timeline.iter().map(|ev| ev.kind().to_string()));
    }
    assert!(with_net >= 5, "the library must exercise the link model broadly");
    for required in [
        "flash_crowd",
        "diurnal",
        "renegotiate",
        "server_fail",
        "server_recover",
        "inflate",
        "restart_redirector",
    ] {
        assert!(
            kinds.iter().any(|k| k == required),
            "no shipped scenario uses timeline kind {required}"
        );
    }
}
