//! Long-horizon stability ("soak") and determinism of the full pipeline.

use covenant::agreements::{AgreementGraph, PrincipalId};
use covenant::sim::{QueueMode, SimConfig, Simulation};
use covenant::tree::Topology;
use covenant::workload::{ClientMachine, PhasedLoad};

fn community() -> AgreementGraph {
    let mut g = AgreementGraph::new();
    let s1 = g.add_principal("S1", 160.0);
    let s2 = g.add_principal("S2", 160.0);
    let a = g.add_principal("A", 0.0);
    let b = g.add_principal("B", 0.0);
    for s in [s1, s2] {
        g.add_agreement(s, a, 0.25, 1.0).unwrap();
        g.add_agreement(s, b, 0.55, 1.0).unwrap();
    }
    g
}

/// Ten simulated minutes of sustained overload across two redirectors:
/// rates must hold steady in every minute (no drift, no leak, no slow
/// starvation), and bookkeeping must conserve requests.
#[test]
fn ten_minute_soak_is_stable() {
    let duration = 600.0;
    let a = PrincipalId(2);
    let b = PrincipalId(3);
    let cfg = SimConfig::new(community(), duration)
        .with_tree(Topology::star(2, 0.0), 0.0)
        .closed_loop_client(
            ClientMachine::uniform(0, a, PhasedLoad::constant(400.0, duration)),
            0,
            64,
        )
        .closed_loop_client(
            ClientMachine::uniform(1, b, PhasedLoad::constant(400.0, duration)),
            1,
            64,
        );
    let report = Simulation::new(cfg).run();

    // Entitlements: A mandatory 80, B mandatory 176; pool 320. Under
    // symmetric flood θ-max equalizes served fractions, bounded below by
    // B's floor: B sits exactly at 176 and A takes the remaining 144.
    for minute in 1..10 {
        let from = minute as f64 * 60.0;
        let to = from + 60.0;
        let ra = report.rates.mean_rate_secs(a, from, to);
        let rb = report.rates.mean_rate_secs(b, from, to);
        assert!(rb >= 170.0, "minute {minute}: B {rb} under floor");
        assert!(ra >= 76.0, "minute {minute}: A {ra} under floor");
        assert!(ra + rb <= 330.0, "minute {minute}: pool overrun {}", ra + rb);
        // Stability: every minute within a tight band of the steady state.
        assert!((ra - 144.0).abs() < 12.0, "minute {minute}: A drifted to {ra}");
        assert!((rb - 176.0).abs() < 12.0, "minute {minute}: B drifted to {rb}");
    }

    // Conservation: completions never exceed admissions, admissions never
    // exceed offered plus retries (deferred re-arrivals).
    for i in [2usize, 3] {
        assert!(report.completed(i) <= report.admitted[i]);
        assert!(report.admitted[i] as f64 <= (report.offered[i] + report.deferred[i]) as f64);
    }
}

/// Bitwise determinism: identical configurations produce identical reports
/// in every observable, across queue modes.
#[test]
fn full_pipeline_is_deterministic() {
    for mode in [
        QueueMode::Explicit,
        QueueMode::CreditRetry { retry_delay: 0.05 },
        QueueMode::CreditPark,
    ] {
        let build = || {
            let a = PrincipalId(2);
            let b = PrincipalId(3);
            let cfg = SimConfig::new(community(), 45.0)
                .with_mode(mode.clone())
                .with_tree(Topology::chain(3, 0.1), 0.5)
                .closed_loop_client(
                    ClientMachine::poisson(0, a, PhasedLoad::constant(300.0, 45.0), 42),
                    0,
                    32,
                )
                .closed_loop_client(
                    ClientMachine::poisson(1, b, PhasedLoad::constant(300.0, 45.0), 43),
                    2,
                    32,
                );
            let r = Simulation::new(cfg).run();
            (
                r.offered.clone(),
                r.admitted.clone(),
                r.deferred.clone(),
                r.completed(2),
                r.completed(3),
                r.tree_messages,
                r.rates.series(PrincipalId(2)),
            )
        };
        let first = build();
        let second = build();
        assert_eq!(first, second, "mode {mode:?} not deterministic");
    }
}
