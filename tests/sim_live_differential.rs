//! Simulator-vs-live differential test: the tentpole claim of the shared
//! enforcement core is that a live control plane and a simulation of the
//! same scenario make *identical* per-window admission decisions.
//!
//! The simulator runs a Figure-6-style two-redirector overload scenario
//! with per-arrival decision recording on. The recorded arrival sequence is
//! then replayed in virtual time against two live [`AdmissionControl`]
//! instances sharing one [`Coordinator`] tree — the same topology, levels,
//! and scheduler configuration. Every decision must match the recorded one
//! exactly (admit/defer *and* assigned server), with tolerance zero.
//!
//! Replay ordering mirrors the engine's event tie-break (window ticks sort
//! before same-time arrivals): before feeding an arrival at time `t`, every
//! window boundary `k·w ≤ t` is rolled on all nodes, in node order — the
//! same lock-step order the engine uses. Boundary times are computed with
//! the engine's exact expression (`k as f64 * window`) so float ties break
//! identically.

use covenant::agreements::AgreementGraph;
use covenant::coord::{AdmissionControl, Coordinator, ShardCore};
use covenant::sim::{ArrivalDecision, QueueMode, SimConfig, Simulation};
use covenant::tree::Topology;
use covenant::workload::{ClientMachine, PhasedLoad};
use covenant::enforce::ArrivalOutcome;
use covenant::sched::SchedulerConfig;

/// Figure 6's community: one server at 100 req/s, A entitled to
/// [0.2, 1.0], B to [0.8, 1.0].
fn fig6_graph() -> AgreementGraph {
    let mut g = AgreementGraph::new();
    let s = g.add_principal("S", 100.0);
    let a = g.add_principal("A", 0.0);
    let b = g.add_principal("B", 0.0);
    g.add_agreement(s, a, 0.2, 1.0).unwrap();
    g.add_agreement(s, b, 0.8, 1.0).unwrap();
    g
}

/// Runs the simulator scenario and returns its recorded decision trace.
fn simulate(duration: f64) -> Vec<ArrivalDecision> {
    let g = fig6_graph();
    let a = covenant::agreements::PrincipalId(1);
    let b = covenant::agreements::PrincipalId(2);
    // A overloads redirector 0 for the whole run; B joins at redirector 1
    // after one second — demand shifts mid-run, so the replay exercises
    // cold start, conservative fallback, EWMA tracking, and contention.
    let cfg = SimConfig::new(g, duration)
        .with_tree(Topology::star(2, 0.0), 0.0)
        .with_mode(QueueMode::CreditRetry { retry_delay: 0.05 })
        .client(ClientMachine::uniform(0, a, PhasedLoad::constant(90.0, duration)), 0)
        .client(
            ClientMachine::uniform(1, b, PhasedLoad::new().idle(1.0).then(duration - 1.0, 70.0)),
            1,
        )
        .with_decision_recording();
    Simulation::new(cfg).run().decisions
}

/// Replays the trace against live admission controls in virtual time and
/// returns, per decision, what the live control plane decided.
fn replay(decisions: &[ArrivalDecision], duration: f64) -> Vec<Option<usize>> {
    let levels = fig6_graph().access_levels();
    let window = SchedulerConfig::community_default().window_secs;
    let coordinator = Coordinator::new(Topology::star(2, 0.0), 0.0);
    let ctrls: Vec<_> = (0..2)
        .map(|node| {
            AdmissionControl::new(
                node,
                &levels,
                SchedulerConfig::community_default(),
                coordinator.clone(),
            )
        })
        .collect();

    // Next window boundary to roll; index 0 is the engine's priming tick
    // at t = 0 (it observes zero arrivals into the estimator).
    let mut boundary: u64 = 0;
    let mut outcomes = Vec::with_capacity(decisions.len());
    for d in decisions {
        // The engine sorts ticks before same-time arrivals, so a boundary
        // exactly at the arrival time rolls first. Exact float comparison
        // on the engine's own boundary expression keeps ties identical.
        loop {
            let t = boundary as f64 * window;
            if t > d.time || t > duration {
                break;
            }
            for ctrl in &ctrls {
                ctrl.roll_window_at(None, t);
            }
            boundary += 1;
        }
        assert_eq!(d.cost, 1.0, "replay assumes unit-cost arrivals");
        outcomes.push(ctrls[d.redirector].try_admit(d.principal, None));
    }
    outcomes
}

/// Replays the trace against reactor shard cores — the lock-free
/// state machines the sharded epoll data planes own one-per-thread —
/// joined to one coordinator tree exactly as the live shards are.
fn replay_sharded(decisions: &[ArrivalDecision], duration: f64) -> Vec<Option<usize>> {
    let levels = fig6_graph().access_levels();
    let window = SchedulerConfig::community_default().window_secs;
    let coordinator = Coordinator::new(Topology::star(2, 0.0), 0.0);
    let mut shards: Vec<_> = (0..2)
        .map(|node| {
            ShardCore::new(
                node,
                &levels,
                SchedulerConfig::community_default(),
                coordinator.clone(),
            )
        })
        .collect();

    let mut boundary: u64 = 0;
    let mut outcomes = Vec::with_capacity(decisions.len());
    for d in decisions {
        loop {
            let t = boundary as f64 * window;
            if t > d.time || t > duration {
                break;
            }
            for shard in shards.iter_mut() {
                shard.roll_window_at(None, t);
            }
            boundary += 1;
        }
        assert_eq!(d.cost, 1.0, "replay assumes unit-cost arrivals");
        outcomes.push(shards[d.redirector].try_admit_at(d.principal, None, d.time));
    }
    outcomes
}

/// The tentpole acceptance test: every recorded simulator decision —
/// admit/defer and the assigned server — is reproduced by the live control
/// plane, with tolerance zero.
#[test]
fn live_control_plane_reproduces_simulator_decisions_exactly() {
    let duration = 3.0;
    let decisions = simulate(duration);

    // The trace must be substantial and actually exercise contention on
    // both redirectors, otherwise the comparison proves nothing.
    assert!(decisions.len() > 300, "thin trace: {}", decisions.len());
    for r in 0..2 {
        let on_r = decisions.iter().filter(|d| d.redirector == r);
        assert!(on_r.clone().count() > 50, "redirector {r} barely used");
        assert!(
            on_r.clone().any(|d| matches!(d.outcome, ArrivalOutcome::Forward { .. })),
            "redirector {r} admitted nothing"
        );
        assert!(
            on_r.clone().any(|d| d.outcome == ArrivalOutcome::Defer),
            "redirector {r} deferred nothing (no contention exercised)"
        );
    }

    let live = replay(&decisions, duration);
    assert_eq!(live.len(), decisions.len());
    let mut mismatches = 0;
    for (i, (d, got)) in decisions.iter().zip(&live).enumerate() {
        let want = match d.outcome {
            ArrivalOutcome::Forward { server } => Some(server),
            ArrivalOutcome::Defer => None,
            ArrivalOutcome::Queued => {
                panic!("credit-retry scenarios never queue internally: decision {i}")
            }
        };
        if *got != want {
            mismatches += 1;
            if mismatches <= 5 {
                eprintln!(
                    "decision {i} at t={:.4} (redirector {}, principal {:?}): \
                     sim {:?}, live {:?}",
                    d.time, d.redirector, d.principal, want, got
                );
            }
        }
    }
    assert_eq!(
        mismatches,
        0,
        "{mismatches} of {} decisions diverged between sim and live",
        decisions.len()
    );
}

/// The sharded data plane's acceptance test: the same trace replayed
/// through per-shard [`ShardCore`]s (no mutex, one tree leaf per shard)
/// also reproduces every simulator decision with zero mismatches — the
/// epoll refactor changed the transport, not the enforcement semantics.
#[test]
fn sharded_cores_reproduce_simulator_decisions_exactly() {
    let duration = 3.0;
    let decisions = simulate(duration);
    assert!(decisions.len() > 300, "thin trace: {}", decisions.len());

    let live = replay_sharded(&decisions, duration);
    assert_eq!(live.len(), decisions.len());
    let mut mismatches = 0;
    for (i, (d, got)) in decisions.iter().zip(&live).enumerate() {
        let want = match d.outcome {
            ArrivalOutcome::Forward { server } => Some(server),
            ArrivalOutcome::Defer => None,
            ArrivalOutcome::Queued => {
                panic!("credit-retry scenarios never queue internally: decision {i}")
            }
        };
        if *got != want {
            mismatches += 1;
            if mismatches <= 5 {
                eprintln!(
                    "decision {i} at t={:.4} (shard {}, principal {:?}): \
                     sim {:?}, sharded {:?}",
                    d.time, d.redirector, d.principal, want, got
                );
            }
        }
    }
    assert_eq!(
        mismatches,
        0,
        "{mismatches} of {} decisions diverged between sim and sharded cores",
        decisions.len()
    );
}

/// Replays the trace through the *wire* transport: every node is a real
/// socket endpoint with its own epoll runtime thread, connected over
/// loopback TCP, and the admission controls coordinate through `Up`/`Down`
/// frames instead of shared memory. Virtual stamping plus a per-boundary
/// barrier on round completion keeps the replay deterministic: each
/// boundary's global total is on every node before the next read.
fn replay_wire(decisions: &[ArrivalDecision], duration: f64) -> Vec<Option<usize>> {
    use std::time::{Duration, Instant};

    let levels = fig6_graph().access_levels();
    let window = SchedulerConfig::community_default().window_secs;
    let nodes = covenant::wire::spawn_local(
        &[None, Some(0)],
        1,
        covenant::wire::StampMode::Virtual,
        Duration::from_secs_f64(window),
    )
    .expect("spawn loopback wire tree");
    let transports: Vec<_> = nodes.iter().map(|n| n.transport()).collect();
    let ctrls: Vec<_> = (0..2)
        .map(|node| {
            let transport: std::sync::Arc<dyn covenant::tree::CoordTransport> =
                transports[node].clone();
            AdmissionControl::new(
                node,
                &levels,
                SchedulerConfig::community_default(),
                Coordinator::with_transport(transport, 0.0),
            )
        })
        .collect();

    let mut boundary: u64 = 0;
    let mut outcomes = Vec::with_capacity(decisions.len());
    for d in decisions {
        loop {
            let t = boundary as f64 * window;
            if t > d.time || t > duration {
                break;
            }
            for ctrl in &ctrls {
                ctrl.roll_window_at(None, t);
            }
            boundary += 1;
            // Barrier: the round published at this boundary must close on
            // every node (its Down must arrive) before anyone reads again.
            let deadline = Instant::now() + Duration::from_secs(10);
            for tp in &transports {
                while tp.completed_rounds() < boundary {
                    assert!(Instant::now() < deadline, "wire round {boundary} stalled");
                    std::thread::yield_now();
                }
            }
        }
        assert_eq!(d.cost, 1.0, "replay assumes unit-cost arrivals");
        outcomes.push(ctrls[d.redirector].try_admit(d.principal, None));
    }
    outcomes
}

/// The wire transport's acceptance test: the same trace replayed over real
/// loopback sockets — length-prefixed frames, per-node epoll runtimes —
/// still reproduces every simulator decision with zero mismatches. All
/// three transports (in-process, sharded cores, wire) are decision-
/// equivalent; only the medium changes.
#[test]
fn wire_transport_reproduces_simulator_decisions_exactly() {
    let duration = 3.0;
    let decisions = simulate(duration);
    assert!(decisions.len() > 300, "thin trace: {}", decisions.len());

    let live = replay_wire(&decisions, duration);
    assert_eq!(live.len(), decisions.len());
    let mut mismatches = 0;
    for (i, (d, got)) in decisions.iter().zip(&live).enumerate() {
        let want = match d.outcome {
            ArrivalOutcome::Forward { server } => Some(server),
            ArrivalOutcome::Defer => None,
            ArrivalOutcome::Queued => {
                panic!("credit-retry scenarios never queue internally: decision {i}")
            }
        };
        if *got != want {
            mismatches += 1;
            if mismatches <= 5 {
                eprintln!(
                    "decision {i} at t={:.4} (node {}, principal {:?}): \
                     sim {:?}, wire {:?}",
                    d.time, d.redirector, d.principal, want, got
                );
            }
        }
    }
    assert_eq!(
        mismatches,
        0,
        "{mismatches} of {} decisions diverged between sim and the wire transport",
        decisions.len()
    );
}

/// The replay itself is deterministic: running it twice against fresh live
/// control planes yields identical decision vectors (guards against hidden
/// wall-clock dependence in the virtual-time path).
#[test]
fn live_replay_is_deterministic() {
    let duration = 1.5;
    let decisions = simulate(duration);
    assert!(!decisions.is_empty());
    assert_eq!(replay(&decisions, duration), replay(&decisions, duration));
}
