#!/usr/bin/env bash
# Tier-1 verification: the one entry point builders run before pushing.
#
#   build (release) + full test suite + clippy -D warnings on the crates
#   touched by the LP fast-path work.
#
# Usage: scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test (root package, tier-1)"
cargo test -q --offline

echo "==> cargo test (workspace)"
cargo test -q --offline --workspace

echo "==> cargo clippy -D warnings (touched crates)"
cargo clippy --offline \
    -p covenant-lp \
    -p covenant-sched \
    -p covenant-enforce \
    -p covenant-sim \
    -p covenant-coord \
    -p covenant-l7 \
    -p covenant-l4 \
    -p covenant-core \
    -p covenant-bench \
    --all-targets -- -D warnings

echo "==> cargo bench --no-run (benchmarks must compile)"
cargo bench --no-run --offline -p covenant-bench

echo "==> sim smoke (release engine throughput + heap bound)"
cargo run -q --offline --release -p covenant-bench --bin sim_smoke

echo "==> live smoke (loopback L7 + L4 control plane end-to-end)"
cargo run -q --offline --release -p covenant-bench --bin live_smoke

echo "tier-1: OK"
