#!/usr/bin/env bash
# Tier-1 verification: the one entry point builders run before pushing.
#
#   build (release) + full test suite + covenant-lint + clippy -D warnings
#   across the whole workspace.
#
# Usage: scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test (root package, tier-1)"
cargo test -q --offline

echo "==> cargo test (workspace)"
cargo test -q --offline --workspace

echo "==> covenant-lint --deny all (workspace invariants, R1-R5)"
cargo run -q --offline -p covenant-lint -- --deny all

echo "==> covenant check (spec verifier gate over examples/specs)"
COVENANT=target/release/covenant
$COVENANT check examples/specs/valid.json
for bad in examples/specs/v*_*.json; do
  # v3_oversubscribed.json -> its rule id V3 must appear in the output,
  # and with --deny all even warning-severity rules must fail the check.
  rule="V$(basename "$bad" | sed 's/^v\([0-9]*\).*/\1/')"
  if out=$($COVENANT check "$bad" --deny all 2>&1); then
    echo "verifier gate: $bad unexpectedly passed"; exit 1
  fi
  if ! grep -q "\[$rule\]" <<<"$out"; then
    echo "verifier gate: $bad did not report $rule:"; echo "$out"; exit 1
  fi
done

echo "==> scenario library gate (check --deny all + replay determinism)"
for scenario in examples/scenarios/*.json; do
  $COVENANT check "$scenario" --deny all
done
$COVENANT sim examples/scenarios/flash_crowd.json --json > /tmp/covenant_det_a.json
$COVENANT sim examples/scenarios/flash_crowd.json --json > /tmp/covenant_det_b.json
if ! cmp -s /tmp/covenant_det_a.json /tmp/covenant_det_b.json; then
  echo "determinism gate: flash_crowd.json --json output differs between replays"; exit 1
fi
rm -f /tmp/covenant_det_a.json /tmp/covenant_det_b.json

echo "==> cargo clippy -D warnings (workspace)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo bench --no-run (benchmarks must compile)"
cargo bench --no-run --offline -p covenant-bench

echo "==> sim smoke (release engine throughput + heap bound)"
cargo run -q --offline --release -p covenant-bench --bin sim_smoke

echo "==> net smoke (shared-link scenario: replay determinism + bounded heap)"
cargo run -q --offline --release -p covenant-bench --bin net_smoke

echo "==> live smoke (loopback L7 + L4 control plane end-to-end)"
cargo run -q --offline --release -p covenant-bench --bin live_smoke

echo "==> cluster soak (multi-process combining tree + /metrics scrape)"
cargo run -q --offline --release -p covenant-bench --bin cluster_soak -- 3

echo "==> tree bench smoke (wire frame economy: 2(n-1) frames per round)"
cargo run -q --offline --release -p covenant-bench --bin tree_bench -- --quick

echo "==> lp smoke (warm-started revised simplex inside the window budget)"
cargo run -q --offline --release -p covenant-bench --bin lp_smoke

echo "==> live throughput smoke (sharded epoll reactor admissions/s floor)"
cargo run -q --offline --release -p covenant-bench --bin live_throughput

echo "tier-1: OK"
