//! Hierarchical agreements: an ASP, a reselling sub-ASP, and customers.
//!
//! The paper's Figure 2 sketches three agreement models; this example
//! exercises the *hierarchical* one. An ASP owns 800 req/s. A sub-ASP buys
//! [0.5, 0.7] of it and resells to two customers; a direct customer buys
//! from the ASP itself. The transitive ticket flow gives every leaf an
//! effective end-to-end SLA without any explicit ASP↔leaf agreement, and
//! the simulator shows those SLAs being enforced simultaneously.
//!
//! ```text
//! cargo run --release --example hierarchical_asp
//! ```

use covenant::agreements::Hierarchy;
use covenant::sim::{SimConfig, Simulation};
use covenant::workload::{ClientMachine, PhasedLoad};

fn main() {
    let mut h = Hierarchy::new();
    let asp = h.provider("asp", 800.0);
    let sub = h.reseller("sub-asp", asp, 0.5, 0.7).expect("valid resale");
    let retail1 = h.customer("retail-1", sub, 0.6, 1.0).expect("valid");
    let retail2 = h.customer("retail-2", sub, 0.3, 0.6).expect("valid");
    let direct = h.customer("direct", asp, 0.4, 0.8).expect("valid");
    h.check_solvency().expect("resale chain is solvent");

    println!("== effective end-to-end SLAs (fraction of the ASP's 800 req/s) ==");
    for (name, id) in [("sub-asp", sub), ("retail-1", retail1), ("retail-2", retail2), ("direct", direct)] {
        let (lb, ub) = h.effective_sla(id);
        println!(
            "  {name:<10} [{lb:.2}, {ub:.2}]  -> guaranteed {:.0} req/s",
            h.guaranteed_rate(id)
        );
    }

    // Flood every leaf; each must receive at least its guaranteed rate.
    let g = h.graph().clone();
    let duration = 40.0;
    let mut cfg = SimConfig::new(g, duration);
    for (i, leaf) in [retail1, retail2, direct].into_iter().enumerate() {
        cfg = cfg.closed_loop_client(
            ClientMachine::uniform(i, leaf, PhasedLoad::constant(500.0, duration)),
            0,
            64,
        );
    }
    let report = Simulation::new(cfg).run();

    println!("\n== measured under total overload (all leaves flooding) ==");
    for (name, id) in [("retail-1", retail1), ("retail-2", retail2), ("direct", direct)] {
        let rate = report.rates.mean_rate_secs(id, 10.0, duration);
        let floor = h.guaranteed_rate(id);
        let status = if rate + 8.0 >= floor { "ok" } else { "VIOLATED" };
        println!("  {name:<10} served {rate:>6.1} req/s (guaranteed {floor:>5.0})  {status}");
    }
}
