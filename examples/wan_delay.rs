//! Coordination across a slow WAN: what a lagging combining tree costs.
//!
//! Reproduces the paper's Figure 8: two redirectors whose shared view of
//! global queue lengths arrives 10 seconds late. The run shows the three
//! signature behaviours:
//!
//! 1. a redirector that knows nothing yet conservatively spends only half
//!    its mandatory tickets (B starts at ~32 req/s, not 64);
//! 2. when load changes, enforcement lags by exactly the information delay
//!    (a ~10 s competition transient);
//! 3. once information arrives, agreements are enforced exactly.
//!
//! Pass a lag in seconds to explore other delays:
//!
//! ```text
//! cargo run --release --example wan_delay -- 10
//! ```

use covenant::core::scenarios;

fn main() {
    let lag: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10.0);

    println!("Server V=320; A [0.8,1] via R1 (2 clients), B [0.2,1] via R2 (1 client).");
    println!("Combining-tree information lag: {lag} s.\n");

    let outcome = scenarios::fig8(lag).run();
    println!("{}", outcome.phase_table());
    println!("paper levels (10 s lag): phase 1 B≈30; phase 2 B≈135; phase 4 A≈255, B≈65;");
    println!("                         phase 6 B≈135");
}
