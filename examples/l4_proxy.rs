//! Live Layer-4 enforcement on loopback.
//!
//! Starts one origin server (250 req/s) and a Layer-4 redirector fronting
//! two principals on separate ports (the pure-L4 way to attribute traffic).
//! `heavy` holds a [0.6, 1.0] agreement, `light` holds [0.2, 1.0]. Both are
//! flooded by concurrent clients; completions track the agreement shares,
//! and the transparent proxying means clients see plain 200s with no
//! redirects.
//!
//! ```text
//! cargo run --release --example l4_proxy
//! ```

use covenant::agreements::AgreementGraph;
use covenant::coord::{AdmissionControl, Coordinator};
use covenant::http::{HttpClient, OriginServer, StatusCode};
use covenant::l4::{L4Config, L4Redirector, L4Service};
use covenant::sched::SchedulerConfig;
use covenant::tree::Topology;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let origin = OriginServer::bind("127.0.0.1:0", 250.0, 2048, Duration::from_secs(2))
        .expect("bind origin");

    let mut g = AgreementGraph::new();
    let owner = g.add_principal("owner", 250.0);
    let heavy = g.add_principal("heavy", 0.0);
    let light = g.add_principal("light", 0.0);
    g.add_agreement(owner, heavy, 0.6, 1.0).unwrap();
    g.add_agreement(owner, light, 0.2, 1.0).unwrap();

    let ctrl = AdmissionControl::new(
        0,
        &g.access_levels(),
        SchedulerConfig::community_default(),
        Coordinator::new(Topology::star(1, 0.0), 0.0),
    );
    let redirector = L4Redirector::start(
        L4Config {
            services: vec![
                L4Service { principal: heavy, bind: "127.0.0.1:0".into() },
                L4Service { principal: light, bind: "127.0.0.1:0".into() },
            ],
            backends: [(0, origin.addr())].into(),
            park_limit: 64,
            live_limit: 1024,
        },
        ctrl,
    )
    .expect("start L4 redirector");

    println!("origin on {}", origin.addr());
    for (name, p) in [("heavy", heavy), ("light", light)] {
        println!("  service '{name}' fronted at {}", redirector.service_addr(p).unwrap());
    }

    let run_secs = 5.0;
    let deadline = Instant::now() + Duration::from_secs_f64(run_secs);
    let counters: Vec<Arc<AtomicU64>> = (0..2).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let mut handles = Vec::new();
    for (ci, p) in [heavy, light].into_iter().enumerate() {
        let addr = redirector.service_addr(p).unwrap();
        for _ in 0..6 {
            let done = Arc::clone(&counters[ci]);
            handles.push(std::thread::spawn(move || {
                let client =
                    HttpClient { timeout: Duration::from_millis(500), ..HttpClient::new() };
                while Instant::now() < deadline {
                    if let Ok(r) = client.get(&format!("http://{addr}/data")) {
                        if r.response.status == StatusCode::OK {
                            assert_eq!(r.redirects, 0, "L4 is transparent");
                            done.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }));
        }
    }
    for h in handles {
        h.join().expect("client thread");
    }

    let h_rate = counters[0].load(Ordering::Relaxed) as f64 / run_secs;
    let l_rate = counters[1].load(Ordering::Relaxed) as f64 / run_secs;
    println!("\n== measured over {run_secs:.0}s of overload ==");
    println!("  heavy: {h_rate:>6.1} req/s   (mandatory floor {:.0})", 0.6 * 250.0);
    println!("  light: {l_rate:>6.1} req/s   (mandatory floor {:.0})", 0.2 * 250.0);
    println!(
        "  spliced {} connections, refused {} at the park limit",
        redirector.spliced(),
        redirector.refused()
    );
}
