//! Quickstart: express agreements, inspect entitlements, enforce them.
//!
//! Reproduces the paper's Figure 3 worked example, then runs a short
//! simulated deployment showing the shares being enforced under overload.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use covenant::agreements::{AgreementGraph, PrincipalId};
use covenant::sim::{SimConfig, Simulation};
use covenant::workload::{ClientMachine, PhasedLoad};

fn main() {
    // ── 1. Express agreements (paper Figure 3) ────────────────────────────
    // A owns 1000 units/s, B owns 1500; A shares [0.4, 0.6] with B and B
    // shares [0.6, 1.0] with C. C owns nothing but receives transitive flow.
    let mut g = AgreementGraph::new();
    let a = g.add_principal("A", 1000.0);
    let b = g.add_principal("B", 1500.0);
    let c = g.add_principal("C", 0.0);
    g.add_agreement(a, b, 0.4, 0.6).expect("valid agreement");
    g.add_agreement(b, c, 0.6, 1.0).expect("valid agreement");

    println!("== Tickets (Figure 3) ==");
    for t in g.tickets() {
        println!("  {:?} ticket: P{} -> P{}, face {}", t.kind, t.issuer, t.holder, t.face);
    }

    // ── 2. Reduce the graph to per-principal access levels ────────────────
    let levels = g.access_levels();
    println!("\n== Final currency values (mandatory, optional) ==");
    for (name, p) in [("A", a), ("B", b), ("C", c)] {
        println!(
            "  {name}: ({:.0}, {:.0})   [paper: A (600,400), B (760,1340), C (1140,960)]",
            levels.mandatory(p),
            levels.optional(p)
        );
    }

    // ── 3. Enforce under overload in a simulated deployment ──────────────
    // Scale the scenario down: one shared server of 100 req/s, A [0.2,1]
    // and B [0.8,1], both flooding at 200 req/s. B must receive 80 req/s.
    let mut g = AgreementGraph::new();
    let s = g.add_principal("server-owner", 100.0);
    let ca = g.add_principal("customer-a", 0.0);
    let cb = g.add_principal("customer-b", 0.0);
    g.add_agreement(s, ca, 0.2, 1.0).unwrap();
    g.add_agreement(s, cb, 0.8, 1.0).unwrap();

    let duration = 30.0;
    let cfg = SimConfig::new(g, duration)
        .client(ClientMachine::uniform(0, ca, PhasedLoad::constant(200.0, duration)), 0)
        .client(ClientMachine::uniform(1, cb, PhasedLoad::constant(200.0, duration)), 0);
    let report = Simulation::new(cfg).run();

    println!("\n== Enforcement under 2x overload (V=100, shares 20%/80%) ==");
    for (name, p) in [("customer-a", PrincipalId(1)), ("customer-b", PrincipalId(2))] {
        println!(
            "  {name}: offered 200 req/s, served {:.1} req/s (mean response {:.0} ms)",
            report.rates.mean_rate_secs(p, 10.0, duration),
            report.response[p.0].mean().unwrap_or(0.0) * 1000.0
        );
    }
    println!(
        "  server utilization {:.0}%",
        report.server_utilization[0] * 100.0
    );
}
