//! ASP hosting over real sockets: the paper's service-provider context,
//! live on loopback.
//!
//! An application service provider runs one origin server and sells SLAs to
//! two customers: `gold` gets [0.7, 1.0] of the capacity, `bronze` gets
//! [0.1, 1.0]. Both customers' clients flood the Layer-7 redirector, which
//! answers each request with a 302 — either to the origin (admitted) or to
//! itself (implicitly queued). After a few seconds of load the admitted
//! shares match the SLA.
//!
//! ```text
//! cargo run --release --example asp_hosting
//! ```

use covenant::agreements::{AgreementGraph, PrincipalId};
use covenant::coord::{AdmissionControl, Coordinator};
use covenant::http::{HttpClient, OriginServer, StatusCode};
use covenant::l7::{L7Config, L7Redirector};
use covenant::sched::SchedulerConfig;
use covenant::tree::Topology;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    // The provider's server: 300 req/s capacity, 6 KB replies.
    let origin = OriginServer::bind("127.0.0.1:0", 300.0, 6144, Duration::from_secs(2))
        .expect("bind origin");

    // SLAs: gold [0.7, 1.0], bronze [0.1, 1.0].
    let mut g = AgreementGraph::new();
    let provider = g.add_principal("provider", 300.0);
    let gold = g.add_principal("gold", 0.0);
    let bronze = g.add_principal("bronze", 0.0);
    g.add_agreement(provider, gold, 0.7, 1.0).unwrap();
    g.add_agreement(provider, bronze, 0.1, 1.0).unwrap();

    let ctrl = AdmissionControl::new(
        0,
        &g.access_levels(),
        SchedulerConfig::community_default(),
        Coordinator::new(Topology::star(1, 0.0), 0.0),
    );
    let redirector = L7Redirector::start(
        "127.0.0.1:0",
        L7Config {
            principal_names: vec!["provider".into(), "gold".into(), "bronze".into()],
            backends: [(0, origin.addr())].into(),
        },
        ctrl,
    )
    .expect("start redirector");
    let raddr = redirector.addr();
    println!("origin on {}, redirector on {raddr}", origin.addr());

    // Flooding clients: 4 threads per customer, closed loop.
    let run_secs = 5.0;
    let deadline = Instant::now() + Duration::from_secs_f64(run_secs);
    let counters: Vec<Arc<AtomicU64>> = (0..2).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let mut handles = Vec::new();
    for (ci, name) in ["gold", "bronze"].iter().enumerate() {
        for _ in 0..4 {
            let done = Arc::clone(&counters[ci]);
            let name = name.to_string();
            handles.push(std::thread::spawn(move || {
                let client = HttpClient {
                    max_redirects: 64,
                    self_redirect_pause: Duration::from_millis(10),
                    ..HttpClient::new()
                };
                while Instant::now() < deadline {
                    if let Ok(r) = client.get(&format!("http://{raddr}/org/{name}/app")) {
                        if r.response.status == StatusCode::OK {
                            done.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }));
        }
    }
    for h in handles {
        h.join().expect("client thread");
    }

    let g_done = counters[0].load(Ordering::Relaxed) as f64 / run_secs;
    let b_done = counters[1].load(Ordering::Relaxed) as f64 / run_secs;
    let (admitted, deferred) = redirector.counters();
    println!("\n== measured over {run_secs:.0}s of overload ==");
    println!("  gold:   {g_done:>6.1} req/s completed  (SLA floor {:.0})", 0.7 * 300.0);
    println!("  bronze: {b_done:>6.1} req/s completed  (SLA floor {:.0})", 0.1 * 300.0);
    println!("  redirector: {admitted} admitted, {deferred} self-redirected");
    println!(
        "  gold/bronze ratio {:.2} (expected ≈ {:.2}: gold's floor pins 210, θ-fairness pushes the 90 leftover to bronze)",
        g_done / b_done.max(1.0),
        210.0 / 90.0
    );
    let _ = (PrincipalId(1), gold, bronze);
}
