//! A resource-sharing community: two organizations pool their clusters.
//!
//! Reproduces the paper's Figure 9 scenario in the simulator: organizations
//! A and B each own a 320 req/s server; B shares half its server with A
//! under a [0.5, 0.5] agreement. A's demand comes and goes in four phases
//! while B's stays constant; the schedule prints the per-phase processing
//! rates, matching the paper's plotted levels
//! (480/160 → 0/320 → 400/240 → 0/320).
//!
//! ```text
//! cargo run --release --example community_pool
//! ```

use covenant::core::scenarios;

fn main() {
    println!("Community context: B shares its 320 req/s server with A [0.5, 0.5].");
    println!("A runs 2, 0, 1, 0 client machines (400 req/s each) across four phases;");
    println!("B always runs one.\n");

    let outcome = scenarios::fig9(25.0).run();
    println!("{}", outcome.phase_table());

    println!("paper levels:   phase 1 (A 480, B 160)   phase 2 (A 0, B 320)");
    println!("                phase 3 (A 400, B 240)   phase 4 (A 0, B 320)");
    println!();
    println!(
        "coordination: {} tree messages (pairwise exchange would have used {})",
        outcome.report.tree_messages, outcome.report.pairwise_messages_equivalent
    );
}
