//! Multiple resource types: when bandwidth, not request rate, binds.
//!
//! §3.1.1 of the paper notes that with multiple resource types the
//! capacities and access levels "should be represented as vectors". This
//! example builds a CPU + bandwidth system and shows the window scheduler
//! limiting a bandwidth-heavy principal by its scarce dimension while a
//! CPU-only principal runs at full CPU entitlement.
//!
//! ```text
//! cargo run --release --example multi_resource
//! ```

use covenant::agreements::{MultiAgreementGraph, ResourceKind, ResourceVector};
use covenant::sched::MultiCommunityScheduler;

fn main() {
    // A server with 200 CPU units/s and 80 bandwidth units/s, shared
    // equally between a media service (bandwidth-heavy) and an API service
    // (CPU-only).
    let mut g = MultiAgreementGraph::new(&["cpu", "bandwidth"]);
    let server = g.add_principal("server", ResourceVector(vec![200.0, 80.0]));
    let media = g.add_principal("media", ResourceVector(vec![0.0, 0.0]));
    let api = g.add_principal("api", ResourceVector(vec![0.0, 0.0]));
    g.add_agreement(server, media, 0.5, 0.5).unwrap();
    g.add_agreement(server, api, 0.5, 0.5).unwrap();

    let levels = g.access_levels();
    // Request profiles: media = 1 cpu + 4 bandwidth; api = 2 cpu only.
    let costs = vec![
        ResourceVector(vec![1.0, 0.0]),
        ResourceVector(vec![1.0, 4.0]),
        ResourceVector(vec![2.0, 0.0]),
    ];

    println!("== entitlements (per second) ==");
    for (name, id) in [("media", media), ("api", api)] {
        let cost = &costs[id.index()];
        let kind = levels.binding_kind(id, cost).expect("some kind binds");
        println!(
            "  {name:<6} guaranteed {:>5.1} req/s, ceiling {:>5.1} req/s (bound by {})",
            levels.mandatory_rate(id, cost),
            levels.ceiling_rate(id, cost),
            g.kind_names()[kind.0]
        );
    }

    // One 100 ms scheduling window under flood from both.
    let window = levels.kind(ResourceKind(0)).capacities(); // just for shape
    let _ = window;
    let scheduler = MultiCommunityScheduler::new(costs.clone());
    let window_levels = covenant::agreements::MultiAccessLevels::clone(&levels);
    let plan = scheduler.plan(&window_levels, &[0.0, 1000.0, 1000.0]);

    println!("\n== one saturated scheduling interval ==");
    for (name, id) in [("media", media), ("api", api)] {
        println!("  {name:<6} admitted {:>6.1} req/s", plan.admitted(id));
    }
    for (kname, k) in [("cpu", 0usize), ("bandwidth", 1)] {
        let used: f64 = (0..3)
            .map(|i| plan.assignments[i][0] * costs[i].0[k])
            .sum();
        let cap = levels.kind(ResourceKind(k)).capacities()[0];
        println!("  {kname:<9} used {used:>6.1} / {cap:.0}");
    }
    println!("\nmedia is pinned by its bandwidth share (40/4 = 10 req/s);");
    println!("api by its CPU share (100/2 = 50 req/s).");
}
