//! Prometheus-style text rendering for one cluster node.
//!
//! Every process in the cluster serves `GET /metrics` in the standard
//! text exposition format (`# TYPE` comments plus `name{labels} value`
//! samples), so off-the-shelf scrapers — or `curl` in `tier1.sh` — can
//! watch the tree do its work: admission counters from the enforcement
//! core, LP warm/cold activity, and the wire runtime's frame/round/RTT
//! counters, all labelled with the node's tree id.

use covenant_enforce::ShardSnapshot;
use covenant_wire::WireStats;
use std::fmt::Write as _;

/// One metric sample: `name{node="<node>",role="<role>"} <value>`.
fn sample(out: &mut String, name: &str, kind: &str, node: usize, role: &str, value: u64) {
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name}{{node=\"{node}\",role=\"{role}\"}} {value}");
}

/// Renders the exposition body for one node: wire-runtime counters
/// always, enforcement counters when the node runs a data plane.
pub fn render_metrics(
    node: usize,
    role: &str,
    wire: &WireStats,
    shards: Option<&[ShardSnapshot]>,
) -> String {
    let mut out = String::new();
    sample(&mut out, "covenant_tree_frames_sent", "counter", node, role, wire.frames_sent());
    sample(
        &mut out,
        "covenant_tree_frames_received",
        "counter",
        node,
        role,
        wire.frames_received(),
    );
    sample(
        &mut out,
        "covenant_tree_rounds_completed",
        "counter",
        node,
        role,
        wire.rounds_completed(),
    );
    sample(&mut out, "covenant_tree_rounds_forced", "counter", node, role, wire.rounds_forced());
    sample(&mut out, "covenant_tree_reconnects", "counter", node, role, wire.reconnects());
    sample(&mut out, "covenant_tree_rtt_us", "gauge", node, role, wire.last_rtt_us());

    if let Some(snaps) = shards {
        let mut admitted = 0u64;
        let mut deferred = 0u64;
        let mut parked = 0u64;
        let mut lp_solves = 0u64;
        let mut lp_warm_hits = 0u64;
        let mut lp_cold_fallbacks = 0u64;
        let mut shed = 0u64;
        let mut reactor_wakes = 0u64;
        let mut batched_verdicts = 0u64;
        for s in snaps {
            admitted += s.counters.admitted;
            deferred += s.counters.deferred;
            parked += s.counters.parked;
            lp_solves += s.counters.lp_solves;
            lp_warm_hits += s.counters.lp_warm_hits;
            lp_cold_fallbacks += s.counters.lp_cold_fallbacks;
            shed += s.shed;
            reactor_wakes += s.reactor_wakes;
            batched_verdicts += s.batched_verdicts;
        }
        sample(&mut out, "covenant_admitted", "counter", node, role, admitted);
        sample(&mut out, "covenant_deferred", "counter", node, role, deferred);
        sample(&mut out, "covenant_parked", "gauge", node, role, parked);
        sample(&mut out, "covenant_lp_solves", "counter", node, role, lp_solves);
        sample(&mut out, "covenant_lp_warm_hits", "counter", node, role, lp_warm_hits);
        sample(&mut out, "covenant_lp_cold_fallbacks", "counter", node, role, lp_cold_fallbacks);
        sample(&mut out, "covenant_shed", "counter", node, role, shed);
        sample(&mut out, "covenant_reactor_wakes", "counter", node, role, reactor_wakes);
        sample(&mut out, "covenant_batched_verdicts", "counter", node, role, batched_verdicts);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use covenant_enforce::EnforcementCounters;

    #[test]
    fn tree_only_nodes_render_wire_counters() {
        let wire = WireStats::new();
        let body = render_metrics(0, "root", &wire, None);
        assert!(body.contains("covenant_tree_frames_sent{node=\"0\",role=\"root\"} 0"));
        assert!(body.contains("# TYPE covenant_tree_rtt_us gauge"));
        assert!(!body.contains("covenant_admitted"));
    }

    #[test]
    fn redirector_nodes_sum_shards_into_enforcement_counters() {
        let wire = WireStats::new();
        let snap = |admitted| ShardSnapshot {
            counters: EnforcementCounters { admitted, deferred: 1, ..Default::default() },
            reactor_wakes: 2,
            batched_verdicts: 3,
            shed: 1,
        };
        let body = render_metrics(2, "redirector", &wire, Some(&[snap(5), snap(7)]));
        assert!(body.contains("covenant_admitted{node=\"2\",role=\"redirector\"} 12"));
        assert!(body.contains("covenant_deferred{node=\"2\",role=\"redirector\"} 2"));
        assert!(body.contains("covenant_shed{node=\"2\",role=\"redirector\"} 2"));
        assert!(body.contains("covenant_reactor_wakes{node=\"2\",role=\"redirector\"} 4"));
    }
}
