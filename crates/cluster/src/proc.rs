//! The cluster node process: what runs after the launcher fork/execs us.
//!
//! Every node re-execs the launching binary with a sentinel argv
//! ([`SENTINEL`]) so one executable serves as both launcher and node —
//! host binaries call [`maybe_run_node`] first thing in `main`. A node
//! process assembles exactly the stack one tree position needs:
//!
//! - a [`covenant_wire::WireNode`] epoll runtime speaking the frame
//!   protocol on its tree edges (every node);
//! - for leaf nodes given an origin backend, a single-shard
//!   [`covenant_l7::ShardedL7`] data plane whose `ShardCore` publishes
//!   through the wire transport as this tree node;
//! - for root/interior nodes, a heartbeat thread publishing zero demand
//!   each window so aggregation rounds keep closing;
//! - an HTTP `/metrics` endpoint (prometheus text format) on every node.
//!
//! Once up, the process prints one `READY …` line carrying its bound
//! addresses — the launcher reads it to wire children to parents — and
//! parks until killed.

use crate::metrics::render_metrics;
use covenant_core::DeploymentSpec;
use covenant_coord::Coordinator;
use covenant_http::{handler, HttpResponse, HttpServer, StatusCode};
use covenant_l7::{L7Config, ShardedL7};
use covenant_sched::SchedulerConfig;
use covenant_tree::CoordTransport;
use covenant_wire::{StampMode, WireNode, WireNodeConfig};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// The argv sentinel marking a process as a cluster node re-exec.
pub const SENTINEL: &str = "__covenant_cluster_node";

/// Entry hook for host binaries: call this first in `main`. If the
/// process was exec'd as a cluster node (argv`[1]` is [`SENTINEL`]), runs
/// the node and never returns; otherwise returns immediately.
pub fn maybe_run_node() {
    let args: Vec<String> = std::env::args().collect();
    let is_node = args.get(1).map(String::as_str) == Some(SENTINEL);
    if !is_node {
        return;
    }
    match run_node(&args) {
        Ok(never) => match never {},
        Err(e) => {
            eprintln!("cluster node failed: {e}");
            std::process::exit(2);
        }
    }
}

/// Uninhabited: `run_node` parks forever on success.
enum Never {}

/// `key=` argument lookup.
fn kv<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    let prefix = format!("{key}=");
    args.iter().find_map(|a| a.strip_prefix(&prefix))
}

fn parse_addr(s: &str, what: &str) -> Result<Option<SocketAddr>, String> {
    if s == "-" {
        return Ok(None);
    }
    s.parse::<SocketAddr>().map(Some).map_err(|e| format!("bad {what} address {s:?}: {e}"))
}

fn run_node(args: &[String]) -> Result<Never, String> {
    let spec_json = args.get(2).ok_or("missing spec argument")?;
    let spec = DeploymentSpec::from_json(spec_json).map_err(|e| format!("bad spec: {e}"))?;
    let node: usize = kv(args, "node")
        .ok_or("missing node= argument")?
        .parse()
        .map_err(|e| format!("bad node=: {e}"))?;
    let epoch: u32 = kv(args, "epoch")
        .ok_or("missing epoch= argument")?
        .parse()
        .map_err(|e| format!("bad epoch=: {e}"))?;
    let parent = parse_addr(kv(args, "parent").unwrap_or("-"), "parent")?;
    let origin = parse_addr(kv(args, "origin").unwrap_or("-"), "origin")?;

    let parents = &spec.redirector_tree;
    let nodes = parents.len();
    if node >= nodes {
        return Err(format!("node {node} out of range for a {nodes}-node tree"));
    }
    if parents.get(node).map(Option::is_some) != Some(parent.is_some()) {
        return Err(format!("node {node}: parent address does not match the spec tree"));
    }
    let children: Vec<usize> = parents
        .iter()
        .enumerate()
        .filter(|(_, p)| **p == Some(node))
        .map(|(c, _)| c)
        .collect();
    if spec.window_secs <= 0.0 {
        return Err(format!("bad window_secs {}", spec.window_secs));
    }
    let window = Duration::try_from_secs_f64(spec.window_secs)
        .map_err(|e| format!("bad window_secs {}: {e}", spec.window_secs))?;

    // The wire runtime: this process's tree position, live-stamped so
    // propagation becomes a measured quantity.
    let bind: SocketAddr =
        "127.0.0.1:0".parse().map_err(|e| format!("loopback bind: {e}"))?;
    let wire = WireNode::start(WireNodeConfig {
        node,
        nodes,
        parent,
        children: children.clone(),
        epoch,
        mode: StampMode::Live,
        window,
        bind,
    })
    .map_err(|e| format!("wire runtime: {e}"))?;
    let transport = wire.transport();
    let stats = wire.stats();

    // Leaf nodes with a backend run the real data plane; everything else
    // heartbeats zero demand so its aggregation rounds keep closing.
    let is_redirector = children.is_empty() && origin.is_some();
    let role = match (parent.is_some(), is_redirector) {
        (false, _) => "root",
        (true, true) => "redirector",
        (true, false) => "interior",
    };
    let mut data_plane: Option<Arc<ShardedL7>> = None;
    if let (true, Some(origin_addr)) = (is_redirector, origin) {
        let graph = spec.build_graph().map_err(|e| format!("agreement graph: {e}"))?;
        let levels = graph.access_levels();
        let mut sched = SchedulerConfig::community_default();
        sched.window_secs = spec.window_secs;
        let coord_transport: Arc<dyn CoordTransport> =
            Arc::clone(&transport) as Arc<dyn CoordTransport>;
        let coordinator = Coordinator::with_transport(coord_transport, spec.extra_tree_lag);
        let l7 = ShardedL7::start_at(
            "127.0.0.1:0",
            L7Config {
                principal_names: spec.principals.iter().map(|p| p.name.clone()).collect(),
                backends: [(0, origin_addr)].into(),
            },
            1,
            &levels,
            sched,
            coordinator,
            node,
        )
        .map_err(|e| format!("l7 data plane: {e}"))?;
        data_plane = Some(Arc::new(l7));
    } else {
        // Full-width zeros, not an empty vec: a forced round that has
        // seen no child data yet must still deliver a per-principal
        // total downstream (the scheduler rejects narrower vectors).
        let width = spec.principals.len();
        let hb_transport = Arc::clone(&transport);
        let hb = move || loop {
            let clock = hb_transport.clock();
            hb_transport.publish_at(hb_transport.node(), vec![0.0; width], clock.now());
            std::thread::sleep(window);
        };
        std::thread::Builder::new()
            .name(format!("cluster-heartbeat-{node}"))
            .spawn(hb)
            .map_err(|e| format!("heartbeat thread: {e}"))?;
    }

    // The metrics endpoint every process serves.
    let metrics_stats = Arc::clone(&stats);
    let metrics_plane = data_plane.clone();
    let metrics = HttpServer::bind(
        "127.0.0.1:0",
        handler(move |req, _| {
            if req.path == "/metrics" {
                let snaps = metrics_plane.as_ref().map(|p| p.shard_snapshots());
                HttpResponse::ok(render_metrics(node, role, &metrics_stats, snaps.as_deref()))
                    .header("content-type", "text/plain; version=0.0.4")
            } else {
                HttpResponse::status(StatusCode::NOT_FOUND)
            }
        }),
    )
    .map_err(|e| format!("metrics endpoint: {e}"))?;

    let http_addr = match &data_plane {
        Some(p) => p.addr().to_string(),
        None => "-".to_string(),
    };
    // The launcher blocks on this line; everything after it is steady
    // state.
    println!(
        "READY node={node} role={role} wire={} metrics={} http={http_addr}",
        wire.listen_addr(),
        metrics.addr()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    // Park until the launcher kills us; the runtimes live on their own
    // threads.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
