//! The cluster launcher: fork/exec one OS process per tree node.
//!
//! [`Cluster::launch`] walks a [`DeploymentSpec`]'s `redirector_tree`
//! root-first, re-execing the current binary with the [`crate::SENTINEL`]
//! argv for each node (see [`crate::maybe_run_node`]) and reading each
//! child's `READY` line to learn its bound addresses — a child's wire
//! address is what its own children are told to connect to. An origin
//! server backing the leaves' data planes runs inside the launcher.
//!
//! The handle scrapes any node's `/metrics` endpoint, kills individual
//! nodes (fault injection), and tears the whole tree down on drop — no
//! orphan processes.

use covenant_core::DeploymentSpec;
use covenant_http::{HttpClient, OriginServer, StatusCode};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// One launched node process.
pub struct NodeHandle {
    /// Tree node id.
    pub node: usize,
    /// `"root"`, `"interior"`, or `"redirector"`.
    pub role: String,
    /// The wire runtime's listen address (children connect here).
    pub wire_addr: SocketAddr,
    /// The `/metrics` endpoint address.
    pub metrics_addr: SocketAddr,
    /// The L7 data-plane address, when this node is a redirector.
    pub http_addr: Option<SocketAddr>,
    child: Option<Child>,
}

impl NodeHandle {
    /// Whether the OS process is still being tracked (not yet killed).
    pub fn alive(&self) -> bool {
        self.child.is_some()
    }

    fn kill(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// A running multi-process cluster; kills every node on drop.
pub struct Cluster {
    origin: OriginServer,
    nodes: Vec<NodeHandle>,
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Parses one `key=value` token from a READY line.
fn ready_field<'a>(tokens: &[&'a str], key: &str) -> io::Result<&'a str> {
    let prefix = format!("{key}=");
    tokens
        .iter()
        .find_map(|t| t.strip_prefix(&prefix))
        .ok_or_else(|| invalid(format!("READY line missing {key}=")))
}

impl Cluster {
    /// Launches one process per tree node of `spec`, parents before
    /// children, plus an in-launcher origin server backing the leaves.
    pub fn launch(spec: &DeploymentSpec) -> io::Result<Cluster> {
        // Static verification first: refuse to fork processes for a spec
        // with error-severity contract findings (V1-V7).
        {
            use covenant_verify::{RuleMeta, Severity};
            let errors: Vec<String> = covenant_verify::verify_spec(spec)
                .iter()
                .filter(|f| f.rule.severity() == Severity::Error)
                .map(|f| f.to_string())
                .collect();
            if !errors.is_empty() {
                return Err(invalid(format!(
                    "spec failed verification: {}",
                    errors.join("; ")
                )));
            }
        }
        let parents = &spec.redirector_tree;
        let roots: Vec<usize> = parents
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(i, _)| i)
            .collect();
        if roots.len() != 1 {
            return Err(invalid(format!("spec must have exactly one root, got {}", roots.len())));
        }
        for (i, p) in parents.iter().enumerate() {
            if let Some(p) = p {
                if *p >= parents.len() || *p == i {
                    return Err(invalid(format!("node {i} has invalid parent {p}")));
                }
            }
        }

        // Origin capacity: the sum of declared principal capacities (the
        // physical servers), with a floor so tiny specs still serve.
        let capacity: f64 = spec.principals.iter().map(|p| p.capacity).sum();
        let origin = OriginServer::bind(
            "127.0.0.1:0",
            capacity.max(100.0),
            64,
            Duration::from_secs(2),
        )
        .map_err(|e| io::Error::other(format!("origin: {e}")))?;

        // Breadth-first from the root: a node's parent is always launched
        // (and READY) before the node itself.
        let mut order: Vec<usize> = roots.clone();
        let mut cursor = 0;
        while let Some(&n) = order.get(cursor) {
            cursor += 1;
            for (c, p) in parents.iter().enumerate() {
                if *p == Some(n) {
                    order.push(c);
                }
            }
        }
        if order.len() != parents.len() {
            return Err(invalid("tree has unreachable nodes (parent cycle?)".to_string()));
        }

        let exe = std::env::current_exe()?;
        let spec_json = spec.to_json();
        let mut wire_addrs: HashMap<usize, SocketAddr> = HashMap::new();
        let mut nodes: Vec<NodeHandle> = Vec::new();
        let launch_result: io::Result<()> = (|| {
            for &node in &order {
                let parent_arg = match parents.get(node).copied().flatten() {
                    Some(p) => wire_addrs
                        .get(&p)
                        .map(|a| a.to_string())
                        .ok_or_else(|| invalid(format!("parent {p} of {node} not launched")))?,
                    None => "-".to_string(),
                };
                let mut child = Command::new(&exe)
                    .arg(crate::SENTINEL)
                    .arg(&spec_json)
                    .arg(format!("node={node}"))
                    .arg("epoch=1")
                    .arg(format!("parent={parent_arg}"))
                    .arg(format!("origin={}", origin.addr()))
                    .stdout(Stdio::piped())
                    .stderr(Stdio::inherit())
                    .spawn()?;
                let stdout = child
                    .stdout
                    .take()
                    .ok_or_else(|| invalid(format!("node {node}: no stdout pipe")))?;
                let mut reader = BufReader::new(stdout);
                let mut line = String::new();
                loop {
                    line.clear();
                    if reader.read_line(&mut line)? == 0 {
                        let _ = child.kill();
                        let _ = child.wait();
                        return Err(invalid(format!("node {node} exited before READY")));
                    }
                    if line.starts_with("READY ") {
                        break;
                    }
                }
                let tokens: Vec<&str> = line.split_whitespace().collect();
                let role = ready_field(&tokens, "role")?.to_string();
                let wire_addr: SocketAddr = ready_field(&tokens, "wire")?
                    .parse()
                    .map_err(|e| invalid(format!("node {node} wire addr: {e}")))?;
                let metrics_addr: SocketAddr = ready_field(&tokens, "metrics")?
                    .parse()
                    .map_err(|e| invalid(format!("node {node} metrics addr: {e}")))?;
                let http_field = ready_field(&tokens, "http")?;
                let http_addr = if http_field == "-" {
                    None
                } else {
                    Some(
                        http_field
                            .parse()
                            .map_err(|e| invalid(format!("node {node} http addr: {e}")))?,
                    )
                };
                wire_addrs.insert(node, wire_addr);
                nodes.push(NodeHandle {
                    node,
                    role,
                    wire_addr,
                    metrics_addr,
                    http_addr,
                    child: Some(child),
                });
            }
            Ok(())
        })();
        let mut cluster = Cluster { origin, nodes };
        if let Err(e) = launch_result {
            cluster.shutdown();
            return Err(e);
        }
        cluster.nodes.sort_by_key(|n| n.node);
        Ok(cluster)
    }

    /// The launcher-side origin's address (the leaves' shared backend).
    pub fn origin_addr(&self) -> SocketAddr {
        self.origin.addr()
    }

    /// Node handles in tree-node order.
    pub fn nodes(&self) -> &[NodeHandle] {
        &self.nodes
    }

    /// Data-plane addresses of the redirector leaves, in node order.
    pub fn redirector_addrs(&self) -> Vec<SocketAddr> {
        self.nodes.iter().filter_map(|n| n.http_addr).collect()
    }

    /// Fetches one node's `/metrics` exposition body.
    pub fn scrape(&self, node: usize) -> io::Result<String> {
        let handle = self
            .nodes
            .iter()
            .find(|n| n.node == node)
            .ok_or_else(|| invalid(format!("no node {node}")))?;
        let client = HttpClient {
            max_redirects: 1,
            self_redirect_pause: Duration::from_millis(5),
            timeout: Duration::from_millis(1500),
        };
        let r = client
            .get(&format!("http://{}/metrics", handle.metrics_addr))
            .map_err(|e| io::Error::other(format!("scrape node {node}: {e}")))?;
        if r.response.status != StatusCode::OK {
            return Err(io::Error::other(format!(
                "scrape node {node}: HTTP {}",
                r.response.status.0
            )));
        }
        String::from_utf8(r.response.body)
            .map_err(|e| invalid(format!("scrape node {node}: not UTF-8: {e}")))
    }

    /// Kills one node's process (fault injection). The rest of the tree
    /// keeps running on last-good values.
    pub fn kill_node(&mut self, node: usize) -> bool {
        match self.nodes.iter_mut().find(|n| n.node == node) {
            Some(h) if h.alive() => {
                h.kill();
                true
            }
            _ => false,
        }
    }

    /// Kills every node process, leaves first. Idempotent.
    pub fn shutdown(&mut self) {
        for h in self.nodes.iter_mut().rev() {
            h.kill();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
