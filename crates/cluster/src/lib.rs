//! `covenant-cluster`: run the combining tree as real OS processes.
//!
//! Layer three of the transport refactor. `covenant-tree` defines the
//! [`covenant_tree::CoordTransport`] seam and `covenant-wire` implements
//! it over framed sockets; this crate turns a
//! [`covenant_core::DeploymentSpec`] into an actual *deployment* — one OS
//! process per tree node, each running a wire runtime, redirector leaves
//! running a real [`covenant_l7::ShardedL7`] data plane, and every
//! process serving a prometheus-style `GET /metrics` endpoint.
//!
//! The process model is re-exec: [`Cluster::launch`] spawns the current
//! executable with a sentinel argv, and host binaries call
//! [`maybe_run_node`] first thing in `main` to take the node path. See
//! [`mod@proc`] for the node side and [`mod@launch`] for the launcher.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod launch;
pub mod metrics;
pub mod proc;

pub use launch::{Cluster, NodeHandle};
pub use metrics::render_metrics;
pub use proc::{maybe_run_node, SENTINEL};
