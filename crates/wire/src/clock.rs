//! The wire transport's physical clock.
//!
//! A multi-process deployment has no shared epoch: each process's
//! coordinator clock starts when the process does. The wire runtime needs
//! a physical clock anyway — to *measure* propagation (the whole point of
//! the socket transport: `tree_rtt_us` is a measured quantity, not an
//! injected delay), to stamp arriving aggregates into the local view, and
//! to pace round-timeout and reconnect deadlines. `WireClock` is that
//! clock, and its two methods below are the only sanctioned wall-clock
//! reads in this crate; a `Coordinator` built over the wire transport
//! adopts the same epoch via `CoordTransport::clock_epoch`, so data-plane
//! timestamps and measured arrival stamps share one time base.

use std::time::Instant;

/// Seconds-since-epoch clock shared by the wire runtime and the
/// coordinator built over it.
#[derive(Debug, Clone, Copy)]
pub struct WireClock {
    epoch: Instant,
}

impl WireClock {
    /// A clock starting now — created once per process, at transport
    /// construction.
    pub fn new() -> Self {
        // The RTT/propagation measurement epoch (see module docs): the
        // one place the wire crate is allowed to touch the wall clock.
        WireClock { epoch: Instant::now() } // covenant: allow(wall-clock)
    }

    /// The raw instant for deadline arithmetic and RTT deltas.
    pub fn now_instant(&self) -> Instant {
        // Companion read to `new`: all wire-runtime time measurement
        // funnels through this method.
        Instant::now() // covenant: allow(wall-clock)
    }

    /// Seconds since the epoch (the process's coordination time base).
    pub fn now(&self) -> f64 {
        self.now_instant().duration_since(self.epoch).as_secs_f64()
    }

    /// The epoch itself, adopted by `Coordinator::with_transport`.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }
}

impl Default for WireClock {
    fn default() -> Self {
        WireClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone_from_its_epoch() {
        let c = WireClock::new();
        let a = c.now();
        let b = c.now();
        assert!(a >= 0.0);
        assert!(b >= a);
        assert!(c.now_instant() >= c.epoch());
    }
}
