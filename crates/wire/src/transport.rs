//! The socket-tree [`CoordTransport`]: what the enforcement plane sees.
//!
//! One `WireTransport` lives in each process (or, in loopback tests, each
//! runtime thread) and represents exactly one tree node. Publishes are
//! queued to the node's wire runtime and become `Up` frames; reads scan a
//! small local view of the `Down` totals the runtime has delivered. The
//! staleness contract is structural: a round's total is only ever stamped
//! *at or after* the boundary that round was published at, so the
//! enforcement core's strictly-before reads observe at best the previous
//! round — one window stale, exactly like the in-process tree.

use crate::clock::WireClock;
use crate::stats::WireStats;
use covenant_reactor::WakeHandle;
use covenant_tree::CoordTransport;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How the runtime stamps delivered totals into the local view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StampMode {
    /// Stamp with the boundary time carried in the frame, and never force
    /// a round on timeout — deterministic virtual-time replays (the
    /// sim/live differential test) where the caller barriers on
    /// [`WireTransport::completed_rounds`] between boundaries.
    Virtual,
    /// Stamp with the local receive time from the [`WireClock`] — the
    /// propagation delay becomes a *measured* quantity — and force rounds
    /// with last-good child values at the next aligned window boundary.
    Live,
}

/// Aggregates the local view retains; old rounds beyond this are dropped.
const VIEW_CAP: usize = 128;

/// One queued own-publish: (round, demand, boundary time).
pub(crate) type OwnPublish = (u64, Vec<f64>, f64);

pub(crate) struct ViewState {
    /// `(stamp, total)` in monotone stamp order, capped at [`VIEW_CAP`].
    entries: VecDeque<(f64, Vec<f64>)>,
}

pub(crate) struct SharedState {
    /// Own publishes awaiting the runtime (drained on wake).
    pub(crate) outbox: Mutex<VecDeque<OwnPublish>>,
    /// Round counter: one per publish.
    pub(crate) rounds_published: AtomicU64,
    /// Highest round whose global total reached this node.
    pub(crate) rounds_completed: AtomicU64,
    /// Delivered global totals, visible to reads.
    pub(crate) view: Mutex<ViewState>,
}

impl SharedState {
    pub(crate) fn new() -> SharedState {
        SharedState {
            outbox: Mutex::new(VecDeque::new()),
            rounds_published: AtomicU64::new(0),
            rounds_completed: AtomicU64::new(0),
            view: Mutex::new(ViewState { entries: VecDeque::new() }),
        }
    }

    /// Runtime-side delivery of a round's global total.
    pub(crate) fn deliver(&self, round: u64, stamp: f64, total: Vec<f64>) {
        let mut view = self.view.lock();
        // Clamp non-monotone (or NaN) stamps forward so reads stay sane.
        let last = view.entries.back().map(|(s, _)| *s).unwrap_or(f64::NEG_INFINITY);
        let stamp = if stamp > last { stamp } else { last };
        view.entries.push_back((stamp, total));
        while view.entries.len() > VIEW_CAP {
            view.entries.pop_front();
        }
        drop(view);
        self.rounds_completed.fetch_max(round, Ordering::Release);
    }
}

/// The per-node [`CoordTransport`] over the wire runtime (see module docs).
pub struct WireTransport {
    pub(crate) shared: Arc<SharedState>,
    pub(crate) stats: Arc<WireStats>,
    pub(crate) clock: WireClock,
    pub(crate) mode: StampMode,
    pub(crate) wake: WakeHandle,
    /// Tree size, for `CoordTransport::nodes`.
    pub(crate) n_nodes: usize,
    /// This endpoint's tree node id (publish/read `node` args must match).
    pub(crate) node: usize,
}

impl WireTransport {
    /// This endpoint's tree node id.
    pub fn node(&self) -> usize {
        self.node
    }

    /// The runtime's counters (frames, rounds, reconnects, RTT).
    pub fn stats(&self) -> &Arc<WireStats> {
        &self.stats
    }

    /// The shared physical clock.
    pub fn clock(&self) -> WireClock {
        self.clock
    }

    /// Highest round whose global total has reached this node — the
    /// barrier virtual-time replays wait on between boundaries.
    pub fn completed_rounds(&self) -> u64 {
        self.shared.rounds_completed.load(Ordering::Acquire)
    }

    /// Rounds this node has published so far.
    pub fn published_rounds(&self) -> u64 {
        self.shared.rounds_published.load(Ordering::Acquire)
    }
}

impl CoordTransport for WireTransport {
    fn nodes(&self) -> usize {
        self.n_nodes
    }

    fn publish_at(&self, node: usize, demand: Vec<f64>, t: f64) {
        debug_assert_eq!(node, self.node, "wire transport is bound to one node");
        let round = self.shared.rounds_published.fetch_add(1, Ordering::AcqRel) + 1;
        self.shared.outbox.lock().push_back((round, demand, t));
        self.wake.wake();
    }

    fn read_at(&self, node: usize, t: f64) -> Option<Vec<f64>> {
        debug_assert_eq!(node, self.node, "wire transport is bound to one node");
        let view = self.shared.view.lock();
        view.entries.iter().rev().find(|(s, _)| *s <= t).map(|(_, v)| v.clone())
    }

    fn read_before(&self, node: usize, t: f64) -> Option<Vec<f64>> {
        debug_assert_eq!(node, self.node, "wire transport is bound to one node");
        let view = self.shared.view.lock();
        view.entries.iter().rev().find(|(s, _)| *s < t).map(|(_, v)| v.clone())
    }

    fn messages(&self) -> u64 {
        self.stats.frames_sent() + self.stats.frames_received()
    }

    fn clock_epoch(&self) -> Option<Instant> {
        match self.mode {
            StampMode::Live => Some(self.clock.epoch()),
            StampMode::Virtual => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covenant_reactor::WakeFd;

    fn transport() -> WireTransport {
        let (_fd, wake) = WakeFd::new().expect("eventfd");
        WireTransport {
            shared: Arc::new(SharedState::new()),
            stats: Arc::new(WireStats::new()),
            clock: WireClock::new(),
            mode: StampMode::Virtual,
            wake,
            n_nodes: 3,
            node: 1,
        }
    }

    #[test]
    fn publishes_queue_rounds_in_order() {
        let t = transport();
        t.publish_at(1, vec![1.0], 0.1);
        t.publish_at(1, vec![2.0], 0.2);
        assert_eq!(t.published_rounds(), 2);
        let outbox = t.shared.outbox.lock();
        let rounds: Vec<u64> = outbox.iter().map(|(r, _, _)| *r).collect();
        assert_eq!(rounds, vec![1, 2]);
    }

    #[test]
    fn reads_honor_strict_and_inclusive_cutoffs() {
        let t = transport();
        t.shared.deliver(1, 0.1, vec![5.0]);
        t.shared.deliver(2, 0.2, vec![7.0]);
        assert_eq!(t.read_at(1, 0.2), Some(vec![7.0]));
        assert_eq!(t.read_before(1, 0.2), Some(vec![5.0]));
        assert_eq!(t.read_before(1, 0.1), None);
        assert_eq!(t.completed_rounds(), 2);
    }

    #[test]
    fn non_monotone_stamps_clamp_forward() {
        let t = transport();
        t.shared.deliver(1, 0.5, vec![1.0]);
        t.shared.deliver(2, 0.3, vec![2.0]); // clamped to 0.5
        t.shared.deliver(3, f64::NAN, vec![3.0]); // clamped to 0.5
        assert_eq!(t.read_at(1, 0.5), Some(vec![3.0]));
        assert_eq!(t.read_before(1, 0.5), None);
    }

    #[test]
    fn view_is_bounded() {
        let t = transport();
        for i in 0..(VIEW_CAP as u64 + 50) {
            t.shared.deliver(i + 1, i as f64, vec![i as f64]);
        }
        assert_eq!(t.shared.view.lock().entries.len(), VIEW_CAP);
        // The newest entries survive.
        let newest = (VIEW_CAP as u64 + 49) as f64;
        assert_eq!(t.read_at(1, 1e18), Some(vec![newest]));
    }
}
