//! The length-prefixed binary codec for combining-tree frames.
//!
//! Every frame is `u32-LE payload length` followed by the payload:
//!
//! ```text
//! Hello  kind=1 · node u32
//! Up     kind=2 · node u32 · epoch u32 · round u64 · t f64 · count u32 · count × f64
//! Down   kind=3 · node u32 · epoch u32 · round u64 · t f64 · count u32 · count × f64
//! ```
//!
//! `Up` carries a node's *subtree* aggregate toward its parent; `Down`
//! carries the root's global total back toward the leaves; `Hello`
//! identifies a child connection so the parent knows which tree edge it
//! is. `round` is the sender's publish-round counter (per-process window
//! counters never align across machines, so rounds — not window ids — key
//! the combine), `t` the sender's boundary timestamp, and `epoch` the tree
//! generation, letting peers drop frames from a stale topology.
//!
//! Decoding never panics: truncated input yields `Ok(None)` (read more),
//! and structurally invalid input yields a [`WireError`] so the connection
//! can be dropped and re-established.

use std::fmt;

/// Hard cap on per-frame vector width — bounds a frame at ~32 KiB so a
/// hostile or corrupt length prefix cannot balloon buffers.
pub const MAX_VALUES: usize = 4096;

/// Largest legal payload: the fixed `Up`/`Down` header plus
/// [`MAX_VALUES`] doubles.
pub const MAX_PAYLOAD: usize = 1 + 4 + 4 + 8 + 8 + 4 + MAX_VALUES * 8;

const KIND_HELLO: u8 = 1;
const KIND_UP: u8 = 2;
const KIND_DOWN: u8 = 3;

/// One combining-tree frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Child-connection handshake: which tree node this edge leads to.
    Hello {
        /// The connecting child's node id.
        node: u32,
    },
    /// A subtree aggregate travelling toward the root.
    Up {
        /// Sender node id.
        node: u32,
        /// Tree generation.
        epoch: u32,
        /// Sender's publish-round counter.
        round: u64,
        /// Sender's window-boundary timestamp (its clock domain).
        t: f64,
        /// Per-principal subtree demand sums.
        values: Vec<f64>,
    },
    /// The root's global total travelling toward the leaves.
    Down {
        /// Sender node id (the root, or the interior node forwarding).
        node: u32,
        /// Tree generation.
        epoch: u32,
        /// The root's round this total closes.
        round: u64,
        /// The root's boundary timestamp for the round.
        t: f64,
        /// Per-principal global demand sums.
        values: Vec<f64>,
    },
}

/// A structural decode failure — drop the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Unknown frame kind byte.
    BadKind(u8),
    /// Length prefix exceeds [`MAX_PAYLOAD`].
    Oversized(usize),
    /// Payload ended before the fields it promised.
    Truncated,
    /// Value count exceeds [`MAX_VALUES`].
    TooManyValues(usize),
    /// Payload longer than its fields.
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversized(n) => write!(f, "frame payload of {n} bytes exceeds cap"),
            WireError::Truncated => write!(f, "frame payload truncated"),
            WireError::TooManyValues(n) => write!(f, "frame carries {n} values, over cap"),
            WireError::TrailingBytes => write!(f, "frame payload has trailing bytes"),
        }
    }
}

impl std::error::Error for WireError {}

/// Byte cursor over a frame payload; every read is bounds-checked.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let s = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

impl Frame {
    /// Appends the length-prefixed encoding of `self` to `out`. Vectors
    /// wider than [`MAX_VALUES`] are silently clipped — the enforcement
    /// plane never approaches the cap, and clipping beats a panic on the
    /// data path.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let len_at = out.len();
        put_u32(out, 0); // placeholder
        let payload_at = out.len();
        match self {
            Frame::Hello { node } => {
                out.push(KIND_HELLO);
                put_u32(out, *node);
            }
            Frame::Up { node, epoch, round, t, values }
            | Frame::Down { node, epoch, round, t, values } => {
                out.push(match self {
                    Frame::Up { .. } => KIND_UP,
                    _ => KIND_DOWN,
                });
                put_u32(out, *node);
                put_u32(out, *epoch);
                put_u64(out, *round);
                put_f64(out, *t);
                let vals = values.get(..values.len().min(MAX_VALUES)).unwrap_or(&[]);
                put_u32(out, vals.len() as u32);
                for v in vals {
                    put_f64(out, *v);
                }
            }
        }
        let payload_len = (out.len() - payload_at) as u32;
        if let Some(slot) = out.get_mut(len_at..len_at + 4) {
            slot.copy_from_slice(&payload_len.to_le_bytes());
        }
    }

    /// Attempts to decode one frame from the front of `buf`.
    ///
    /// Returns `Ok(Some((frame, consumed)))` on success, `Ok(None)` when
    /// more bytes are needed, and `Err` when the stream is structurally
    /// invalid and the connection should be dropped.
    pub fn decode(buf: &[u8]) -> Result<Option<(Frame, usize)>, WireError> {
        let Some(prefix) = buf.get(..4) else {
            return Ok(None);
        };
        let mut b = [0u8; 4];
        b.copy_from_slice(prefix);
        let len = u32::from_le_bytes(b) as usize;
        if len > MAX_PAYLOAD {
            return Err(WireError::Oversized(len));
        }
        let total = 4 + len;
        let Some(payload) = buf.get(4..total) else {
            return Ok(None);
        };
        let mut c = Cursor::new(payload);
        let kind = c.u8()?;
        let frame = match kind {
            KIND_HELLO => Frame::Hello { node: c.u32()? },
            KIND_UP | KIND_DOWN => {
                let node = c.u32()?;
                let epoch = c.u32()?;
                let round = c.u64()?;
                let t = c.f64()?;
                let count = c.u32()? as usize;
                if count > MAX_VALUES {
                    return Err(WireError::TooManyValues(count));
                }
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    values.push(c.f64()?);
                }
                if kind == KIND_UP {
                    Frame::Up { node, epoch, round, t, values }
                } else {
                    Frame::Down { node, epoch, round, t, values }
                }
            }
            other => return Err(WireError::BadKind(other)),
        };
        if !c.done() {
            return Err(WireError::TrailingBytes);
        }
        Ok(Some((frame, total)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: &Frame) -> Frame {
        let mut buf = Vec::new();
        f.encode(&mut buf);
        let (decoded, used) = Frame::decode(&buf).unwrap().unwrap();
        assert_eq!(used, buf.len());
        decoded
    }

    #[test]
    fn hello_roundtrips() {
        let f = Frame::Hello { node: 7 };
        assert_eq!(roundtrip(&f), f);
    }

    #[test]
    fn up_and_down_roundtrip() {
        let up = Frame::Up {
            node: 3,
            epoch: 1,
            round: 42,
            t: 4.2,
            values: vec![0.0, -1.5, 1e9],
        };
        assert_eq!(roundtrip(&up), up);
        let down = Frame::Down {
            node: 0,
            epoch: 1,
            round: 42,
            t: 4.2,
            values: vec![f64::MAX, f64::MIN_POSITIVE],
        };
        assert_eq!(roundtrip(&down), down);
    }

    #[test]
    fn truncated_input_wants_more_bytes() {
        let mut buf = Vec::new();
        Frame::Up { node: 1, epoch: 0, round: 9, t: 1.0, values: vec![1.0, 2.0] }
            .encode(&mut buf);
        for cut in 0..buf.len() {
            assert_eq!(Frame::decode(&buf[..cut]).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn two_frames_in_one_buffer_decode_in_order() {
        let mut buf = Vec::new();
        Frame::Hello { node: 2 }.encode(&mut buf);
        Frame::Down { node: 0, epoch: 0, round: 1, t: 0.1, values: vec![5.0] }.encode(&mut buf);
        let (first, used) = Frame::decode(&buf).unwrap().unwrap();
        assert_eq!(first, Frame::Hello { node: 2 });
        let (second, used2) = Frame::decode(&buf[used..]).unwrap().unwrap();
        assert!(matches!(second, Frame::Down { round: 1, .. }));
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn oversized_length_prefix_is_an_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        assert!(matches!(Frame::decode(&buf), Err(WireError::Oversized(_))));
    }

    #[test]
    fn oversized_value_count_is_an_error() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1 + 4 + 4 + 8 + 8 + 4);
        buf.push(KIND_UP);
        put_u32(&mut buf, 0);
        put_u32(&mut buf, 0);
        put_u64(&mut buf, 1);
        put_f64(&mut buf, 0.0);
        put_u32(&mut buf, (MAX_VALUES + 1) as u32);
        assert!(matches!(Frame::decode(&buf), Err(WireError::TooManyValues(_))));
    }

    #[test]
    fn bad_kind_is_an_error() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1);
        buf.push(9);
        assert!(matches!(Frame::decode(&buf), Err(WireError::BadKind(9))));
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 6);
        buf.push(KIND_HELLO);
        put_u32(&mut buf, 3);
        buf.push(0xee);
        assert!(matches!(Frame::decode(&buf), Err(WireError::TrailingBytes)));
    }

    #[test]
    fn encode_clips_at_max_values() {
        let f = Frame::Up {
            node: 0,
            epoch: 0,
            round: 1,
            t: 0.0,
            values: vec![1.0; MAX_VALUES + 10],
        };
        let mut buf = Vec::new();
        f.encode(&mut buf);
        let (decoded, _) = Frame::decode(&buf).unwrap().unwrap();
        match decoded {
            Frame::Up { values, .. } => assert_eq!(values.len(), MAX_VALUES),
            other => panic!("{other:?}"),
        }
    }
}
