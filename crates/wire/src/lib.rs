//! `covenant-wire`: the combining tree over real sockets.
//!
//! The in-process tree (`covenant-tree`) models the paper's hierarchy of
//! redirectors as a data structure with injected propagation lag. This
//! crate replaces the model with the thing itself: each tree node is a
//! wire endpoint speaking a tiny length-prefixed binary protocol
//! ([`Frame`]) over TCP along its tree edges, served by one nonblocking
//! epoll loop per node ([`WireNode`]) on the `covenant-reactor`
//! primitives. The enforcement plane is oblivious — it talks to a
//! [`WireTransport`], the socket-backed implementation of
//! `covenant_tree::CoordTransport`, through the same `Coordinator` it
//! always used.
//!
//! What changes is epistemology, not semantics: per-window message counts
//! (the paper's 2(n−1)) and propagation delay stop being simulation
//! parameters and become measured quantities ([`WireStats`]). Fault
//! tolerance maps onto the same staleness story — a lost edge degrades to
//! last-good values and bounded staleness, not to blocking.
//!
//! Layout:
//! - [`frame`]: the codec — never panics on hostile bytes (proptested).
//! - [`clock`]: the per-process measurement clock (the crate's only
//!   sanctioned wall-clock reads).
//! - [`stats`]: frames/rounds/reconnects/RTT counters.
//! - [`transport`]: the `CoordTransport` the enforcement plane holds.
//! - [`node`]: the epoll runtime and [`spawn_local`] loopback helper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod frame;
mod node;
mod stats;
mod transport;

pub use clock::WireClock;
pub use frame::{Frame, WireError, MAX_VALUES};
pub use node::{spawn_local, WireNode, WireNodeConfig};
pub use stats::WireStats;
pub use transport::{StampMode, WireTransport};
