//! Lock-free observability for a wire-transport node.
//!
//! Same design as `covenant-enforce`'s `ShardStats`: monotone counters
//! stored relaxed, read whenever an observer (metrics endpoint, bench
//! harness, test barrier) likes.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for one node's wire runtime.
#[derive(Debug, Default)]
pub struct WireStats {
    /// Data frames (`Up`/`Down`) written to peers.
    frames_sent: AtomicU64,
    /// Data frames (`Up`/`Down`) received from peers.
    frames_received: AtomicU64,
    /// Aggregation rounds closed at this node (root: totals computed;
    /// others: `Down` totals received).
    rounds_completed: AtomicU64,
    /// Rounds closed with last-good child values because the round
    /// timed out at the next window boundary.
    rounds_forced: AtomicU64,
    /// Parent-connection re-establishments after the initial connect.
    reconnects: AtomicU64,
    /// Microseconds from the last `Up` send to its round's `Down`
    /// arrival — the measured up-and-down tree propagation time.
    last_rtt_us: AtomicU64,
}

impl WireStats {
    /// Fresh zeroed stats.
    pub fn new() -> WireStats {
        WireStats::default()
    }

    pub(crate) fn frame_sent(&self) {
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn frame_received(&self) {
        self.frames_received.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn round_completed(&self, round: u64) {
        // Rounds close in order; store the highest seen.
        self.rounds_completed.fetch_max(round, Ordering::Relaxed);
    }

    pub(crate) fn round_forced(&self) {
        self.rounds_forced.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rtt_us(&self, us: u64) {
        self.last_rtt_us.store(us, Ordering::Relaxed);
    }

    /// Data frames written to peers.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent.load(Ordering::Relaxed)
    }

    /// Data frames received from peers.
    pub fn frames_received(&self) -> u64 {
        self.frames_received.load(Ordering::Relaxed)
    }

    /// Highest aggregation round closed at this node.
    pub fn rounds_completed(&self) -> u64 {
        self.rounds_completed.load(Ordering::Relaxed)
    }

    /// Rounds closed on timeout with last-good child values.
    pub fn rounds_forced(&self) -> u64 {
        self.rounds_forced.load(Ordering::Relaxed)
    }

    /// Parent-connection re-establishments.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Most recent measured up-and-down propagation time, microseconds.
    pub fn last_rtt_us(&self) -> u64 {
        self.last_rtt_us.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_rtt_overwrites() {
        let s = WireStats::new();
        s.frame_sent();
        s.frame_sent();
        s.frame_received();
        s.round_completed(3);
        s.round_completed(2); // out-of-order store keeps the max
        s.round_forced();
        s.reconnect();
        s.record_rtt_us(120);
        s.record_rtt_us(80);
        assert_eq!(s.frames_sent(), 2);
        assert_eq!(s.frames_received(), 1);
        assert_eq!(s.rounds_completed(), 3);
        assert_eq!(s.rounds_forced(), 1);
        assert_eq!(s.reconnects(), 1);
        assert_eq!(s.last_rtt_us(), 80);
    }
}
