//! The per-node wire runtime: one epoll loop speaking the frame protocol
//! along this node's tree edges.
//!
//! Aggregation is *round-structured*: every publish from the local
//! enforcement plane increments the node's round counter. A non-root node
//! emits exactly one `Up` frame per round — once its own round-`r` publish
//! and a round-≥`r` subtree aggregate from every child are in hand (or, in
//! live mode, when the round times out at the next aligned window
//! boundary, in which case each child contributes its *last-good* value).
//! The root closes the round by computing the global total, delivering it
//! to its local view, and cascading one `Down` frame to each child;
//! interior nodes forward it on. Per window that is one `Up` and one
//! `Down` on every edge: the paper's 2(n−1) messages, now countable on
//! real sockets.
//!
//! Disconnection degrades, never blocks: a parent that loses a child keeps
//! combining with the child's last-good values (rounds are *forced* at the
//! boundary), and a child that loses its parent keeps serving admissions
//! from its last delivered total while reconnecting — the
//! one-window-staleness semantics the differential test encodes, stretched
//! only as far as the outage itself. A child that *restarts* (fresh
//! process, round counter reset to the beginning) is rebased onto its
//! pre-crash round sequence when it rejoins, so its new demand is not
//! mistaken for stale data.

use crate::clock::WireClock;
use crate::frame::{Frame, MAX_PAYLOAD};
use crate::stats::WireStats;
use crate::transport::{OwnPublish, SharedState, StampMode, WireTransport};
use covenant_enforce::next_aligned_boundary;
use covenant_reactor::{
    connect_nonblocking, take_socket_error, Epoll, Event, Interest, Io, RecvBuf, SendBuf, Slab,
    WakeFd, WakeHandle,
};
use std::collections::{HashMap, HashSet};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const T_LISTEN: u64 = 0;
const T_WAKE: u64 = 1;
const T_PARENT: u64 = 2;
const T_CHILD_BASE: u64 = 3;

/// Receive cap per connection: a handful of frames at maximum width.
const RECV_LIMIT: usize = 4 * (MAX_PAYLOAD + 4);
/// Parent reconnect backoff.
const RECONNECT_DELAY: Duration = Duration::from_millis(10);
/// Idle epoll timeout when no deadline is pending.
const IDLE_TIMEOUT_MS: i32 = 25;

/// Configuration for one tree node's wire runtime.
#[derive(Debug, Clone)]
pub struct WireNodeConfig {
    /// This node's tree id.
    pub node: usize,
    /// Total tree size (for `CoordTransport::nodes`).
    pub nodes: usize,
    /// The parent's listen address; `None` for the root.
    pub parent: Option<SocketAddr>,
    /// Direct children's node ids.
    pub children: Vec<usize>,
    /// Tree generation carried in every frame.
    pub epoch: u32,
    /// Virtual (replay) or live (measured) stamping.
    pub mode: StampMode,
    /// Window length — live mode forces unfinished rounds at the next
    /// aligned boundary on this grid.
    pub window: Duration,
    /// Listener bind address (children connect here).
    pub bind: SocketAddr,
}

/// A running wire-runtime node; stops and joins on drop.
pub struct WireNode {
    transport: Arc<WireTransport>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    wake: WakeHandle,
    handle: Option<JoinHandle<()>>,
}

impl WireNode {
    /// Binds the listener, spawns the runtime thread, and returns the
    /// handle plus the node's [`WireTransport`].
    pub fn start(cfg: WireNodeConfig) -> io::Result<WireNode> {
        let listener = TcpListener::bind(cfg.bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (wakefd, wake) = WakeFd::new()?;
        let shared = Arc::new(SharedState::new());
        let stats = Arc::new(WireStats::new());
        let clock = WireClock::new();
        let stop = Arc::new(AtomicBool::new(false));
        let transport = Arc::new(WireTransport {
            shared: Arc::clone(&shared),
            stats: Arc::clone(&stats),
            clock,
            mode: cfg.mode,
            wake: wake.clone(),
            n_nodes: cfg.nodes,
            node: cfg.node,
        });
        let epoll = Epoll::new()?;
        epoll.add(&listener, T_LISTEN, Interest::READ)?;
        epoll.add(&wakefd, T_WAKE, Interest::READ)?;
        let mut runtime = Runtime {
            cfg,
            epoll,
            listener,
            wakefd,
            shared,
            stats,
            clock,
            stop: Arc::clone(&stop),
            parent: None,
            next_connect: Some(clock.now_instant()),
            ever_connected: false,
            children: Slab::new(),
            round: RoundState::default(),
            scratch: Vec::new(),
        };
        let handle = std::thread::Builder::new()
            .name(format!("wire-node-{}", runtime.cfg.node))
            .spawn(move || runtime.run())?;
        Ok(WireNode { transport, addr, stop, wake, handle: Some(handle) })
    }

    /// The transport the local enforcement plane publishes and reads
    /// through.
    pub fn transport(&self) -> Arc<WireTransport> {
        Arc::clone(&self.transport)
    }

    /// The runtime's counters.
    pub fn stats(&self) -> Arc<WireStats> {
        Arc::clone(self.transport.stats())
    }

    /// The address children connect to.
    pub fn listen_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the runtime thread and joins it (idempotent).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.wake.wake();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for WireNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct ParentConn {
    stream: TcpStream,
    recv: RecvBuf,
    send: SendBuf,
    connected: bool,
    interest: Interest,
}

struct ChildConn {
    stream: TcpStream,
    recv: RecvBuf,
    send: SendBuf,
    /// The child node id, once its `Hello` arrives.
    hello: Option<u32>,
    interest: Interest,
}

#[derive(Default)]
struct RoundState {
    /// The own-publish round currently being combined.
    target: Option<OwnPublish>,
    /// Last-good subtree aggregate per child id: (round, values), with the
    /// round already rebased by `child_base`.
    child_latest: HashMap<u32, (u64, Vec<f64>)>,
    /// Per-child offset added to reported rounds. A child process that
    /// restarts resets its round counter to the beginning; without the
    /// rebase every one of its fresh `Up` frames would compare as older
    /// than its pre-crash last-good value and be dropped as stale.
    child_base: HashMap<u32, u64>,
    /// Children whose next `Up` re-derives the rebase (they just said
    /// `Hello`, so their counter may have reset).
    rejoining: HashSet<u32>,
    /// Live-mode deadline after which the target round is forced.
    force_at: Option<Instant>,
    /// Latest emitted `Up` (round, subtree total, t) for reconnect resync.
    last_up: Option<(u64, Vec<f64>, f64)>,
    /// When the latest `Up` left, for RTT measurement.
    up_sent_at: Option<(u64, Instant)>,
}

struct Runtime {
    cfg: WireNodeConfig,
    epoll: Epoll,
    listener: TcpListener,
    wakefd: WakeFd,
    shared: Arc<SharedState>,
    stats: Arc<WireStats>,
    clock: WireClock,
    stop: Arc<AtomicBool>,
    parent: Option<ParentConn>,
    /// When to next attempt the parent connect; `None` while a connection
    /// is up or for the root.
    next_connect: Option<Instant>,
    ever_connected: bool,
    children: Slab<ChildConn>,
    round: RoundState,
    scratch: Vec<u8>,
}

/// Element-wise accumulate, growing `into` to the wider length.
fn accumulate(into: &mut Vec<f64>, vals: &[f64]) {
    if vals.len() > into.len() {
        into.resize(vals.len(), 0.0);
    }
    for (slot, v) in into.iter_mut().zip(vals.iter()) {
        *slot += *v;
    }
}

impl Runtime {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        while !self.stop.load(Ordering::Relaxed) {
            let now = self.clock.now_instant();
            self.maybe_connect_parent(now);
            let timeout = self.poll_timeout(now);
            if self.epoll.wait(&mut events, timeout).is_err() {
                // A failed wait (fd pressure) is retried; the loop's other
                // deadlines still advance off the clock below.
                std::thread::yield_now();
            }
            for ev in events.iter().copied() {
                match ev.token {
                    T_LISTEN => self.accept_ready(),
                    T_WAKE => self.wakefd.drain(),
                    T_PARENT => self.parent_ready(ev),
                    t => {
                        if let Some(key) = t.checked_sub(T_CHILD_BASE) {
                            self.child_ready(key as usize, ev);
                        }
                    }
                }
            }
            let now = self.clock.now_instant();
            self.try_advance(now);
        }
    }

    /// Epoll timeout until the nearest pending deadline (round force or
    /// parent reconnect), bounded by the idle tick.
    fn poll_timeout(&self, now: Instant) -> i32 {
        let mut ms = IDLE_TIMEOUT_MS as u128;
        for deadline in [self.round.force_at, self.next_connect].into_iter().flatten() {
            let wait = deadline.saturating_duration_since(now).as_millis().max(1);
            ms = ms.min(wait);
        }
        ms.min(i32::MAX as u128) as i32
    }

    // ---- parent side -----------------------------------------------------

    fn maybe_connect_parent(&mut self, now: Instant) {
        let Some(addr) = self.cfg.parent else { return };
        if self.parent.is_some() {
            return;
        }
        let due = self.next_connect.is_none_or(|at| now >= at);
        if !due {
            return;
        }
        match connect_nonblocking(addr) {
            Ok(stream) => {
                let interest = Interest::READ | Interest::WRITE;
                if self.epoll.add(&stream, T_PARENT, interest).is_ok() {
                    self.parent = Some(ParentConn {
                        stream,
                        recv: RecvBuf::with_capacity_limit(RECV_LIMIT),
                        send: SendBuf::new(),
                        connected: false,
                        interest,
                    });
                    self.next_connect = None;
                } else {
                    self.next_connect = Some(now + RECONNECT_DELAY);
                }
            }
            Err(_) => {
                self.next_connect = Some(now + RECONNECT_DELAY);
            }
        }
    }

    fn drop_parent(&mut self) {
        if let Some(conn) = self.parent.take() {
            let _ = self.epoll.remove(&conn.stream);
        }
        self.next_connect = Some(self.clock.now_instant() + RECONNECT_DELAY);
    }

    fn parent_ready(&mut self, ev: Event) {
        let Some(conn) = self.parent.as_mut() else { return };
        if ev.error {
            let _ = take_socket_error(&conn.stream);
            self.drop_parent();
            return;
        }
        if ev.writable && !conn.connected {
            match take_socket_error(&conn.stream) {
                Ok(None) => {
                    conn.connected = true;
                    let _ = conn.stream.set_nodelay(true);
                    if self.ever_connected {
                        self.stats.reconnect();
                    }
                    self.ever_connected = true;
                    // Identify this edge, then resync the newest subtree
                    // aggregate so the parent's last-good value is fresh.
                    let node = self.cfg.node as u32;
                    let epoch = self.cfg.epoch;
                    let resync = self.round.last_up.clone();
                    self.queue_to_parent(&Frame::Hello { node }, false);
                    if let Some((round, values, t)) = resync {
                        self.queue_to_parent(
                            &Frame::Up { node, epoch, round, t, values },
                            true,
                        );
                    }
                }
                _ => {
                    self.drop_parent();
                    return;
                }
            }
        }
        if (ev.readable || ev.closed) && !self.read_parent_frames() {
            self.drop_parent();
            return;
        }
        if ev.writable {
            self.flush_parent();
        }
    }

    /// Reads and dispatches parent frames; false means drop the connection.
    fn read_parent_frames(&mut self) -> bool {
        loop {
            let Some(conn) = self.parent.as_mut() else { return true };
            match conn.recv.fill_from(&mut conn.stream) {
                Ok(Io::Progress(_)) => {
                    if !self.dispatch_parent_buffer() {
                        return false;
                    }
                }
                Ok(Io::WouldBlock) => return true,
                Ok(Io::Eof) | Err(_) => {
                    // Drain whatever parsed frames arrived before the close.
                    let _ = self.dispatch_parent_buffer();
                    return false;
                }
            }
        }
    }

    fn dispatch_parent_buffer(&mut self) -> bool {
        loop {
            let Some(conn) = self.parent.as_mut() else { return true };
            match Frame::decode(conn.recv.data()) {
                Ok(Some((frame, used))) => {
                    conn.recv.consume(used);
                    self.on_parent_frame(frame);
                }
                Ok(None) => return true,
                Err(_) => return false,
            }
        }
    }

    fn on_parent_frame(&mut self, frame: Frame) {
        let Frame::Down { epoch, round, t, values, .. } = frame else {
            return; // parents only send Down; anything else is ignored
        };
        self.stats.frame_received();
        if epoch != self.cfg.epoch {
            return;
        }
        let now = self.clock.now_instant();
        let stamp = match self.cfg.mode {
            StampMode::Virtual => t,
            StampMode::Live => self.clock.now(),
        };
        self.shared.deliver(round, stamp, values.clone());
        self.stats.round_completed(round);
        if let Some((r, sent_at)) = self.round.up_sent_at {
            if r == round {
                let us = now.saturating_duration_since(sent_at).as_micros();
                self.stats.record_rtt_us(us.min(u64::MAX as u128) as u64);
                self.round.up_sent_at = None;
            }
        }
        // Cascade toward the leaves.
        let node = self.cfg.node as u32;
        self.broadcast_down(&Frame::Down { node, epoch, round, t, values });
    }

    fn queue_to_parent(&mut self, frame: &Frame, count: bool) {
        let Some(conn) = self.parent.as_mut() else { return };
        if !conn.connected {
            return;
        }
        self.scratch.clear();
        frame.encode(&mut self.scratch);
        conn.send.push(&self.scratch);
        if count {
            self.stats.frame_sent();
        }
        self.flush_parent();
    }

    fn flush_parent(&mut self) {
        let Some(conn) = self.parent.as_mut() else { return };
        if !conn.connected {
            return;
        }
        match conn.send.flush_into(&mut conn.stream) {
            Ok(Io::Progress(_)) => {
                if conn.interest.contains(Interest::WRITE) {
                    conn.interest = Interest::READ;
                    let _ = self.epoll.modify(&conn.stream, T_PARENT, conn.interest);
                }
            }
            Ok(Io::WouldBlock) => {
                if !conn.interest.contains(Interest::WRITE) {
                    conn.interest = Interest::READ | Interest::WRITE;
                    let _ = self.epoll.modify(&conn.stream, T_PARENT, conn.interest);
                }
            }
            Ok(Io::Eof) | Err(_) => self.drop_parent(),
        }
    }

    // ---- child side ------------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let key = self.children.insert(ChildConn {
                        stream,
                        recv: RecvBuf::with_capacity_limit(RECV_LIMIT),
                        send: SendBuf::new(),
                        hello: None,
                        interest: Interest::READ,
                    });
                    let token = T_CHILD_BASE + key as u64;
                    let ok = match self.children.get(key) {
                        Some(c) => self.epoll.add(&c.stream, token, c.interest).is_ok(),
                        None => false,
                    };
                    if !ok {
                        self.children.remove(key);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    fn drop_child(&mut self, key: usize) {
        if let Some(conn) = self.children.remove(key) {
            let _ = self.epoll.remove(&conn.stream);
        }
    }

    fn child_ready(&mut self, key: usize, ev: Event) {
        if ev.error {
            self.drop_child(key);
            return;
        }
        if (ev.readable || ev.closed) && !self.read_child_frames(key) {
            self.drop_child(key);
            return;
        }
        if ev.writable {
            self.flush_child(key);
        }
    }

    /// Reads and dispatches child frames; false means drop the connection.
    fn read_child_frames(&mut self, key: usize) -> bool {
        loop {
            let Some(conn) = self.children.get_mut(key) else { return true };
            match conn.recv.fill_from(&mut conn.stream) {
                Ok(Io::Progress(_)) => {
                    if !self.dispatch_child_buffer(key) {
                        return false;
                    }
                }
                Ok(Io::WouldBlock) => return true,
                Ok(Io::Eof) | Err(_) => {
                    let _ = self.dispatch_child_buffer(key);
                    return false;
                }
            }
        }
    }

    fn dispatch_child_buffer(&mut self, key: usize) -> bool {
        loop {
            let Some(conn) = self.children.get_mut(key) else { return true };
            match Frame::decode(conn.recv.data()) {
                Ok(Some((frame, used))) => {
                    conn.recv.consume(used);
                    if !self.on_child_frame(key, frame) {
                        return false;
                    }
                }
                Ok(None) => return true,
                Err(_) => return false,
            }
        }
    }

    /// Handles one frame from a child edge; false drops the connection.
    fn on_child_frame(&mut self, key: usize, frame: Frame) -> bool {
        match frame {
            Frame::Hello { node } => {
                if !self.cfg.children.contains(&(node as usize)) {
                    return false; // not one of ours: refuse the edge
                }
                // A reconnecting child replaces its stale edge.
                let stale: Vec<usize> = self
                    .children
                    .iter()
                    .filter(|(k, c)| *k != key && c.hello == Some(node))
                    .map(|(k, _)| k)
                    .collect();
                for k in stale {
                    self.drop_child(k);
                }
                if let Some(conn) = self.children.get_mut(key) {
                    conn.hello = Some(node);
                }
                // The peer may be a restarted process whose round counter
                // begins again from zero; its next Up re-derives the rebase.
                self.round.rejoining.insert(node);
                true
            }
            Frame::Up { node, epoch, round, values, .. } => {
                self.stats.frame_received();
                if epoch != self.cfg.epoch {
                    return true; // stale topology: ignore, keep the edge
                }
                let id_ok =
                    self.children.get(key).map(|c| c.hello == Some(node)).unwrap_or(false);
                if !id_ok {
                    return false; // Up before Hello, or forged id
                }
                let base = self.round.child_base.get(&node).copied().unwrap_or(0);
                let mut eff = round.saturating_add(base);
                if self.round.rejoining.remove(&node) {
                    // First Up after a (re)connect: if the effective round
                    // does not advance past the stored last-good round, the
                    // child restarted and reset its counter — rebase so this
                    // frame lands immediately after the pre-crash round.
                    if let Some((prev, _)) = self.round.child_latest.get(&node) {
                        if eff <= *prev {
                            let rebased = prev.saturating_add(1).saturating_sub(round);
                            self.round.child_base.insert(node, rebased);
                            eff = round.saturating_add(rebased);
                        }
                    }
                }
                let newer = self
                    .round
                    .child_latest
                    .get(&node)
                    .map(|(r, _)| eff > *r)
                    .unwrap_or(true);
                if newer {
                    self.round.child_latest.insert(node, (eff, values));
                }
                true
            }
            Frame::Down { .. } => true, // children never send Down; ignore
        }
    }

    fn flush_child(&mut self, key: usize) {
        let epoll = &self.epoll;
        let token = T_CHILD_BASE + key as u64;
        let Some(conn) = self.children.get_mut(key) else { return };
        match conn.send.flush_into(&mut conn.stream) {
            Ok(Io::Progress(_)) => {
                if conn.interest.contains(Interest::WRITE) {
                    conn.interest = Interest::READ;
                    let _ = epoll.modify(&conn.stream, token, conn.interest);
                }
            }
            Ok(Io::WouldBlock) => {
                if !conn.interest.contains(Interest::WRITE) {
                    conn.interest = Interest::READ | Interest::WRITE;
                    let _ = epoll.modify(&conn.stream, token, conn.interest);
                }
            }
            Ok(Io::Eof) | Err(_) => self.drop_child(key),
        }
    }

    fn broadcast_down(&mut self, frame: &Frame) {
        self.scratch.clear();
        frame.encode(&mut self.scratch);
        let keys: Vec<usize> = self
            .children
            .iter()
            .filter(|(_, c)| c.hello.is_some())
            .map(|(k, _)| k)
            .collect();
        for key in keys {
            let Some(conn) = self.children.get_mut(key) else { continue };
            conn.send.push(&self.scratch);
            self.stats.frame_sent();
            self.flush_child(key);
        }
    }

    // ---- round engine ----------------------------------------------------

    /// Advances as many own rounds as are complete (or, in live mode,
    /// forced at their aligned-boundary deadline).
    fn try_advance(&mut self, now: Instant) {
        loop {
            if self.round.target.is_none() {
                let Some((r, demand, t)) = self.shared.outbox.lock().pop_front() else {
                    return;
                };
                if self.cfg.mode == StampMode::Live && !self.cfg.children.is_empty() {
                    // A round left incomplete at the next aligned window
                    // boundary is forced with last-good child values —
                    // the same grid the WindowDaemon skips along.
                    let published_at = Duration::try_from_secs_f64(t.max(0.0))
                        .ok()
                        .map(|d| self.clock.epoch() + d)
                        .unwrap_or(now);
                    self.round.force_at =
                        Some(next_aligned_boundary(published_at, now, self.cfg.window));
                }
                self.round.target = Some((r, demand, t));
            }
            let r = match self.round.target.as_ref() {
                Some((r, _, _)) => *r,
                None => return,
            };
            let ready = self.cfg.children.iter().all(|c| {
                self.round
                    .child_latest
                    .get(&(*c as u32))
                    .map(|(cr, _)| *cr >= r)
                    .unwrap_or(false)
            });
            let forced = self.cfg.mode == StampMode::Live
                && self.round.force_at.map(|d| now >= d).unwrap_or(false);
            if !ready && !forced {
                return;
            }
            let Some((r, demand, t)) = self.round.target.take() else { return };
            self.round.force_at = None;
            if !ready {
                self.stats.round_forced();
            }
            let mut total = demand;
            for c in &self.cfg.children {
                if let Some((_, vals)) = self.round.child_latest.get(&(*c as u32)) {
                    accumulate(&mut total, vals);
                }
            }
            let node = self.cfg.node as u32;
            let epoch = self.cfg.epoch;
            if self.cfg.parent.is_none() {
                // Root: the round closes here.
                let stamp = match self.cfg.mode {
                    StampMode::Virtual => t,
                    StampMode::Live => self.clock.now(),
                };
                self.shared.deliver(r, stamp, total.clone());
                self.stats.round_completed(r);
                self.broadcast_down(&Frame::Down { node, epoch, round: r, t, values: total });
            } else {
                self.round.last_up = Some((r, total.clone(), t));
                self.round.up_sent_at = Some((r, now));
                self.queue_to_parent(&Frame::Up { node, epoch, round: r, t, values: total }, true);
            }
        }
    }
}

/// Spawns an in-process loopback wire tree — one runtime thread per node —
/// from a `parents` array (`parents[i]` is node `i`'s parent; exactly one
/// `None` root; root must come first in spawn order, so parents must point
/// to lower indices). Returns the per-node handles in node order. Used by
/// tests and the loopback bench; the multi-process cluster builds the same
/// configs itself.
pub fn spawn_local(
    parents: &[Option<usize>],
    epoch: u32,
    mode: StampMode,
    window: Duration,
) -> io::Result<Vec<WireNode>> {
    let n = parents.len();
    let mut nodes: Vec<WireNode> = Vec::with_capacity(n);
    for (i, parent) in parents.iter().enumerate() {
        let parent_addr = match parent {
            None => None,
            Some(p) if *p < i => nodes.get(*p).map(|h| h.listen_addr()),
            Some(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "parents must point to already-spawned (lower-index) nodes",
                ))
            }
        };
        if parent.is_some() && parent_addr.is_none() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "missing parent node"));
        }
        let children: Vec<usize> = parents
            .iter()
            .enumerate()
            .filter(|(_, p)| **p == Some(i))
            .map(|(c, _)| c)
            .collect();
        let bind: SocketAddr = "127.0.0.1:0".parse().map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "loopback bind address")
        })?;
        nodes.push(WireNode::start(WireNodeConfig {
            node: i,
            nodes: n,
            parent: parent_addr,
            children,
            epoch,
            mode,
            window,
            bind,
        })?);
    }
    Ok(nodes)
}
