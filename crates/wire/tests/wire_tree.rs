//! Loopback integration tests for the wire combining tree: real sockets,
//! real epoll loops, one runtime thread per node.
//!
//! The headline properties: a round costs exactly 2(n−1) data frames
//! network-wide; totals delivered over the wire equal the in-process
//! aggregation; and killing a node degrades admissions to last-good
//! values — bounded staleness, never blocking.

use covenant_agreements::AgreementGraph;
use covenant_coord::{AdmissionControl, Coordinator};
use covenant_sched::SchedulerConfig;
use covenant_tree::CoordTransport;
use covenant_wire::{spawn_local, StampMode, WireNode, WireNodeConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Polls `cond` until it holds or the deadline passes.
fn wait_for(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Sum of data frames sent across all live nodes.
fn total_frames_sent(nodes: &[WireNode]) -> u64 {
    nodes.iter().map(|n| n.stats().frames_sent()).sum()
}

#[test]
fn three_node_star_totals_and_frame_economy() {
    let window = Duration::from_millis(100);
    let nodes = spawn_local(&[None, Some(0), Some(0)], 1, StampMode::Virtual, window)
        .expect("spawn loopback tree");
    let transports: Vec<_> = nodes.iter().map(|n| n.transport()).collect();

    const ROUNDS: u64 = 5;
    for r in 0..ROUNDS {
        let t = r as f64 * 0.1;
        for (i, tp) in transports.iter().enumerate() {
            tp.publish_at(i, vec![(i + 1) as f64], t);
        }
        wait_for("round completion on every node", Duration::from_secs(5), || {
            transports.iter().all(|tp| tp.completed_rounds() > r)
        });
        // Virtual mode never forces: every total is exact.
        let expect = vec![6.0]; // 1 + 2 + 3
        for (i, tp) in transports.iter().enumerate() {
            assert_eq!(tp.read_at(i, t), Some(expect.clone()), "node {i} round {r}");
            if r == 0 {
                // Strictly-before the first boundary there is nothing.
                assert_eq!(tp.read_before(i, t), None, "node {i}");
            }
        }
    }

    // The paper's message economy, now counted on sockets: per round one
    // Up per leaf and one Down per leaf — 2(n−1) data frames.
    let n = nodes.len() as u64;
    assert_eq!(total_frames_sent(&nodes), ROUNDS * 2 * (n - 1));
    for tp in &transports {
        assert_eq!(tp.stats().rounds_forced(), 0, "virtual mode never forces");
    }
}

#[test]
fn chain_topology_cascades_through_the_interior() {
    // 0 ← 1 ← 2: node 1 combines its own demand with node 2's Up before
    // sending one Up to the root, and forwards the root's Down onward.
    let window = Duration::from_millis(100);
    let nodes = spawn_local(&[None, Some(0), Some(1)], 7, StampMode::Virtual, window)
        .expect("spawn loopback chain");
    let transports: Vec<_> = nodes.iter().map(|n| n.transport()).collect();

    for (i, tp) in transports.iter().enumerate() {
        tp.publish_at(i, vec![10.0 * (i + 1) as f64, 1.0], 0.5);
    }
    wait_for("chain round completion", Duration::from_secs(5), || {
        transports.iter().all(|tp| tp.completed_rounds() >= 1)
    });
    for (i, tp) in transports.iter().enumerate() {
        assert_eq!(tp.read_at(i, 0.5), Some(vec![60.0, 3.0]), "node {i}");
    }
    // Chain economy: Ups on 2←1 and 1←0 edges, Downs back — still 2(n−1).
    assert_eq!(total_frames_sent(&nodes), 4);
}

#[test]
fn killing_a_leaf_degrades_to_last_good_values() {
    let window = Duration::from_millis(25);
    let mut nodes = spawn_local(&[None, Some(0), Some(0)], 2, StampMode::Live, window)
        .expect("spawn loopback tree");
    let transports: Vec<_> = nodes.iter().map(|n| n.transport()).collect();
    let clock = transports[0].clock();

    // A few healthy rounds so every node has published and the root holds
    // last-good values for both children.
    for r in 0..3u64 {
        for (i, tp) in transports.iter().enumerate() {
            tp.publish_at(i, vec![(i + 1) as f64], clock.now());
        }
        wait_for("healthy rounds", Duration::from_secs(5), || {
            transports[0].completed_rounds() > r
        });
    }
    assert_eq!(transports[0].read_at(0, clock.now()), Some(vec![6.0]));

    // Kill leaf 2: drop its runtime (sockets close, thread joins).
    let dead = nodes.remove(2);
    drop(dead);

    // The surviving nodes keep publishing; the root can no longer hear
    // node 2, so rounds are forced at the window boundary with node 2's
    // last-good demand — admissions degrade to bounded staleness instead
    // of blocking.
    let before_forced = transports[0].stats().rounds_forced();
    for r in 3..6u64 {
        for (i, tp) in transports.iter().take(2).enumerate() {
            tp.publish_at(i, vec![(i + 1) as f64 * 10.0], clock.now());
        }
        wait_for("forced rounds after the kill", Duration::from_secs(5), || {
            transports[0].completed_rounds() > r
                && transports[1].completed_rounds() > r
        });
    }
    // Totals now carry fresh node-0/1 demand plus node 2's last-good 3.0.
    assert_eq!(transports[0].read_at(0, clock.now()), Some(vec![33.0]));
    assert_eq!(transports[1].read_at(1, clock.now()), Some(vec![33.0]));
    assert!(
        transports[0].stats().rounds_forced() > before_forced,
        "rounds past the kill must have been forced on the timeout path"
    );
}

#[test]
fn restarted_child_rejoins_with_fresh_demand() {
    let window = Duration::from_millis(25);
    let epoch = 4;
    let mut nodes = spawn_local(&[None, Some(0), Some(0)], epoch, StampMode::Live, window)
        .expect("spawn loopback tree");
    let transports: Vec<_> = nodes.iter().map(|n| n.transport()).collect();
    let clock = transports[0].clock();
    let root_addr = nodes[0].listen_addr();

    // Healthy rounds first, so the root's last-good round for leaf 2
    // climbs well past the round counter a restarted process begins from
    // — and past the whole post-restart publish budget below, so without
    // rebasing the restarted child could never catch up in this test.
    for r in 0..12u64 {
        for (i, tp) in transports.iter().enumerate() {
            tp.publish_at(i, vec![(i + 1) as f64], clock.now());
        }
        wait_for("healthy rounds", Duration::from_secs(5), || {
            transports[0].completed_rounds() > r
        });
    }
    assert_eq!(transports[0].read_at(0, clock.now()), Some(vec![6.0]));

    // Kill leaf 2, then restart it as a brand-new runtime: same node id
    // and epoch, but a round counter reset to the beginning — exactly what
    // a respawned cluster process looks like to its parent.
    drop(nodes.remove(2));
    let restarted = WireNode::start(WireNodeConfig {
        node: 2,
        nodes: 3,
        parent: Some(root_addr),
        children: Vec::new(),
        epoch,
        mode: StampMode::Live,
        window,
        bind: "127.0.0.1:0".parse().expect("loopback bind"),
    })
    .expect("restart leaf 2");
    let t2 = restarted.transport();

    // Everyone publishes fresh demand. Without round rebasing on rejoin
    // the root rejects the restarted child's Up frames as stale (rounds
    // 1, 2, … all below the pre-crash last-good round 12), so inside this
    // 8-publish budget the global total would stay pinned at crash-era
    // values; with rebasing the first post-restart Up already counts.
    let mut combined = false;
    for _ in 0..8 {
        for (i, tp) in transports.iter().take(2).enumerate() {
            tp.publish_at(i, vec![(i + 1) as f64 * 10.0], clock.now());
        }
        t2.publish_at(2, vec![100.0], clock.now());
        std::thread::sleep(window);
        if transports[0].read_at(0, clock.now()) == Some(vec![130.0]) {
            combined = true;
            break;
        }
    }
    assert!(combined, "root never combined the restarted child's fresh demand");
    // The rejoined child hears global totals again too (Down cascade).
    wait_for("restarted child closes rounds", Duration::from_secs(5), || {
        t2.completed_rounds() >= 1
    });
}

/// One server at 100 req/s; A entitled to [0.2, 1.0], B to [0.8, 1.0] —
/// the Figure-6 community.
fn fig6_graph() -> AgreementGraph {
    let mut g = AgreementGraph::new();
    let s = g.add_principal("S", 100.0);
    let a = g.add_principal("A", 0.0);
    let b = g.add_principal("B", 0.0);
    g.add_agreement(s, a, 0.2, 1.0).expect("agreement S-A");
    g.add_agreement(s, b, 0.8, 1.0).expect("agreement S-B");
    g
}

#[test]
fn admission_over_the_wire_survives_a_dead_peer() {
    let mut cfg = SchedulerConfig::community_default();
    cfg.window_secs = 0.025;
    let window = Duration::from_secs_f64(cfg.window_secs);
    let mut nodes = spawn_local(&[None, Some(0)], 3, StampMode::Live, window)
        .expect("spawn loopback pair");
    let graph = fig6_graph();
    let levels = graph.access_levels();
    let a = covenant_agreements::PrincipalId(1);

    // Two real admission controls, each over its own process-local wire
    // transport — the coordinator adopts the transport's measurement
    // clock, so data-plane stamps and wire arrival stamps share a base.
    let ctrls: Vec<_> = (0..2)
        .map(|i| {
            let transport: Arc<dyn CoordTransport> = nodes[i].transport();
            AdmissionControl::new(i, &levels, cfg.clone(), Coordinator::with_transport(transport, 0.0))
        })
        .collect();

    let mut admitted_before = 0u64;
    for _ in 0..4 {
        for ctrl in &ctrls {
            ctrl.roll_window(None);
        }
        std::thread::sleep(window);
        for _ in 0..3 {
            if ctrls[0].try_admit(a, None).is_some() {
                admitted_before += 1;
            }
        }
    }
    assert!(admitted_before > 0, "healthy cluster must admit");
    let t0 = nodes[0].transport();
    wait_for("coordinated rounds", Duration::from_secs(5), || t0.completed_rounds() >= 1);

    // Kill the peer process outright (its admission control goes silent).
    let dead = nodes.remove(1);
    drop(dead);
    let ctrl0 = match ctrls.into_iter().next() {
        Some(c) => c,
        None => unreachable!(),
    };

    // The survivor keeps rolling windows: rounds force at each boundary
    // with the dead peer's last-good demand, the view keeps advancing,
    // and admission keeps working — one window of staleness, no blocking.
    let completed_at_kill = t0.completed_rounds();
    let mut admitted_after = 0u64;
    for _ in 0..6 {
        ctrl0.roll_window(None);
        std::thread::sleep(window + Duration::from_millis(5));
        for _ in 0..3 {
            if ctrl0.try_admit(a, None).is_some() {
                admitted_after += 1;
            }
        }
    }
    assert!(admitted_after > 0, "survivor must keep admitting on last-good state");
    assert!(
        t0.completed_rounds() > completed_at_kill,
        "rounds must keep closing (forced) after the peer dies"
    );
}
