//! Property tests for the wire codec: the frame parser faces bytes from
//! the network, so it must never panic — not on truncation, not on
//! garbage, not on adversarial length prefixes — and every encodable
//! frame must survive a roundtrip bit-exactly.

use covenant_wire::{Frame, MAX_VALUES};
use proptest::prelude::*;

/// A value vector mixing ordinary magnitudes with the float specials
/// (NaN, infinities, signed zero) the aggregation path can produce.
fn arb_values() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((0u8..6, any::<f64>(), any::<u64>()), 0..32).prop_map(|elems| {
        elems
            .into_iter()
            .map(|(kind, unit, bits)| match kind {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => -0.0,
                4 => f64::from_bits(bits), // arbitrary bit patterns
                _ => unit * 1e9 - 5e8,
            })
            .collect()
    })
}

/// Any encodable frame (values capped well under the protocol limit).
fn arb_frame() -> impl Strategy<Value = Frame> {
    (0u8..3, any::<u32>(), any::<u32>(), any::<u64>(), any::<f64>(), arb_values()).prop_map(
        |(kind, node, epoch, round, t, values)| match kind {
            0 => Frame::Hello { node },
            1 => Frame::Up { node, epoch, round, t: t * 1e6, values },
            _ => Frame::Down { node, epoch, round, t: t * 1e6, values },
        },
    )
}

/// Bit-exact equality (plain `==` on NaN payloads would spuriously fail).
fn frames_bit_equal(a: &Frame, b: &Frame) -> bool {
    let mut ea = Vec::new();
    let mut eb = Vec::new();
    a.encode(&mut ea);
    b.encode(&mut eb);
    ea == eb
}

proptest! {
    #[test]
    fn roundtrip_is_bit_exact(frame in arb_frame()) {
        let mut buf = Vec::new();
        frame.encode(&mut buf);
        let (decoded, used) = Frame::decode(&buf)
            .expect("own encoding must parse")
            .expect("own encoding must be complete");
        prop_assert_eq!(used, buf.len());
        prop_assert!(frames_bit_equal(&frame, &decoded));
    }

    #[test]
    fn every_truncation_asks_for_more_bytes(frame in arb_frame(), cut_seed in any::<usize>()) {
        let mut buf = Vec::new();
        frame.encode(&mut buf);
        let cut = cut_seed % buf.len(); // 0..len, strictly short
        // A prefix of a valid frame is never an error and never a frame:
        // the decoder must wait for the rest.
        prop_assert_eq!(Frame::decode(&buf[..cut]), Ok(None));
    }

    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Any outcome is fine; panicking or over-consuming is not.
        if let Ok(Some((_, used))) = Frame::decode(&bytes) {
            prop_assert!(used <= bytes.len());
            prop_assert!(used >= 4);
        }
    }

    #[test]
    fn adversarial_length_prefixes_never_panic(
        len in any::<u32>(),
        body in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut buf = len.to_le_bytes().to_vec();
        buf.extend_from_slice(&body);
        // Oversized prefixes must be rejected (or starved), not trusted.
        let _ = Frame::decode(&buf);
    }

    #[test]
    fn back_to_back_frames_decode_in_order(a in arb_frame(), b in arb_frame()) {
        let mut buf = Vec::new();
        a.encode(&mut buf);
        let first_len = buf.len();
        b.encode(&mut buf);

        let (da, ua) = Frame::decode(&buf).expect("valid").expect("complete");
        prop_assert_eq!(ua, first_len);
        prop_assert!(frames_bit_equal(&a, &da));
        let (db, ub) = Frame::decode(&buf[ua..]).expect("valid").expect("complete");
        prop_assert_eq!(ua + ub, buf.len());
        prop_assert!(frames_bit_equal(&b, &db));
    }
}

#[test]
fn the_value_cap_is_the_documented_constant() {
    assert_eq!(MAX_VALUES, 4096);
}
