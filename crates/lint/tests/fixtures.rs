//! Fixture tests: each rule has at least one triggering and one
//! non-triggering fixture under `tests/fixtures/`. Fixtures are fed to the
//! linter under in-scope workspace-relative paths; the fixture directory
//! itself is outside the workspace walk, so these files never pollute a
//! real `covenant-lint` run.

use covenant_lint::{Diagnostic, Linter, Rule};

fn lint_as(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let mut linter = Linter::new();
    linter.add_file(rel_path, src);
    linter.finish()
}

fn rules_fired(diags: &[Diagnostic]) -> Vec<Rule> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn r1_wall_clock_fires() {
    let diags = lint_as(
        "crates/enforce/src/fixture.rs",
        include_str!("fixtures/r1_bad.rs"),
    );
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == Rule::WallClock), "{diags:?}");
    assert_eq!(diags[0].line, 6);
    assert_eq!(diags[1].line, 11);
}

#[test]
fn r1_wall_clock_clean() {
    let diags = lint_as(
        "crates/enforce/src/fixture.rs",
        include_str!("fixtures/r1_ok.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn r1_allowlisted_file_is_exempt() {
    // The same wall-clock reads in the http clock module are sanctioned.
    let diags = lint_as(
        "crates/http/src/clock.rs",
        include_str!("fixtures/r1_bad.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn r2_no_panic_fires_on_all_four_forms() {
    let diags = lint_as(
        "crates/coord/src/fixture.rs",
        include_str!("fixtures/r2_bad.rs"),
    );
    // unwrap(), expect(), panic!, and v[0] — four sites.
    assert_eq!(diags.len(), 4, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == Rule::NoPanic), "{diags:?}");
}

#[test]
fn r2_no_panic_clean_and_skips_test_modules() {
    let diags = lint_as(
        "crates/coord/src/fixture.rs",
        include_str!("fixtures/r2_ok.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn r2_out_of_scope_crate_is_exempt() {
    // `workload` is not on the admission path: R2 does not apply.
    let diags = lint_as(
        "crates/workload/src/fixture.rs",
        include_str!("fixtures/r2_bad.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn r3_float_eq_fires() {
    let diags = lint_as(
        "crates/workload/src/fixture.rs",
        include_str!("fixtures/r3_bad.rs"),
    );
    assert_eq!(rules_fired(&diags), vec![Rule::FloatEq, Rule::FloatEq], "{diags:?}");
}

#[test]
fn r3_float_eq_clean_incl_tuple_indices() {
    let diags = lint_as(
        "crates/workload/src/fixture.rs",
        include_str!("fixtures/r3_ok.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn r4_lock_order_cycle_fires() {
    let diags = lint_as(
        "crates/l4/src/fixture.rs",
        include_str!("fixtures/r4_bad.rs"),
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, Rule::LockOrder);
    assert!(diags[0].message.contains('a') && diags[0].message.contains('b'), "{diags:?}");
}

#[test]
fn r4_lock_order_consistent_is_clean() {
    let diags = lint_as(
        "crates/l4/src/fixture.rs",
        include_str!("fixtures/r4_ok.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn r4_annotation_contradicting_code_fires() {
    let diags = lint_as(
        "crates/l4/src/fixture.rs",
        include_str!("fixtures/r4_pragma_bad.rs"),
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, Rule::LockOrder);
}

#[test]
fn r4_out_of_scope_crate_is_exempt() {
    let diags = lint_as(
        "crates/http/src/fixture.rs",
        include_str!("fixtures/r4_bad.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn r5_reactor_blocking_fires() {
    // In the reactor crate itself and in the shard data planes.
    for rel in [
        "crates/reactor/src/fixture.rs",
        "crates/l7/src/shard.rs",
        "crates/l4/src/reactor_proxy.rs",
    ] {
        let diags = lint_as(rel, include_str!("fixtures/r5_bad.rs"));
        let r5: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == Rule::ReactorBlocking)
            .collect();
        assert_eq!(r5.len(), 3, "{rel}: {diags:?}");
        assert_eq!(r5[0].line, 8, "{rel}: {diags:?}");
        assert_eq!(r5[1].line, 13, "{rel}: {diags:?}");
        assert_eq!(r5[2].line, 17, "{rel}: {diags:?}");
    }
}

#[test]
fn r5_nonblocking_idiom_is_clean() {
    let diags = lint_as(
        "crates/reactor/src/fixture.rs",
        include_str!("fixtures/r5_ok.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn r5_out_of_scope_file_is_exempt() {
    // The same blocking calls in the legacy (thread-per-connection) data
    // planes are their prerogative.
    let diags = lint_as(
        "crates/l4/src/proxy.rs",
        include_str!("fixtures/r5_bad.rs"),
    );
    assert!(
        diags.iter().all(|d| d.rule != Rule::ReactorBlocking),
        "{diags:?}"
    );
}

#[test]
fn allow_pragma_suppresses_both_forms() {
    let diags = lint_as(
        "crates/coord/src/fixture.rs",
        include_str!("fixtures/pragma_allow.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn non_source_paths_are_ignored() {
    // Only `crates/*/src/**` and the root `src/**` are in scope.
    let src = include_str!("fixtures/r2_bad.rs");
    for rel in ["crates/coord/tests/t.rs", "crates/coord/benches/b.rs", "tests/x.rs"] {
        let diags = lint_as(rel, src);
        assert!(diags.is_empty(), "{rel}: {diags:?}");
    }
}

#[test]
fn the_workspace_itself_is_clean() {
    // The acceptance gate, as a test: `covenant-lint` over this repo's own
    // sources reports nothing. CARGO_MANIFEST_DIR = crates/lint.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let diags = covenant_lint::lint_workspace(root);
    assert!(diags.is_empty(), "workspace violations: {diags:#?}");
}
