//! R3 trigger: exact float equality.

pub fn is_zero(x: f64) -> bool {
    x == 0.0
}

pub fn not_default(x: f64) -> bool {
    x != -1.5
}
