//! R5 fixture: the nonblocking idiom the rule wants.

use std::net::TcpStream;

fn arm(stream: &TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(true)
}

fn read_some(stream: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<usize> {
    use std::io::Read;
    stream.read(buf) // single nonblocking read; WouldBlock resumes later
}
