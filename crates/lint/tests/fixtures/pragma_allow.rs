//! Non-trigger: the allow pragma suppresses R2 on the annotated lines,
//! both same-line and own-line-above forms.

pub fn head(v: &[u64]) -> u64 {
    // covenant: allow(no-panic)
    let x = v[0];
    x + v.last().copied().unwrap() // covenant: allow(no-panic)
}
