//! R2 trigger: panic paths on the admission path.

pub fn first(v: &[u64]) -> u64 {
    let x = *v.first().unwrap();
    let y: u64 = "7".parse().expect("parse");
    if v.len() > 3 {
        panic!("too long");
    }
    x + y + v[0]
}
