//! R4 trigger: two functions acquire the same pair of locks in opposite
//! orders — a lock-order cycle (deadlock hazard).

use parking_lot::Mutex;

pub struct S {
    pub a: Mutex<u64>,
    pub b: Mutex<u64>,
}

impl S {
    pub fn ab(&self) -> u64 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }

    pub fn ba(&self) -> u64 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        *ga + *gb
    }
}
