//! R5 fixture: blocking syscall wrappers inside reactor callback paths.

use std::io::Read;
use std::net::TcpStream;

fn drain_all(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf)?; // line 8: blocks until EOF
    Ok(buf)
}

fn go_blocking(stream: &TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(false) // line 13: reverts to blocking mode
}

fn backoff() {
    std::thread::sleep(std::time::Duration::from_millis(1)); // line 17
}
