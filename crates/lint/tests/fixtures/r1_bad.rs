//! R1 trigger: wall-clock reads in data-plane code.

use std::time::{Instant, SystemTime};

pub fn stamp() -> f64 {
    let t = Instant::now();
    t.elapsed().as_secs_f64()
}

pub fn epoch() -> SystemTime {
    SystemTime::now()
}
