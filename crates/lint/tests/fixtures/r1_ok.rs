//! R1 non-trigger: injected time, plus mentions of `Instant::now()` in
//! comments and strings that must not count as reads.

pub fn stamp(now: f64) -> f64 {
    // Data-plane code takes `now` by injection; Instant::now() is banned.
    let banner = "never call Instant::now() here";
    now + banner.len() as f64 * 0.0
}
