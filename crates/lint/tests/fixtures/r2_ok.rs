//! R2 non-trigger: fallible access without panicking, and test code
//! (`#[cfg(test)]`) where unwraps are fine.

pub fn first(v: &[u64]) -> Option<u64> {
    let x = v.first()?;
    v.get(1).map(|y| x + y)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = [1u64, 2];
        assert_eq!(super::first(&v).unwrap(), 3);
        assert_eq!(v[0], 1);
    }
}
