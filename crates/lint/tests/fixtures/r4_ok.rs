//! R4 non-trigger: every function acquires `a` before `b`, and a chained
//! call's temporary guard (dead at the semicolon) opens no edge.

use parking_lot::Mutex;

pub struct S {
    pub a: Mutex<u64>,
    pub b: Mutex<u64>,
}

impl S {
    pub fn ab(&self) -> u64 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }

    pub fn sum_again(&self) -> u64 {
        let ga = self.a.lock();
        *ga + self.b.lock().wrapping_add(0)
    }

    pub fn peek_b_then_a(&self) -> u64 {
        // The `b` guard here is a temporary: it dies at the semicolon,
        // before `a` is taken, so this is NOT a b->a edge.
        let vb = self.b.lock().wrapping_add(0);
        let ga = self.a.lock();
        vb + *ga
    }
}
