//! R3 non-trigger: epsilon compares, integer compares, and tuple-field
//! access (`t.0` is an integer index, not a float literal).

pub fn near(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

pub fn tuple_index(t: &(usize, usize)) -> bool {
    t.0 == 1 && t.1 != 0
}
