//! R4 trigger via annotation: the declared order `b < a` contradicts the
//! lexical `a`-held-while-`b`-locked edge below.

use parking_lot::Mutex;

// covenant: lock-order(b < a)
pub struct S {
    pub a: Mutex<u64>,
    pub b: Mutex<u64>,
}

impl S {
    pub fn ab(&self) -> u64 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }
}
