//! Property tests: the lexer (and the whole linter behind it) must never
//! panic, whatever bytes it is fed — lint runs on work-in-progress trees.

use covenant_lint::{lex, Linter};
use proptest::prelude::*;

proptest! {
    /// Arbitrary (lossily decoded) bytes lex without panicking, and every
    /// token/comment carries a plausible 1-based line number.
    #[test]
    fn lexer_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let src = String::from_utf8_lossy(&bytes);
        let lexed = lex(&src);
        let lines = src.lines().count().max(1) as u32;
        for t in &lexed.tokens {
            prop_assert!((1..=lines).contains(&t.line), "token line {}", t.line);
        }
        for c in &lexed.comments {
            prop_assert!((1..=lines).contains(&c.line), "comment line {}", c.line);
        }
    }

    /// The full rule pipeline survives arbitrary input too (pragma parsing,
    /// test-skip scanning, lock-order analysis).
    #[test]
    fn linter_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let src = String::from_utf8_lossy(&bytes);
        let mut linter = Linter::new();
        linter.add_file("crates/l4/src/fuzz.rs", &src);
        let _ = linter.finish();
    }

    /// Rust-ish text (idents, dots, literals, operators) also never panics
    /// — denser in interesting token boundaries than raw bytes.
    #[test]
    fn lexer_survives_rustish_soup(
        picks in proptest::collection::vec(0usize..22, 0..200),
    ) {
        const PARTS: [&str; 22] = [
            "lock", "x1", "0.5", "7", ".", "==", "!=", "::", "\"", "'",
            "r#", "//", "/*", "*/", "(", ")", "{", "}", "[", ";", " ", "\n",
        ];
        let src: String = picks.iter().map(|&i| PARTS[i]).collect();
        let _ = lex(&src);
        let mut linter = Linter::new();
        linter.add_file("crates/coord/src/fuzz.rs", &src);
        let _ = linter.finish();
    }
}
