//! `covenant-lint` CLI: scans the workspace and reports invariant
//! violations with `file:line` diagnostics.
//!
//! ```text
//! covenant-lint [--root DIR] [--json] [--deny all|RULE[,RULE…]] [--list-rules]
//! ```
//!
//! Exit status is 1 when any denied rule fired (all rules are denied by
//! default), 0 otherwise. `--json` emits a machine-readable array for CI.

use covenant_lint::{lint_workspace, to_json, Rule, RuleMeta};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut deny: Vec<Rule> = Rule::ALL.to_vec();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--json" => json = true,
            "--deny" => match it.next() {
                Some(spec) => match Rule::parse_deny(spec) {
                    Some(rules) => deny = rules,
                    None => return usage("unknown rule in --deny"),
                },
                None => return usage("--deny needs `all` or a rule list"),
            },
            "--list-rules" => {
                for r in Rule::ALL {
                    println!("{r}  {}", r.describe());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("covenant-lint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::FAILURE;
        }
    };

    let diags = lint_workspace(&root);
    if json {
        print!("{}", to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        let denied = diags.iter().filter(|d| deny.contains(&d.rule)).count();
        println!(
            "covenant-lint: {} violation(s), {} denied, {} file-scoped rule(s) active",
            diags.len(),
            denied,
            Rule::ALL.len()
        );
    }
    if diags.iter().any(|d| deny.contains(&d.rule)) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Walks up from the current directory to the first `Cargo.toml` declaring
/// a `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("covenant-lint: {err}");
    }
    eprintln!(
        "usage: covenant-lint [--root DIR] [--json] [--deny all|RULE[,RULE…]] [--list-rules]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
