//! R4: static lock-order analysis.
//!
//! Deadlocks in the coordination layer are ordering bugs: two threads each
//! holding one lock while acquiring the other. This pass builds the
//! *acquired-while-held* graph and fails on any cycle.
//!
//! Two edge sources:
//!
//! 1. **Lexical nesting** — every `x.lock()` whose guard is still live
//!    (same statement for temporaries, enclosing block for `let` bindings)
//!    when another `y.lock()` runs adds the edge `x → y`.
//! 2. **Annotations** — `// covenant: lock-order(a < b)` declares that `a`
//!    may be held while acquiring `b`. These encode the cross-crate edges
//!    the lexical pass cannot see (e.g. the enforcement core calling back
//!    into the coordinator while the admission lock is held).
//!
//! Lock identity is the *field name* ahead of `.lock()` (`self.state.lock()`
//! → `state`), shared across every analyzed file: the paper's combining
//! tree spans crates, and so do its ordering obligations. Suppress a site
//! with `// covenant: allow(lock-order)`.

use crate::lexer::{Lexed, TokKind, Token};
use crate::rules::parse_lock_order_pragma;
use crate::{Allows, Diagnostic, Rule};
use std::collections::BTreeMap;

/// Where one acquired-while-held edge was observed or declared.
#[derive(Debug, Clone)]
struct EdgeSite {
    path: String,
    line: u32,
    declared: bool,
}

/// Accumulates lock-order edges across files, then reports cycles.
#[derive(Debug, Default)]
pub struct LockOrderAnalysis {
    /// `held → acquired`, with the first site that produced the edge.
    edges: BTreeMap<String, BTreeMap<String, EdgeSite>>,
}

/// How long an acquired guard stays live.
#[derive(Debug, Clone, Copy, PartialEq)]
enum GuardLife {
    /// `let g = x.lock();` — to the end of the enclosing block.
    Block(i32),
    /// Temporary — to the end of the statement.
    Stmt,
}

impl LockOrderAnalysis {
    /// Adds one file's acquisition sites and annotations.
    pub(crate) fn add_file(
        &mut self,
        path: &str,
        lexed: &Lexed<'_>,
        skip: &[(u32, u32)],
        allows: &Allows,
    ) {
        for c in &lexed.comments {
            for (a, b) in parse_lock_order_pragma(c.text) {
                self.add_edge(a, b, path, c.line, true);
            }
        }

        let in_test = |line: u32| skip.iter().any(|&(a, b)| (a..=b).contains(&line));
        let tokens = &lexed.tokens;
        let mut depth = 0i32;
        let mut stmt_has_let = false;
        let mut held: Vec<(String, GuardLife)> = Vec::new();

        for i in 0..tokens.len() {
            let t = &tokens[i];
            if t.kind == TokKind::Punct {
                match t.text {
                    "{" => {
                        depth += 1;
                        stmt_has_let = false;
                    }
                    "}" => {
                        held.retain(|(_, life)| *life != GuardLife::Block(depth) && *life != GuardLife::Stmt);
                        depth -= 1;
                        stmt_has_let = false;
                    }
                    ";" => {
                        held.retain(|(_, life)| *life != GuardLife::Stmt);
                        stmt_has_let = false;
                    }
                    _ => {}
                }
                continue;
            }
            if t.kind != TokKind::Ident {
                continue;
            }
            if t.text == "let" {
                stmt_has_let = true;
                continue;
            }
            if t.text == "lock"
                && i >= 2
                && is_punct(tokens, i - 1, ".")
                && is_punct(tokens, i + 1, "(")
                && is_punct(tokens, i + 2, ")")
            {
                let line = t.line;
                if in_test(line) || allows.allowed(line, Rule::LockOrder) {
                    continue;
                }
                let name = lock_name(tokens, i - 2);
                for (h, _) in &held {
                    if *h != name {
                        self.add_edge(h.clone(), name.clone(), path, line, false);
                    }
                }
                // The guard is block-lived only when the `.lock()` result
                // itself is what the `let` binds (`let g = x.lock();`).
                // With further calls chained on (`let v = x.lock().get();`)
                // the guard is a temporary and dies at the semicolon.
                let binds_guard = stmt_has_let && is_punct(tokens, i + 3, ";");
                let life = if binds_guard { GuardLife::Block(depth) } else { GuardLife::Stmt };
                held.push((name, life));
            }
        }
    }

    fn add_edge(&mut self, from: String, to: String, path: &str, line: u32, declared: bool) {
        self.edges.entry(from).or_default().entry(to).or_insert(EdgeSite {
            path: path.to_string(),
            line,
            declared,
        });
    }

    /// Reports one diagnostic per lock-order cycle in the combined graph.
    pub(crate) fn into_diagnostics(self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        // DFS with tri-color marking; each back edge closes one cycle.
        let nodes: Vec<&String> = self.edges.keys().collect();
        let mut color: BTreeMap<&str, u8> = BTreeMap::new(); // 0 white 1 grey 2 black
        let mut stack: Vec<&str> = Vec::new();

        fn dfs<'a>(
            node: &'a str,
            edges: &'a BTreeMap<String, BTreeMap<String, EdgeSite>>,
            color: &mut BTreeMap<&'a str, u8>,
            stack: &mut Vec<&'a str>,
            diags: &mut Vec<Diagnostic>,
        ) {
            color.insert(node, 1);
            stack.push(node);
            if let Some(succ) = edges.get(node) {
                for (next, site) in succ {
                    match color.get(next.as_str()).copied().unwrap_or(0) {
                        0 => dfs(next, edges, color, stack, diags),
                        1 => {
                            let pos = stack.iter().position(|n| *n == next).unwrap_or(0);
                            let mut cycle: Vec<&str> = stack[pos..].to_vec();
                            cycle.push(next);
                            let kind = if site.declared { "declared" } else { "observed" };
                            diags.push(Diagnostic::new(
                                Rule::LockOrder,
                                site.path.clone(),
                                site.line,
                                0,
                                format!(
                                    "lock-order cycle: {} ({} edge `{}` -> `{}` closes it); \
                                     fix the acquisition order or the lock-order annotations",
                                    cycle.join(" -> "),
                                    kind,
                                    node,
                                    next
                                ),
                            ));
                        }
                        _ => {}
                    }
                }
            }
            stack.pop();
            color.insert(node, 2);
        }

        for n in nodes {
            if color.get(n.as_str()).copied().unwrap_or(0) == 0 {
                dfs(n, &self.edges, &mut color, &mut stack, &mut diags);
            }
        }
        diags
    }
}

fn lock_name(tokens: &[Token<'_>], owner: usize) -> String {
    let t = &tokens[owner];
    if t.kind == TokKind::Ident {
        t.text.to_string()
    } else {
        // `(expr).lock()` and friends: no stable field name to key on.
        "<expr>".to_string()
    }
}

fn is_punct(tokens: &[Token<'_>], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn analyze(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let mut a = LockOrderAnalysis::default();
        for (path, src) in files {
            let lexed = lex(src);
            let allows = Allows::from_comments(&lexed.comments);
            a.add_file(path, &lexed, &[], &allows);
        }
        a.into_diagnostics()
    }

    use crate::Allows;

    #[test]
    fn nested_temporaries_make_an_edge_and_reverse_nesting_a_cycle() {
        let fwd = "fn f() { let g = self.a.lock(); self.b.lock().touch(); }";
        assert!(analyze(&[("x.rs", fwd)]).is_empty(), "one direction alone is fine");
        let rev = "fn g() { let h = self.b.lock(); self.a.lock().touch(); }";
        let diags = analyze(&[("x.rs", fwd), ("y.rs", rev)]);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("a -> b") || diags[0].message.contains("b -> a"));
    }

    #[test]
    fn statement_temporary_does_not_outlive_its_statement() {
        let src = "fn f() { self.a.lock().touch(); self.b.lock().touch(); }";
        assert!(analyze(&[("x.rs", src)]).is_empty());
    }

    #[test]
    fn let_guard_lives_to_block_end() {
        let src = "fn f() { { let g = a.lock(); } b.lock().touch(); }\n\
                   fn g() { let h = b.lock(); a.lock().touch(); }";
        // `g` was dropped with its block, so only b -> a exists: no cycle.
        assert!(analyze(&[("x.rs", src)]).is_empty());
    }

    #[test]
    fn annotation_conflicting_with_observation_is_a_cycle() {
        let src = "// covenant: lock-order(a < b)\n\
                   fn f() { let g = b.lock(); a.lock().touch(); }";
        let diags = analyze(&[("x.rs", src)]);
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn allow_pragma_suppresses_a_site() {
        let src = "fn f() { let g = self.a.lock();\n\
                   self.b.lock().touch(); // covenant: allow(lock-order)\n\
                   }\n\
                   fn g() { let h = self.b.lock(); self.a.lock().touch(); }";
        assert!(analyze(&[("x.rs", src)]).is_empty());
    }
}
