//! A hand-rolled token-level Rust lexer.
//!
//! `covenant-lint` runs offline (no `syn`, no registry), so this lexer
//! implements just enough of the Rust lexical grammar to make token-level
//! rules sound: strings (plain, raw, byte, raw-byte), char literals vs
//! lifetimes, nested block comments, numeric literals with the
//! tuple-index ambiguity (`x.0.1` is two integer field accesses, not the
//! float `0.1`), and the handful of multi-char operators the rules need
//! (`==`, `!=`, `::`). Everything else is a single-character punct.
//!
//! The lexer never fails: unterminated literals run to end of input and
//! arbitrary bytes degrade to identifier/punct tokens (see the proptest in
//! `tests/lexer_prop.rs`).

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (including tuple indices after `.`).
    Int,
    /// Float literal (`1.0`, `1.`, `1e3`, `2f64`, …).
    Float,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`) or the `'static` keyword.
    Lifetime,
    /// Operator or delimiter (single char, or `==` / `!=` / `::`).
    Punct,
}

/// One lexed token: kind, source text, and 1-based line number.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    /// What the token is.
    pub kind: TokKind,
    /// The token's source text.
    pub text: &'a str,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment (line or block), kept out of the token stream so rules see
/// only code, while pragma parsing sees only comments.
#[derive(Debug, Clone, Copy)]
pub struct Comment<'a> {
    /// Comment text including the `//` / `/*` introducer.
    pub text: &'a str,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True when no code token precedes the comment on its line — an
    /// own-line comment's pragmas apply to the *next* line.
    pub own_line: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    /// Code tokens, in source order.
    pub tokens: Vec<Token<'a>>,
    /// Comments, in source order.
    pub comments: Vec<Comment<'a>>,
}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn peek3(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into code tokens and comments. Total: every byte lands in a
/// token, a comment, or whitespace; never panics.
pub fn lex(src: &str) -> Lexed<'_> {
    let mut cur = Cursor { src, pos: 0, line: 1 };
    let mut out = Lexed::default();
    // Line of the most recent code token, to classify own-line comments.
    let mut last_token_line = 0u32;

    while let Some(c) = cur.peek() {
        let start = cur.pos;
        let line = cur.line;
        match c {
            _ if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek2() == Some('/') => {
                while let Some(c) = cur.peek() {
                    if c == '\n' {
                        break;
                    }
                    cur.bump();
                }
                out.comments.push(Comment {
                    text: &src[start..cur.pos],
                    line,
                    own_line: last_token_line != line,
                });
            }
            '/' if cur.peek2() == Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (cur.peek(), cur.peek2()) {
                        (Some('/'), Some('*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some('*'), Some('/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    text: &src[start..cur.pos],
                    line,
                    own_line: last_token_line != line,
                });
            }
            '"' => {
                lex_string(&mut cur);
                push(&mut out, &mut last_token_line, TokKind::Str, src, start, &cur);
            }
            'r' | 'b' if starts_prefixed_literal(&cur) => {
                lex_prefixed_literal(&mut cur);
                push(&mut out, &mut last_token_line, TokKind::Str, src, start, &cur);
            }
            '\'' => {
                let kind = lex_quote(&mut cur);
                push(&mut out, &mut last_token_line, kind, src, start, &cur);
            }
            _ if c.is_ascii_digit() => {
                let after_dot = matches!(
                    out.tokens.last(),
                    Some(Token { kind: TokKind::Punct, text: ".", .. })
                );
                let kind = lex_number(&mut cur, after_dot);
                push(&mut out, &mut last_token_line, kind, src, start, &cur);
            }
            _ if is_ident_start(c) => {
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                push(&mut out, &mut last_token_line, TokKind::Ident, src, start, &cur);
            }
            _ => {
                cur.bump();
                // The multi-char operators the rules need as single tokens.
                let two = matches!(
                    (c, cur.peek()),
                    ('=', Some('=')) | ('!', Some('=')) | (':', Some(':'))
                );
                if two {
                    cur.bump();
                }
                push(&mut out, &mut last_token_line, TokKind::Punct, src, start, &cur);
            }
        }
    }
    out
}

fn push<'a>(
    out: &mut Lexed<'a>,
    last_token_line: &mut u32,
    kind: TokKind,
    src: &'a str,
    start: usize,
    cur: &Cursor<'a>,
) {
    out.tokens.push(Token { kind, text: &src[start..cur.pos], line: cur_start_line(cur, src, start) });
    *last_token_line = cur.line;
}

/// Line a token starting at byte `start` is on. Tokens are pushed after the
/// cursor moved past them, so recompute from the newline count when the
/// token spans lines (raw strings, block-adjacent cases).
fn cur_start_line(cur: &Cursor<'_>, src: &str, start: usize) -> u32 {
    let newlines_inside = src[start..cur.pos].matches('\n').count() as u32;
    cur.line - newlines_inside
}

/// Consumes a plain string literal starting at `"` (escapes honored).
fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// True when the cursor sits on `r"`, `r#`, `b"`, `b'`, `br`, or `rb`-style
/// literal starts (otherwise `r`/`b` begin a plain identifier).
fn starts_prefixed_literal(cur: &Cursor<'_>) -> bool {
    matches!(
        (cur.peek(), cur.peek2(), cur.peek3()),
        (Some('r'), Some('"' | '#'), _)
            | (Some('b'), Some('"' | '\''), _)
            | (Some('b'), Some('r'), Some('"' | '#'))
    )
}

/// Consumes `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#`.
fn lex_prefixed_literal(cur: &mut Cursor<'_>) {
    let mut raw = false;
    while let Some(c) = cur.peek() {
        match c {
            'r' => {
                raw = true;
                cur.bump();
            }
            'b' => {
                cur.bump();
            }
            _ => break,
        }
    }
    if raw {
        let mut hashes = 0usize;
        while cur.peek() == Some('#') {
            hashes += 1;
            cur.bump();
        }
        if cur.peek() != Some('"') {
            return; // `r#foo` raw identifier: already consumed the prefix
        }
        cur.bump();
        // Scan for `"` followed by `hashes` hashes.
        'outer: while let Some(c) = cur.bump() {
            if c == '"' {
                let rest = &cur.src[cur.pos..];
                let mut it = rest.chars();
                for _ in 0..hashes {
                    if it.next() != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    cur.bump();
                }
                break;
            }
        }
    } else {
        match cur.peek() {
            Some('"') => lex_string(cur),
            Some('\'') => {
                lex_quote(cur);
            }
            _ => {}
        }
    }
}

/// Consumes a `'`-introduced token: a char literal or a lifetime.
fn lex_quote(cur: &mut Cursor<'_>) -> TokKind {
    // Lifetime: `'ident` not closed by another quote right after one char.
    if cur.peek2().is_some_and(is_ident_start) && cur.peek3() != Some('\'') {
        cur.bump(); // quote
        while cur.peek().is_some_and(is_ident_continue) {
            cur.bump();
        }
        return TokKind::Lifetime;
    }
    cur.bump(); // quote
    // Char literal: consume until the closing quote, honoring escapes, with
    // a cap so malformed input cannot swallow the file.
    let mut budget = 16usize;
    while let Some(c) = cur.peek() {
        if budget == 0 || c == '\n' {
            break;
        }
        budget -= 1;
        cur.bump();
        match c {
            '\\' => {
                cur.bump();
            }
            '\'' => break,
            _ => {}
        }
    }
    TokKind::Char
}

/// Consumes a numeric literal; `after_dot` suppresses float forms so tuple
/// indices (`pair.0`) stay integers.
fn lex_number(cur: &mut Cursor<'_>, after_dot: bool) -> TokKind {
    let radix_prefixed = cur.peek() == Some('0')
        && matches!(cur.peek2(), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
    if radix_prefixed {
        cur.bump();
        cur.bump();
        while cur.peek().is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
            cur.bump();
        }
        return TokKind::Int;
    }
    let mut float = false;
    while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == '_') {
        cur.bump();
    }
    if !after_dot {
        if cur.peek() == Some('.') {
            // `1..n` is a range, `1.max` a method call; both leave the dot.
            let next = cur.peek2();
            if next != Some('.') && !next.is_some_and(is_ident_start) {
                float = true;
                cur.bump();
                while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    cur.bump();
                }
            }
        }
        if matches!(cur.peek(), Some('e' | 'E')) {
            let (n2, n3) = (cur.peek2(), cur.peek3());
            let exp = match n2 {
                Some(d) if d.is_ascii_digit() => true,
                Some('+' | '-') => n3.is_some_and(|d| d.is_ascii_digit()),
                _ => false,
            };
            if exp {
                float = true;
                cur.bump();
                if matches!(cur.peek(), Some('+' | '-')) {
                    cur.bump();
                }
                while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    cur.bump();
                }
            }
        }
    }
    // Type suffix (`u32`, `f64`, …).
    let suffix_start = cur.pos;
    while cur.peek().is_some_and(is_ident_continue) {
        cur.bump();
    }
    let suffix = &cur.src[suffix_start..cur.pos];
    if suffix.starts_with("f32") || suffix.starts_with("f64") {
        float = true;
    }
    if float {
        TokKind::Float
    } else {
        TokKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).tokens.iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn floats_vs_tuple_indices() {
        assert_eq!(
            kinds("a.0 == 1"),
            vec![
                (TokKind::Ident, "a"),
                (TokKind::Punct, "."),
                (TokKind::Int, "0"),
                (TokKind::Punct, "=="),
                (TokKind::Int, "1"),
            ]
        );
        assert_eq!(kinds("1.0")[0].0, TokKind::Float);
        assert_eq!(kinds("x.0.1")[4].0, TokKind::Int);
        assert_eq!(kinds("2e-6")[0].0, TokKind::Float);
        assert_eq!(kinds("3f64")[0].0, TokKind::Float);
        assert_eq!(kinds("0..10").iter().filter(|t| t.0 == TokKind::Int).count(), 2);
        assert_eq!(kinds("0x1e5")[0].0, TokKind::Int);
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let l = lex("let s = \"Instant::now()\"; // Instant::now()\n/* unwrap() */ x");
        assert!(l.tokens.iter().all(|t| t.text != "now" && t.text != "unwrap"));
        assert_eq!(l.comments.len(), 2);
        assert!(!l.comments[0].own_line);
        assert!(l.comments[1].own_line);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex(r####"let s = r#"embedded "quote" unwrap()"# ; y"####);
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Str));
        assert!(l.tokens.iter().all(|t| t.text != "unwrap"));
        assert_eq!(l.tokens.last().map(|t| t.text), Some("y"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ code");
        assert_eq!(l.tokens.len(), 1);
        assert_eq!(l.tokens[0].text, "code");
    }

    #[test]
    fn line_numbers_are_one_based() {
        let l = lex("a\nb\n  c");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }
}
