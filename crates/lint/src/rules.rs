//! Token-level rule passes (R1–R3), pragma parsing, and test-code skipping.

use crate::lexer::{TokKind, Token};
use crate::Rule;

/// Parses `covenant: allow(rule-a, rule-b)` pragmas out of one comment,
/// returning the allowed rule names (possibly the wildcard `all`).
pub(crate) fn parse_allow_pragma(comment: &str) -> Vec<String> {
    let Some(rest) = comment.split("covenant:").nth(1) else {
        return Vec::new();
    };
    let rest = rest.trim_start();
    let Some(args) = rest.strip_prefix("allow") else {
        return Vec::new();
    };
    let Some(open) = args.find('(') else {
        return Vec::new();
    };
    let Some(close) = args[open..].find(')') else {
        return Vec::new();
    };
    args[open + 1..open + close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect()
}

/// Parses `covenant: lock-order(a < b < c)` annotations out of one
/// comment, returning the declared acquired-before pairs (`a<b`, `b<c`).
pub(crate) fn parse_lock_order_pragma(comment: &str) -> Vec<(String, String)> {
    let Some(rest) = comment.split("covenant:").nth(1) else {
        return Vec::new();
    };
    let rest = rest.trim_start();
    let Some(args) = rest.strip_prefix("lock-order") else {
        return Vec::new();
    };
    let (Some(open), Some(close)) = (args.find('('), args.find(')')) else {
        return Vec::new();
    };
    if close < open {
        return Vec::new();
    }
    let names: Vec<String> = args[open + 1..close]
        .split('<')
        .map(|n| n.trim().to_string())
        .filter(|n| !n.is_empty())
        .collect();
    names.windows(2).map(|w| (w[0].clone(), w[1].clone())).collect()
}

/// Line ranges covered by `#[cfg(test)]`-gated items (the linter skips
/// them). A `#![cfg(test)]` inner attribute marks the whole file.
pub(crate) fn test_skip_ranges(tokens: &[Token<'_>]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_punct(tokens, i, "#") {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        let mut j = i + 1;
        let inner = is_punct(tokens, j, "!");
        if inner {
            j += 1;
        }
        if !is_punct(tokens, j, "[") {
            i += 1;
            continue;
        }
        let (attr_end, is_test) = scan_attr(tokens, j);
        if !is_test {
            i = attr_end;
            continue;
        }
        if inner {
            return vec![(1, u32::MAX)];
        }
        // Skip any further attributes stacked on the same item.
        let mut k = attr_end;
        while is_punct(tokens, k, "#") && is_punct(tokens, k + 1, "[") {
            let (end, _) = scan_attr(tokens, k + 1);
            k = end;
        }
        // Consume the item: up to a top-level `;`, or through the matching
        // `}` of its first top-level brace block.
        let mut depth = 0i32;
        let mut end_line = start_line;
        while k < tokens.len() {
            let t = &tokens[k];
            end_line = t.line;
            if t.kind == TokKind::Punct {
                match t.text {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => {
                        depth -= 1;
                        if depth == 0 && t.text == "}" {
                            break;
                        }
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            k += 1;
        }
        out.push((start_line, end_line));
        i = k + 1;
    }
    out
}

/// Scans the attribute starting at the `[` at index `open`; returns the
/// index one past the matching `]` and whether the attribute is a
/// `cfg(… test …)`.
fn scan_attr(tokens: &[Token<'_>], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut k = open;
    while k < tokens.len() {
        let t = &tokens[k];
        if t.kind == TokKind::Punct {
            match t.text {
                "[" | "(" | "{" => depth += 1,
                "]" | ")" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return (k + 1, saw_cfg && saw_test);
                    }
                }
                _ => {}
            }
        } else if t.kind == TokKind::Ident {
            saw_cfg |= t.text == "cfg";
            saw_test |= t.text == "test";
        }
        k += 1;
    }
    (k, false)
}

fn is_punct(tokens: &[Token<'_>], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
}

fn is_ident(tokens: &[Token<'_>], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
}

/// R1: `Instant::now()` / `SystemTime::now()` — wall-clock reads the data
/// plane must receive by injection instead.
pub(crate) fn check_wall_clock(
    tokens: &[Token<'_>],
    emit: &mut impl FnMut(Rule, u32, String),
) {
    for i in 2..tokens.len() {
        if is_ident(tokens, i, "now")
            && is_punct(tokens, i - 1, "::")
            && (is_ident(tokens, i - 2, "Instant") || is_ident(tokens, i - 2, "SystemTime"))
        {
            emit(
                Rule::WallClock,
                tokens[i].line,
                format!(
                    "{}::now() in data-plane code; take injected time (clock fn or explicit `now` parameter)",
                    tokens[i - 2].text
                ),
            );
        }
    }
}

/// R2: `unwrap()` / `expect(` / `panic!` / indexing by integer literal in
/// admission-path code.
pub(crate) fn check_no_panic(
    tokens: &[Token<'_>],
    emit: &mut impl FnMut(Rule, u32, String),
) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text {
            "unwrap" | "expect"
                if i > 0 && is_punct(tokens, i - 1, ".") && is_punct(tokens, i + 1, "(") =>
            {
                emit(
                    Rule::NoPanic,
                    t.line,
                    format!(".{}() on an admission path; propagate the error or handle the None", t.text),
                );
            }
            "panic" if is_punct(tokens, i + 1, "!") => {
                emit(
                    Rule::NoPanic,
                    t.line,
                    "panic! on an admission path; a panicked redirector stops enforcing".into(),
                );
            }
            _ => {}
        }
    }
    // Indexing by integer literal: `expr[0]` can panic on a shape change
    // the compiler will not catch. (`[0; n]` array literals, `#[…]`
    // attributes, and `m![…]` macros are not index expressions.)
    for i in 2..tokens.len() {
        if tokens[i].kind == TokKind::Int
            && is_punct(tokens, i - 1, "[")
            && is_punct(tokens, i + 1, "]")
        {
            let prev = &tokens[i - 2];
            let indexable = prev.kind == TokKind::Ident
                || (prev.kind == TokKind::Punct && (prev.text == ")" || prev.text == "]"));
            if indexable {
                emit(
                    Rule::NoPanic,
                    tokens[i].line,
                    format!(
                        "indexing by literal `[{}]` on an admission path; use get() or a named accessor",
                        tokens[i].text
                    ),
                );
            }
        }
    }
}

/// R5: blocking syscall wrappers in reactor callback paths. A reactor
/// shard is one thread multiplexing every connection it owns; a single
/// `read_to_end` (blocks until EOF), `set_nonblocking(false)` (reverts a
/// socket to blocking mode), or `thread::sleep` stalls them all.
pub(crate) fn check_reactor_blocking(
    tokens: &[Token<'_>],
    emit: &mut impl FnMut(Rule, u32, String),
) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text {
            "read_to_end" if i > 0 && is_punct(tokens, i - 1, ".") && is_punct(tokens, i + 1, "(") => {
                emit(
                    Rule::ReactorBlocking,
                    t.line,
                    ".read_to_end() blocks until EOF; use RecvBuf::fill_from and resume on readiness"
                        .into(),
                );
            }
            "set_nonblocking"
                if is_punct(tokens, i + 1, "(") && is_ident(tokens, i + 2, "false") =>
            {
                emit(
                    Rule::ReactorBlocking,
                    t.line,
                    "set_nonblocking(false) reverts a reactor socket to blocking mode".into(),
                );
            }
            "sleep" if i > 1 && is_punct(tokens, i - 1, "::") && is_ident(tokens, i - 2, "thread") =>
            {
                emit(
                    Rule::ReactorBlocking,
                    t.line,
                    "thread::sleep stalls every connection on the shard; use the epoll timeout"
                        .into(),
                );
            }
            _ => {}
        }
    }
}

/// R3: `==` / `!=` with a float-literal operand. Token-level heuristic:
/// flags comparisons where a float literal sits directly on either side
/// (allowing one unary minus); typed float-variable compares are beyond a
/// lexer and stay the reviewer's job.
pub(crate) fn check_float_eq(
    tokens: &[Token<'_>],
    emit: &mut impl FnMut(Rule, u32, String),
) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let prev_float = i > 0 && tokens[i - 1].kind == TokKind::Float;
        let next_float = tokens.get(i + 1).is_some_and(|n| n.kind == TokKind::Float)
            || (is_punct(tokens, i + 1, "-")
                && tokens.get(i + 2).is_some_and(|n| n.kind == TokKind::Float));
        if prev_float || next_float {
            emit(
                Rule::FloatEq,
                t.line,
                format!(
                    "float literal compared with `{}`; use an epsilon compare (e.g. `(a - b).abs() < EPS`)",
                    t.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str, f: impl Fn(&[Token<'_>], &mut dyn FnMut(Rule, u32, String))) -> Vec<u32> {
        let lexed = lex(src);
        let mut lines = Vec::new();
        f(&lexed.tokens, &mut |_, line, _| lines.push(line));
        lines
    }

    #[test]
    fn pragma_parsing() {
        assert_eq!(parse_allow_pragma("// covenant: allow(wall-clock)"), vec!["wall-clock"]);
        assert_eq!(
            parse_allow_pragma("// covenant: allow(no-panic, float-eq): reason"),
            vec!["no-panic", "float-eq"]
        );
        assert!(parse_allow_pragma("// covenant: lock-order(a < b)").is_empty());
        assert!(parse_allow_pragma("// plain comment").is_empty());
    }

    #[test]
    fn lock_order_pragma_chains() {
        assert_eq!(
            parse_lock_order_pragma("// covenant: lock-order(a < b < c)"),
            vec![("a".into(), "b".into()), ("b".into(), "c".into())]
        );
        assert!(parse_lock_order_pragma("// covenant: allow(lock-order)").is_empty());
    }

    #[test]
    fn skip_ranges_cover_test_mod() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nfn tail() {}\n";
        let lexed = lex(src);
        let ranges = test_skip_ranges(&lexed.tokens);
        assert_eq!(ranges, vec![(2, 5)]);
    }

    #[test]
    fn wall_clock_fires_on_both_clocks() {
        let lines = run(
            "fn f() { let a = Instant::now(); let b = SystemTime::now(); }",
            |t, e| check_wall_clock(t, &mut |r, l, m| e(r, l, m)),
        );
        assert_eq!(lines.len(), 2);
    }

    #[test]
    fn float_eq_heuristic_edges() {
        let fire = |src: &str| {
            run(src, |t, e| check_float_eq(t, &mut |r, l, m| e(r, l, m))).len()
        };
        assert_eq!(fire("if x == 0.0 {}"), 1);
        assert_eq!(fire("if 1.5 != y {}"), 1);
        assert_eq!(fire("if x == -1e-6 {}"), 1);
        assert_eq!(fire("if a.0 == 1 {}"), 0, "tuple index is not a float");
        assert_eq!(fire("if n == 10 {}"), 0);
    }
}
