//! `covenant-lint` — workspace invariant linter.
//!
//! The enforcement guarantees this repo reproduces (per-window accounting,
//! combining-tree coordination, sim/live differential replay) rest on
//! invariants `rustc` cannot check. This crate checks them mechanically,
//! token-level (no `syn`; the build is offline), with `file:line`
//! diagnostics:
//!
//! - **R1 `wall-clock`** — no `Instant::now()` / `SystemTime::now()` in
//!   data-plane crates (`enforce`, `sched`, `l7`, `l4`, `coord`, `http`,
//!   `wire`, `cluster`, `verify`) outside the clock/daemon allowlist.
//!   Data-plane code takes injected time, or the sim/live differential
//!   replay breaks. The wire transport's `WireClock` carries the only
//!   sanctioned reads in its crate (per-line pragmas): RTT and
//!   propagation delay are *measured* quantities there.
//! - **R2 `no-panic`** — no `unwrap()` / `expect(` / `panic!` /
//!   indexing-by-integer-literal in admission-path crates (`enforce`,
//!   `sched`, `l7`, `l4`, `coord`, `wire`, `cluster`, `verify`). A
//!   panicked redirector thread silently stops enforcing its agreements.
//! - **R3 `float-eq`** — no `==` / `!=` with a float-literal operand,
//!   workspace-wide. Credit and LP-tableau arithmetic must use epsilon
//!   compares; exact compares belong behind an explicit pragma.
//! - **R4 `lock-order`** — a static lock-order pass over `tree`, `coord`,
//!   `l7`, and `l4`: every `.lock()` acquired while another guard is
//!   lexically live adds an acquired-while-held edge; `// covenant:
//!   lock-order(A < B)` annotations add the cross-crate edges the lexical
//!   pass cannot see; any cycle in the combined graph fails the lint.
//! - **R5 `reactor-blocking`** — no blocking syscall wrappers
//!   (`.read_to_end(`, `set_nonblocking(false)`, `thread::sleep`) in
//!   reactor callback paths (`crates/reactor/src/` and the reactor data
//!   planes). One blocking call stalls every connection on that shard.
//!
//! Escape hatch: `// covenant: allow(<rule>)` on the offending line, or on
//! its own line directly above, suppresses that rule there. Test code
//! (`#[cfg(test)]` items) is skipped entirely.

mod diag;
mod lexer;
mod lockorder;
mod rules;

pub use diag::{to_json, Diag, RuleMeta, Severity};
pub use lexer::{lex, Comment, Lexed, TokKind, Token};
pub use lockorder::LockOrderAnalysis;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// The lint rules, in paper order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: wall-clock reads in data-plane code.
    WallClock,
    /// R2: panic paths in admission code.
    NoPanic,
    /// R3: exact float equality.
    FloatEq,
    /// R4: lock-order cycles.
    LockOrder,
    /// R5: blocking syscall wrappers in reactor callback paths.
    ReactorBlocking,
}

impl Rule {
    /// The rule's pragma name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::NoPanic => "no-panic",
            Rule::FloatEq => "float-eq",
            Rule::LockOrder => "lock-order",
            Rule::ReactorBlocking => "reactor-blocking",
        }
    }

    /// All rules.
    pub const ALL: [Rule; 5] = [
        Rule::WallClock,
        Rule::NoPanic,
        Rule::FloatEq,
        Rule::LockOrder,
        Rule::ReactorBlocking,
    ];
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl RuleMeta for Rule {
    fn code(self) -> &'static str {
        self.name()
    }

    fn severity(self) -> Severity {
        // Every workspace-invariant rule guards a correctness property;
        // there are no advisory source lints.
        Severity::Error
    }

    fn registry() -> &'static [Self] {
        &Rule::ALL
    }

    fn describe(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock reads in data-plane code",
            Rule::NoPanic => "panic paths in admission code",
            Rule::FloatEq => "exact float equality",
            Rule::LockOrder => "lock-order cycles",
            Rule::ReactorBlocking => "blocking calls in reactor callback paths",
        }
    }
}

/// One violation: a positioned [`Diag`] carrying a source [`Rule`].
pub type Diagnostic = Diag<Rule>;

/// Crates whose data plane must take injected time (R1).
const R1_CRATES: &[&str] =
    &["enforce", "sched", "l7", "l4", "coord", "http", "reactor", "wire", "cluster", "verify"];

/// The clock/daemon allowlist: the files that *are* the clock. The window
/// daemon turns wall time into ticks; the http clock module anchors the
/// default wall clock the origin's token bucket takes by injection.
const R1_ALLOW_FILES: &[&str] = &["crates/coord/src/daemon.rs", "crates/http/src/clock.rs"];

/// Crates on the admission path that must stay panic-free (R2). The
/// verifier joins the list because `Cluster::launch` runs it on the
/// admission-control startup path.
const R2_CRATES: &[&str] =
    &["enforce", "sched", "l7", "l4", "coord", "reactor", "wire", "cluster", "verify"];

/// Crates included in the lock-order pass (R4).
const R4_CRATES: &[&str] = &["tree", "coord", "l7", "l4"];

/// Reactor callback paths: everything in the reactor crate plus the
/// shard data planes driven by its event loops (R5). One blocking call
/// here stalls every connection on the shard.
fn r5_in_scope(rel_path: &str) -> bool {
    rel_path.starts_with("crates/reactor/src/")
        || rel_path == "crates/l7/src/shard.rs"
        || rel_path == "crates/l4/src/reactor_proxy.rs"
}

/// The linter: feed it files, then [`Linter::finish`].
#[derive(Default)]
pub struct Linter {
    diagnostics: Vec<Diagnostic>,
    lock_order: LockOrderAnalysis,
}

/// Per-line pragma table for one file.
struct Allows {
    by_line: BTreeMap<u32, BTreeSet<String>>,
}

impl Allows {
    fn from_comments(comments: &[Comment<'_>]) -> Self {
        let mut by_line: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
        for c in comments {
            for rule in rules::parse_allow_pragma(c.text) {
                by_line.entry(c.line).or_default().insert(rule.clone());
                if c.own_line {
                    // An own-line pragma covers the line below it.
                    by_line.entry(c.line + 1).or_default().insert(rule);
                }
            }
        }
        Allows { by_line }
    }

    fn allowed(&self, line: u32, rule: Rule) -> bool {
        self.by_line
            .get(&line)
            .is_some_and(|s| s.contains(rule.name()) || s.contains("all"))
    }
}

impl Linter {
    /// A fresh linter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lints one file. `rel_path` must be workspace-relative with `/`
    /// separators (e.g. `crates/enforce/src/credit.rs`) — rule scoping is
    /// derived from it.
    pub fn add_file(&mut self, rel_path: &str, src: &str) {
        let Some(crate_name) = crate_of(rel_path) else {
            return;
        };
        let lexed = lex(src);
        let allows = Allows::from_comments(&lexed.comments);
        let skip = rules::test_skip_ranges(&lexed.tokens);
        let in_scope = |line: u32| !skip.iter().any(|&(a, b)| (a..=b).contains(&line));

        let mut emit = |rule: Rule, line: u32, message: String| {
            if in_scope(line) && !allows.allowed(line, rule) {
                self.diagnostics
                    .push(Diagnostic::new(rule, rel_path.to_string(), line, 0, message));
            }
        };

        if R1_CRATES.contains(&crate_name) && !R1_ALLOW_FILES.contains(&rel_path) {
            rules::check_wall_clock(&lexed.tokens, &mut emit);
        }
        if R2_CRATES.contains(&crate_name) {
            rules::check_no_panic(&lexed.tokens, &mut emit);
        }
        rules::check_float_eq(&lexed.tokens, &mut emit);
        if r5_in_scope(rel_path) {
            rules::check_reactor_blocking(&lexed.tokens, &mut emit);
        }

        if R4_CRATES.contains(&crate_name) {
            self.lock_order.add_file(rel_path, &lexed, &skip, &allows);
        }
    }

    /// Finishes the run: closes the lock-order graph and returns every
    /// diagnostic, sorted by path and line.
    pub fn finish(mut self) -> Vec<Diagnostic> {
        self.diagnostics.extend(self.lock_order.into_diagnostics());
        self.diagnostics
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        self.diagnostics
    }
}

/// The crate a workspace-relative path belongs to (`crates/<name>/src/…`),
/// or `covenant` for the root package's `src/`. Non-source paths (tests,
/// benches, examples, fixtures) are out of scope.
fn crate_of(rel_path: &str) -> Option<&str> {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        let (name, tail) = rest.split_once('/')?;
        return tail.starts_with("src/").then_some(name);
    }
    rel_path.starts_with("src/").then_some("covenant")
}

/// Lints every workspace source file under `root` (`crates/*/src/**/*.rs`
/// plus the root package's `src/**/*.rs`). I/O errors on individual files
/// are reported as diagnostics rather than aborting the run.
pub fn lint_workspace(root: &Path) -> Vec<Diagnostic> {
    let mut files: Vec<PathBuf> = Vec::new();
    for crate_dir in read_dir_sorted(&root.join("crates")) {
        collect_rs(&crate_dir.join("src"), &mut files);
    }
    collect_rs(&root.join("src"), &mut files);

    let mut linter = Linter::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        match std::fs::read(path) {
            Ok(bytes) => linter.add_file(&rel, &String::from_utf8_lossy(&bytes)),
            Err(e) => linter.diagnostics.push(Diagnostic::new(
                Rule::WallClock,
                rel,
                0,
                0,
                format!("unreadable file: {e}"),
            )),
        }
    }
    linter.finish()
}

fn read_dir_sorted(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| rd.flatten().map(|e| e.path()).collect())
        .unwrap_or_default();
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    for path in read_dir_sorted(dir) {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

