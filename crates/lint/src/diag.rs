//! Shared diagnostics machinery: severity, rule registry, positioned
//! diagnostics, and machine output.
//!
//! `covenant-lint` (Rust-source rules R1–R5) and `covenant-verify`
//! (deployment-spec rules V1–V7) both report findings the same way — a
//! rule from a registry, a severity, and a `file:line[:col]` position —
//! so the common shape lives here, generic over the rule enum.

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but legal; reported, never fatal unless denied.
    Warning,
    /// A contract violation; fatal wherever the check gates execution.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The registry contract a family of rules implements so the shared
/// diagnostics, `--deny` parsing, and `--list-rules` output work over it.
pub trait RuleMeta: Copy + Eq + Sized + 'static {
    /// Stable code printed in diagnostics (`"wall-clock"`, `"V3"`).
    fn code(self) -> &'static str;
    /// Default severity of the rule's findings.
    fn severity(self) -> Severity;
    /// Every rule, in registry order.
    fn registry() -> &'static [Self];
    /// One-line description for `--list-rules`.
    fn describe(self) -> &'static str;

    /// Looks a rule up by its code (trimmed, case-insensitive).
    fn from_code(code: &str) -> Option<Self> {
        let code = code.trim();
        Self::registry()
            .iter()
            .copied()
            .find(|r| r.code().eq_ignore_ascii_case(code))
    }

    /// Parses a `--deny` argument: `all` or a comma-separated code list.
    /// `None` means an unknown code was named.
    fn parse_deny(spec: &str) -> Option<Vec<Self>> {
        if spec == "all" {
            return Some(Self::registry().to_vec());
        }
        spec.split(',').map(Self::from_code).collect()
    }
}

/// One finding, positioned in a source file. `line` 0 means the whole
/// file; `col` 0 means the whole line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag<R> {
    /// The rule that fired.
    pub rule: R,
    /// The finding's severity (the rule's default unless overridden).
    pub severity: Severity,
    /// Workspace-relative path (or the label the caller passed).
    pub path: String,
    /// 1-based line; 0 for whole-file findings.
    pub line: u32,
    /// 1-based column; 0 when only the line is known.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

impl<R: RuleMeta> Diag<R> {
    /// A diagnostic at `path:line:col` carrying the rule's default
    /// severity.
    pub fn new(rule: R, path: String, line: u32, col: u32, message: String) -> Self {
        Diag { rule, severity: rule.severity(), path, line, col, message }
    }
}

impl<R: RuleMeta> fmt::Display for Diag<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.path, self.line)?;
        if self.col > 0 {
            write!(f, ":{}", self.col)?;
        }
        write!(f, ": {}[{}] {}", self.severity, self.rule.code(), self.message)
    }
}

/// Renders diagnostics as a JSON array (machine output for CI).
pub fn to_json<R: RuleMeta>(diags: &[Diag<R>]) -> String {
    let mut s = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"rule\": \"{}\", \"severity\": \"{}\", \"path\": \"{}\", \
             \"line\": {}, \"col\": {}, \"message\": \"{}\"}}",
            d.rule.code(),
            d.severity,
            json_escape(&d.path),
            d.line,
            d.col,
            json_escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        s.push('\n');
    }
    s.push_str("]\n");
    s
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Toy {
        A,
        B,
    }

    impl RuleMeta for Toy {
        fn code(self) -> &'static str {
            match self {
                Toy::A => "T1",
                Toy::B => "T2",
            }
        }
        fn severity(self) -> Severity {
            match self {
                Toy::A => Severity::Error,
                Toy::B => Severity::Warning,
            }
        }
        fn registry() -> &'static [Self] {
            &[Toy::A, Toy::B]
        }
        fn describe(self) -> &'static str {
            "toy"
        }
    }

    #[test]
    fn display_includes_position_and_severity() {
        let d = Diag::new(Toy::A, "spec.json".into(), 12, 7, "boom".into());
        assert_eq!(d.to_string(), "spec.json:12:7: error[T1] boom");
        let whole_line = Diag::new(Toy::B, "a.rs".into(), 3, 0, "hm".into());
        assert_eq!(whole_line.to_string(), "a.rs:3: warning[T2] hm");
    }

    #[test]
    fn deny_parsing_covers_all_and_lists() {
        assert_eq!(Toy::parse_deny("all"), Some(vec![Toy::A, Toy::B]));
        assert_eq!(Toy::parse_deny("T2, t1"), Some(vec![Toy::B, Toy::A]));
        assert_eq!(Toy::parse_deny("T9"), None);
    }

    #[test]
    fn json_output_carries_every_field()
    {
        let out = to_json(&[Diag::new(Toy::B, "x".into(), 1, 2, "q\"uote".into())]);
        assert!(out.contains("\"rule\": \"T2\""), "{out}");
        assert!(out.contains("\"severity\": \"warning\""), "{out}");
        assert!(out.contains("\"col\": 2"), "{out}");
        assert!(out.contains("q\\\"uote"), "{out}");
    }
}
