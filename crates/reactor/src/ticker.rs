//! Window-boundary bookkeeping for a reactor loop.

/// Tracks aligned window boundaries `k·w` in the loop's (virtual or
/// coordinator) clock, mirroring the wall-clock `WindowDaemon`'s stall
/// recovery: a loop that falls behind skips to the latest elapsed
/// boundary instead of firing a catch-up burst — quotas are per-window
/// rates, so replaying missed windows would over-admit.
#[derive(Debug, Clone)]
pub struct WindowTicker {
    window: f64,
    next_k: u64,
}

impl WindowTicker {
    /// A ticker whose first boundary is `1·window_secs` (the boundary at
    /// t = 0 is the core's construction state, not a tick).
    pub fn new(window_secs: f64) -> WindowTicker {
        WindowTicker { window: window_secs, next_k: 1 }
    }

    /// The next boundary time, seconds.
    pub fn next_boundary(&self) -> f64 {
        self.next_k as f64 * self.window
    }

    /// The epoll timeout (ms) that wakes the loop at the next boundary,
    /// clamped to [1, 10_000].
    pub fn poll_timeout_ms(&self, now: f64) -> i32 {
        let secs = (self.next_boundary() - now).max(0.0);
        ((secs * 1000.0).ceil() as i64).clamp(1, 10_000) as i32
    }

    /// If a boundary has elapsed, returns the boundary time to roll at —
    /// the *latest* elapsed one, skipping any the loop slept through —
    /// and advances. The returned time is the engine's exact boundary
    /// expression (`k as f64 * window`) so virtual-time replays tie-break
    /// identically to the simulator.
    pub fn due(&mut self, now: f64) -> Option<f64> {
        let next = self.next_boundary();
        if now < next {
            return None;
        }
        // Latest k with k·w ≤ now (floor can land one short under float
        // division; correct upward).
        let mut k = (now / self.window) as u64;
        if (k + 1) as f64 * self.window <= now {
            k += 1;
        }
        let k = k.max(self.next_k);
        self.next_k = k + 1;
        Some(k as f64 * self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_once_per_boundary() {
        let mut t = WindowTicker::new(0.1);
        assert_eq!(t.due(0.05), None);
        assert_eq!(t.due(0.1), Some(0.1));
        assert_eq!(t.due(0.15), None);
        assert_eq!(t.due(0.21), Some(2.0 * 0.1));
    }

    #[test]
    fn stall_skips_to_latest_boundary() {
        let mut t = WindowTicker::new(0.1);
        // Slept through boundaries 1..=9; fire once at boundary 9, then
        // resume the normal cadence at 10.
        let fired = t.due(0.95).unwrap();
        assert!((fired - 9.0 * 0.1).abs() < 1e-12, "fired {fired}");
        assert_eq!(t.due(0.96), None);
        assert!(t.due(1.0).is_some());
    }

    #[test]
    fn boundary_times_use_engine_expression() {
        // Exact float equality with the engine's k·w is the contract the
        // differential replay relies on.
        let mut t = WindowTicker::new(0.1);
        for k in 1..=50u64 {
            let fired = t.due(k as f64 * 0.1).unwrap();
            assert_eq!(fired.to_bits(), (k as f64 * 0.1).to_bits(), "k={k}");
        }
    }

    #[test]
    fn timeout_tracks_next_boundary() {
        let t = WindowTicker::new(0.1);
        // Float remainders may push ceil() one ms past the exact value.
        assert!((100..=101).contains(&t.poll_timeout_ms(0.0)));
        assert!((5..=6).contains(&t.poll_timeout_ms(0.095)));
        // Past-due boundaries still return the 1 ms minimum (the loop
        // must reach `due`, not spin at 0).
        assert_eq!(t.poll_timeout_ms(0.2), 1);
        let slow = WindowTicker::new(60.0);
        assert_eq!(slow.poll_timeout_ms(0.0), 10_000);
    }
}
