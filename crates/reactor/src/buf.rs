//! Nonblocking stream buffers: partial reads accumulate, partial writes
//! resume, and both report exactly one of *progress / would-block / EOF*
//! so connection state machines stay explicit.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Outcome of one nonblocking I/O attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Io {
    /// Moved `n > 0` bytes (or, for flush, drained everything pending).
    Progress(usize),
    /// The socket is not ready; wait for the next readiness event.
    WouldBlock,
    /// Orderly EOF from the peer (reads only).
    Eof,
}

/// Read granularity per syscall.
const CHUNK: usize = 16 * 1024;

/// Accumulates bytes read from a nonblocking stream until a parser can
/// consume them. `consume` trims from the front lazily (an offset, with
/// periodic compaction) so pipelined protocol parsing is O(bytes), not
/// O(bytes²).
#[derive(Debug)]
pub struct RecvBuf {
    data: Vec<u8>,
    start: usize,
    cap: usize,
}

impl RecvBuf {
    /// A buffer that never grows past `cap` unconsumed bytes.
    pub fn with_capacity_limit(cap: usize) -> RecvBuf {
        RecvBuf { data: Vec::new(), start: 0, cap }
    }

    /// The unconsumed bytes.
    pub fn data(&self) -> &[u8] {
        self.data.get(self.start..).unwrap_or(&[])
    }

    /// Number of unconsumed bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once the capacity limit is reached (stop reading until the
    /// parser consumes, or fail the connection if it never can).
    pub fn is_full(&self) -> bool {
        self.len() >= self.cap
    }

    /// Marks `n` leading bytes as parsed.
    pub fn consume(&mut self, n: usize) {
        self.start = (self.start + n).min(self.data.len());
        if self.start == self.data.len() {
            self.data.clear();
            self.start = 0;
        } else if self.start > CHUNK {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }

    /// Reads once from `stream` (up to one chunk, bounded by the capacity
    /// limit). Returns [`Io::Progress`] with the bytes appended.
    pub fn fill_from(&mut self, stream: &mut TcpStream) -> io::Result<Io> {
        let room = self.cap.saturating_sub(self.len());
        if room == 0 {
            return Ok(Io::WouldBlock);
        }
        let old = self.data.len();
        self.data.resize(old + room.min(CHUNK), 0);
        let tail = self.data.get_mut(old..).unwrap_or(&mut []);
        match stream.read(tail) {
            Ok(0) => {
                self.data.truncate(old);
                Ok(Io::Eof)
            }
            Ok(n) => {
                self.data.truncate(old + n);
                Ok(Io::Progress(n))
            }
            Err(e) => {
                self.data.truncate(old);
                match e.kind() {
                    io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted => Ok(Io::WouldBlock),
                    _ => Err(e),
                }
            }
        }
    }
}

/// Pending bytes queued toward a nonblocking stream, surviving partial
/// writes. Doubles as the relay buffer: [`SendBuf::read_from`] pulls bytes
/// from a *source* stream directly into the queue for the destination.
#[derive(Debug, Default)]
pub struct SendBuf {
    data: Vec<u8>,
    written: usize,
}

impl SendBuf {
    /// An empty queue.
    pub fn new() -> SendBuf {
        SendBuf::default()
    }

    /// Queues bytes for transmission.
    pub fn push(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Bytes still unsent.
    pub fn len(&self) -> usize {
        self.data.len() - self.written
    }

    /// True when everything queued has been flushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes as much pending data as the socket accepts. Returns
    /// [`Io::Progress`] when the queue fully drained, [`Io::WouldBlock`]
    /// when bytes remain.
    pub fn flush_into(&mut self, stream: &mut TcpStream) -> io::Result<Io> {
        while self.written < self.data.len() {
            let pending = self.data.get(self.written..).unwrap_or(&[]);
            match stream.write(pending) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.written += n,
                Err(e) => match e.kind() {
                    io::ErrorKind::WouldBlock => return Ok(Io::WouldBlock),
                    io::ErrorKind::Interrupted => {}
                    _ => return Err(e),
                },
            }
        }
        let n = self.written;
        self.data.clear();
        self.written = 0;
        Ok(Io::Progress(n))
    }

    /// Reads once from `src`, appending to the queue, but never beyond
    /// `limit` pending bytes (relay backpressure: past the high-watermark
    /// the caller must drop read interest on `src` until a flush).
    pub fn read_from(&mut self, src: &mut TcpStream, limit: usize) -> io::Result<Io> {
        let room = limit.saturating_sub(self.len());
        if room == 0 {
            return Ok(Io::WouldBlock);
        }
        let old = self.data.len();
        self.data.resize(old + room.min(CHUNK), 0);
        let tail = self.data.get_mut(old..).unwrap_or(&mut []);
        match src.read(tail) {
            Ok(0) => {
                self.data.truncate(old);
                Ok(Io::Eof)
            }
            Ok(n) => {
                self.data.truncate(old + n);
                Ok(Io::Progress(n))
            }
            Err(e) => {
                self.data.truncate(old);
                match e.kind() {
                    io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted => Ok(Io::WouldBlock),
                    _ => Err(e),
                }
            }
        }
    }
}
