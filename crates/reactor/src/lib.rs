//! A hand-rolled readiness-driven reactor for the live data plane.
//!
//! The paper's redirectors need window-granularity coordination only, so
//! the live data plane scales by *sharding*: N thread-per-core event
//! loops, each owning its own enforcement state machine, meeting the
//! other shards only at window boundaries through the combining tree.
//! This crate is the per-shard substrate those loops are built from —
//! deliberately small, offline-buildable (raw `epoll` through a thin
//! syscall shim in [`sys`], no mio/tokio), and transport-agnostic:
//!
//! * [`Epoll`] / [`Interest`] / [`Event`] — level-triggered readiness
//!   registration and harvesting, tokens keying a [`Slab`];
//! * [`WakeFd`] / [`WakeHandle`] — eventfd cross-thread wakeup (shutdown,
//!   config pushes) without pipes or signals;
//! * [`RecvBuf`] / [`SendBuf`] / [`Io`] — nonblocking buffers whose
//!   partial-read/partial-write outcomes drive explicit per-connection
//!   state machines;
//! * [`WindowTicker`] — aligned `k·w` boundary arithmetic with the
//!   `WindowDaemon`'s stall-skip semantics, so a shard rolls its
//!   enforcement window on the same schedule the simulator replays;
//! * [`reuseport_listener`] / [`connect_nonblocking`] /
//!   [`set_rst_on_close`] — the three socket operations `std::net` cannot
//!   express, which the sharded accept path needs (`SO_REUSEPORT` fan-in,
//!   `EINPROGRESS` connects, RST shedding).
//!
//! Everything `unsafe` is confined to [`sys`]; the rest of the workspace
//! keeps `#![forbid(unsafe_code)]`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod buf;
mod epoll;
mod slab;
mod sys;
mod ticker;
mod wake;

pub use buf::{Io, RecvBuf, SendBuf};
pub use epoll::{Epoll, Event, Interest};
pub use slab::Slab;
pub use sys::{
    connect_nonblocking, reuseport_listener, set_recv_buffer, set_rst_on_close, set_send_buffer,
    take_socket_error,
};
pub use ticker::WindowTicker;
pub use wake::{WakeFd, WakeHandle};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    fn nonblocking_pair(tiny_buffers: bool) -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        if tiny_buffers {
            // Inherited by the accepted socket; pre-handshake, so the
            // negotiated window is genuinely small.
            set_recv_buffer(&listener, 4096).unwrap();
        }
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        if tiny_buffers {
            set_send_buffer(&a, 4096).unwrap();
        }
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    /// The satellite-mandated state-transition test: a send buffer larger
    /// than the kernel buffers must go through WouldBlock (partial write),
    /// the receive side through repeated partial reads, and both must
    /// resume exactly where they stopped — byte-identical reassembly.
    #[test]
    fn partial_write_then_partial_read_transitions() {
        // Tiny kernel buffers force partiality deterministically.
        let (mut tx, mut rx) = nonblocking_pair(true);

        let payload: Vec<u8> = (0..512 * 1024).map(|i| (i % 251) as u8).collect();
        let mut send = SendBuf::new();
        send.push(&payload);
        assert_eq!(send.len(), payload.len());

        // First flush cannot drain half a megabyte into 4 KB of socket:
        // it must park mid-buffer.
        assert_eq!(send.flush_into(&mut tx).unwrap(), Io::WouldBlock);
        let after_first = send.len();
        assert!(after_first > 0 && after_first < payload.len(), "pending {after_first}");

        let mut recv = RecvBuf::with_capacity_limit(64 * 1024);
        let mut got: Vec<u8> = Vec::new();
        let mut flush_blocked = 0u32;
        let mut read_progress = 0u32;
        let deadline = Instant::now() + Duration::from_secs(10);
        while got.len() < payload.len() {
            assert!(Instant::now() < deadline, "stalled at {} bytes", got.len());
            match send.flush_into(&mut tx) {
                Ok(Io::WouldBlock) => flush_blocked += 1,
                Ok(Io::Progress(_)) => {}
                other => panic!("flush: {other:?}"),
            }
            match recv.fill_from(&mut rx) {
                Ok(Io::Progress(_)) => {
                    read_progress += 1;
                    got.extend_from_slice(recv.data());
                    let n = recv.len();
                    recv.consume(n);
                }
                Ok(Io::WouldBlock) => std::thread::yield_now(),
                other => panic!("fill: {other:?}"),
            }
        }
        assert_eq!(got, payload, "reassembled bytes differ");
        assert!(send.is_empty());
        assert!(flush_blocked > 0, "write path never hit WouldBlock");
        assert!(read_progress > 2, "read path never went partial");

        // EOF transition: closing the writer surfaces Io::Eof exactly once
        // the buffered bytes are drained.
        drop(tx);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            assert!(Instant::now() < deadline, "EOF never surfaced");
            match recv.fill_from(&mut rx).unwrap() {
                Io::Eof => break,
                _ => std::thread::yield_now(),
            }
        }
    }

    /// End-to-end reactor plumbing: accept through a reuseport listener,
    /// complete a nonblocking connect, echo bytes through epoll-driven
    /// readiness, and observe the wake fd.
    #[test]
    fn epoll_drives_connect_accept_echo_and_wake() {
        const T_LISTEN: u64 = 0;
        const T_WAKE: u64 = 1;
        const T_CLIENT: u64 = 2;
        const T_SERVER: u64 = 3;

        let epoll = Epoll::new().unwrap();
        let listener = reuseport_listener("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        // A second listener on the same resolved address must succeed —
        // the SO_REUSEPORT contract sharding rests on.
        let second = reuseport_listener(addr).unwrap();
        drop(second);

        let (wakefd, handle) = WakeFd::new().unwrap();
        epoll.add(&listener, T_LISTEN, Interest::READ).unwrap();
        epoll.add(&wakefd, T_WAKE, Interest::READ).unwrap();

        let client = connect_nonblocking(addr).unwrap();
        epoll.add(&client, T_CLIENT, Interest::READ | Interest::WRITE).unwrap();
        handle.wake();

        let mut events = Vec::new();
        let mut server: Option<TcpStream> = None;
        let mut client = Some(client);
        let mut connected = false;
        let mut woke = false;
        let mut echoed = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while !(connected && woke && echoed == b"ping") {
            assert!(Instant::now() < deadline, "stuck: {connected} {woke} {echoed:?}");
            epoll.wait(&mut events, 100).unwrap();
            for ev in events.clone() {
                match ev.token {
                    T_LISTEN => {
                        let (s, _) = listener.accept().unwrap();
                        s.set_nonblocking(true).unwrap();
                        epoll.add(&s, T_SERVER, Interest::READ).unwrap();
                        server = Some(s);
                    }
                    T_WAKE => {
                        wakefd.drain();
                        woke = true;
                    }
                    T_CLIENT if ev.writable && !connected => {
                        let c = client.as_mut().unwrap();
                        assert!(take_socket_error(c).unwrap().is_none());
                        connected = true;
                        c.write_all(b"ping").unwrap();
                        // Connected and sent: writability interest done.
                        epoll.modify(client.as_ref().unwrap(), T_CLIENT, Interest::READ).unwrap();
                    }
                    T_SERVER if ev.readable => {
                        let mut buf = [0u8; 16];
                        let n = server.as_mut().unwrap().read(&mut buf).unwrap();
                        echoed.extend_from_slice(&buf[..n]);
                    }
                    _ => {}
                }
            }
        }
        epoll.remove(client.as_ref().unwrap()).unwrap();
    }

    /// RST shedding: a linger-zero close must reach the peer as a
    /// connection reset, not an orderly EOF.
    #[test]
    fn rst_on_close_resets_peer() {
        let (tx, mut rx) = nonblocking_pair(false);
        set_rst_on_close(&tx).unwrap();
        drop(tx);
        let mut buf = [0u8; 8];
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            assert!(Instant::now() < deadline, "no reset observed");
            match rx.read(&mut buf) {
                Ok(0) => panic!("orderly EOF; expected RST"),
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::yield_now();
                }
                Err(e) => {
                    assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "{e:?}");
                    break;
                }
            }
        }
    }
}
