//! The libc syscall shim: every `unsafe` block in the workspace lives in
//! this module, behind safe wrappers returning `io::Result`.
//!
//! The build is offline — no `libc` crate — so the needed glibc entry
//! points are declared directly. std already links libc, so the symbols
//! resolve without extra link flags. Constants are the x86_64 Linux
//! values; the crate is only compiled on that target (the workspace's
//! only build environment).
#![allow(unsafe_code)]

use std::io;
use std::net::{SocketAddr, SocketAddrV4, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd};
use std::os::raw::{c_int, c_void};

pub(crate) const AF_INET: c_int = 2;
pub(crate) const SOCK_STREAM: c_int = 1;
pub(crate) const SOCK_NONBLOCK: c_int = 0o4000;
pub(crate) const SOCK_CLOEXEC: c_int = 0o2000000;
pub(crate) const SOL_SOCKET: c_int = 1;
pub(crate) const SO_REUSEADDR: c_int = 2;
pub(crate) const SO_ERROR: c_int = 4;
pub(crate) const SO_SNDBUF: c_int = 7;
pub(crate) const SO_RCVBUF: c_int = 8;
pub(crate) const SO_LINGER: c_int = 13;
pub(crate) const SO_REUSEPORT: c_int = 15;
pub(crate) const EFD_NONBLOCK: c_int = 0o4000;
pub(crate) const EFD_CLOEXEC: c_int = 0o2000000;
pub(crate) const EPOLL_CLOEXEC: c_int = 0o2000000;
pub(crate) const EPOLL_CTL_ADD: c_int = 1;
pub(crate) const EPOLL_CTL_DEL: c_int = 2;
pub(crate) const EPOLL_CTL_MOD: c_int = 3;
pub(crate) const EPOLLIN: u32 = 0x1;
pub(crate) const EPOLLOUT: u32 = 0x4;
pub(crate) const EPOLLERR: u32 = 0x8;
pub(crate) const EPOLLHUP: u32 = 0x10;
pub(crate) const EPOLLRDHUP: u32 = 0x2000;
const EINPROGRESS: i32 = 115;

/// The kernel's `struct epoll_event`. On x86_64 it is packed (alignment
/// 1, size 12); field reads must copy, never reference.
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

#[repr(C)]
struct Linger {
    onoff: c_int,
    linger: c_int,
}

#[repr(C)]
struct SockAddrIn {
    family: u16,
    port_be: u16,
    addr_be: u32,
    zero: [u8; 8],
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int)
        -> c_int;
    fn eventfd(initval: u32, flags: c_int) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn setsockopt(fd: c_int, level: c_int, name: c_int, val: *const c_void, len: u32) -> c_int;
    fn bind(fd: c_int, addr: *const c_void, len: u32) -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
    fn connect(fd: c_int, addr: *const c_void, len: u32) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

pub(crate) fn epoll_create() -> io::Result<OwnedFd> {
    let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

pub(crate) fn epoll_control(
    epfd: &OwnedFd,
    op: c_int,
    fd: i32,
    events: u32,
    token: u64,
) -> io::Result<()> {
    let mut ev = EpollEvent { events, data: token };
    cvt(unsafe { epoll_ctl(epfd.as_raw_fd(), op, fd, &mut ev) })?;
    Ok(())
}

pub(crate) fn epoll_pwait(
    epfd: &OwnedFd,
    events: &mut [EpollEvent],
    timeout_ms: i32,
) -> io::Result<usize> {
    let n = cvt(unsafe {
        epoll_wait(
            epfd.as_raw_fd(),
            events.as_mut_ptr(),
            events.len() as c_int,
            timeout_ms,
        )
    })?;
    Ok(n as usize)
}

pub(crate) fn eventfd_create() -> io::Result<OwnedFd> {
    let fd = cvt(unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) })?;
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

pub(crate) fn fd_write_u64(fd: &OwnedFd, value: u64) -> io::Result<()> {
    let bytes = value.to_ne_bytes();
    let n = unsafe { write(fd.as_raw_fd(), bytes.as_ptr().cast(), bytes.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(())
    }
}

pub(crate) fn fd_read_u64(fd: &OwnedFd) -> io::Result<u64> {
    let mut bytes = [0u8; 8];
    let n = unsafe { read(fd.as_raw_fd(), bytes.as_mut_ptr().cast(), bytes.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(u64::from_ne_bytes(bytes))
    }
}

fn set_opt_int(fd: c_int, level: c_int, name: c_int, value: c_int) -> io::Result<()> {
    cvt(unsafe {
        setsockopt(
            fd,
            level,
            name,
            (&value as *const c_int).cast(),
            std::mem::size_of::<c_int>() as u32,
        )
    })?;
    Ok(())
}

fn sockaddr_of(addr: SocketAddrV4) -> SockAddrIn {
    SockAddrIn {
        family: AF_INET as u16,
        port_be: addr.port().to_be(),
        addr_be: u32::from(*addr.ip()).to_be(),
        zero: [0; 8],
    }
}

fn v4_of(addr: SocketAddr) -> io::Result<SocketAddrV4> {
    match addr {
        SocketAddr::V4(v4) => Ok(v4),
        SocketAddr::V6(_) => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "reactor sockets are IPv4-only",
        )),
    }
}

fn nonblocking_v4_socket() -> io::Result<OwnedFd> {
    let fd = cvt(unsafe { socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) })?;
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

/// Binds a nonblocking listener with `SO_REUSEPORT` set, so N shards can
/// bind the same address and let the kernel spray accepted connections
/// across them (the thread-per-core pattern).
pub fn reuseport_listener(addr: SocketAddr) -> io::Result<TcpListener> {
    let addr = v4_of(addr)?;
    let fd = nonblocking_v4_socket()?;
    set_opt_int(fd.as_raw_fd(), SOL_SOCKET, SO_REUSEADDR, 1)?;
    set_opt_int(fd.as_raw_fd(), SOL_SOCKET, SO_REUSEPORT, 1)?;
    let sa = sockaddr_of(addr);
    cvt(unsafe {
        bind(
            fd.as_raw_fd(),
            (&sa as *const SockAddrIn).cast(),
            std::mem::size_of::<SockAddrIn>() as u32,
        )
    })?;
    cvt(unsafe { listen(fd.as_raw_fd(), 1024) })?;
    Ok(TcpListener::from(fd))
}

/// Starts a nonblocking connect. Returns the in-flight stream; completion
/// is signalled by writability, and the caller must then check
/// [`TcpStream::take_error`] for the `SO_ERROR` verdict.
pub fn connect_nonblocking(addr: SocketAddr) -> io::Result<TcpStream> {
    let addr = v4_of(addr)?;
    let fd = nonblocking_v4_socket()?;
    let sa = sockaddr_of(addr);
    let ret = unsafe {
        connect(
            fd.as_raw_fd(),
            (&sa as *const SockAddrIn).cast(),
            std::mem::size_of::<SockAddrIn>() as u32,
        )
    };
    if ret < 0 {
        let err = io::Error::last_os_error();
        if err.raw_os_error() != Some(EINPROGRESS) {
            return Err(err);
        }
    }
    Ok(TcpStream::from(fd))
}

/// Arms `SO_LINGER {on, 0}` so dropping the stream sends RST instead of a
/// graceful FIN — the shed path for connections refused past a cap, which
/// must not occupy a TIME_WAIT slot per refusal.
pub fn set_rst_on_close(stream: &TcpStream) -> io::Result<()> {
    let lg = Linger { onoff: 1, linger: 0 };
    cvt(unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_LINGER,
            (&lg as *const Linger).cast(),
            std::mem::size_of::<Linger>() as u32,
        )
    })?;
    Ok(())
}

/// Shrinks the kernel send buffer (tests use this to force partial writes).
pub fn set_send_buffer(sock: &impl AsRawFd, bytes: usize) -> io::Result<()> {
    set_opt_int(sock.as_raw_fd(), SOL_SOCKET, SO_SNDBUF, bytes as c_int)
}

/// Shrinks the kernel receive buffer (tests use this to force partial
/// reads and backpressure). Only effective *before* the TCP handshake —
/// set it on the listener, accepted sockets inherit it; shrinking an
/// established connection's buffer below its negotiated window wedges
/// the transfer.
pub fn set_recv_buffer(sock: &impl AsRawFd, bytes: usize) -> io::Result<()> {
    set_opt_int(sock.as_raw_fd(), SOL_SOCKET, SO_RCVBUF, bytes as c_int)
}

/// The pending `SO_ERROR` on a socket, as a completed-connect check
/// (`None` = connected). Thin alias over [`TcpStream::take_error`].
pub fn take_socket_error(stream: &TcpStream) -> io::Result<Option<io::Error>> {
    let _ = SO_ERROR; // documented constant; std's take_error reads it
    stream.take_error()
}
