//! Dense free-list slab keying connection state by epoll token.

/// A slab of connection entries: stable `usize` keys (reused after
/// removal), O(1) insert/remove, no per-entry allocation beyond the
/// value itself. Reactor loops use the key as the epoll token.
#[derive(Debug)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<usize>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab { slots: Vec::new(), free: Vec::new(), len: 0 }
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Slab<T> {
        Slab::default()
    }

    /// Inserts a value, returning its key.
    pub fn insert(&mut self, value: T) -> usize {
        self.len += 1;
        match self.free.pop() {
            Some(idx) => {
                if let Some(slot) = self.slots.get_mut(idx) {
                    *slot = Some(value);
                }
                idx
            }
            None => {
                self.slots.push(Some(value));
                self.slots.len() - 1
            }
        }
    }

    /// The value under `key`, if live.
    pub fn get(&self, key: usize) -> Option<&T> {
        self.slots.get(key).and_then(|s| s.as_ref())
    }

    /// Mutable access to the value under `key`, if live.
    pub fn get_mut(&mut self, key: usize) -> Option<&mut T> {
        self.slots.get_mut(key).and_then(|s| s.as_mut())
    }

    /// Removes and returns the value under `key`.
    pub fn remove(&mut self, key: usize) -> Option<T> {
        let value = self.slots.get_mut(key).and_then(|s| s.take());
        if value.is_some() {
            self.len -= 1;
            self.free.push(key);
        }
        value
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over live `(key, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (i, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_reused_after_removal() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.remove(a), None, "double remove is a no-op");
        let c = slab.insert("c");
        assert_eq!(c, a, "freed key is reused");
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.get(c), Some(&"c"));
        assert_eq!(slab.iter().count(), 2);
    }
}
