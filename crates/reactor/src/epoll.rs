//! Safe epoll wrapper: interest registration by token, level-triggered
//! readiness harvesting.

use crate::sys;
use std::io;
use std::ops::BitOr;
use std::os::fd::{AsRawFd, OwnedFd};

/// Which readiness directions a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u32);

impl Interest {
    /// Readable (plus peer-half-close notification).
    pub const READ: Interest = Interest(sys::EPOLLIN | sys::EPOLLRDHUP);
    /// Writable.
    pub const WRITE: Interest = Interest(sys::EPOLLOUT);
    /// No direction — error/hangup only (always reported by epoll).
    pub const NONE: Interest = Interest(0);

    /// True if this interest includes `other`'s bits.
    pub fn contains(self, other: Interest) -> bool {
        self.0 & other.0 == other.0
    }
}

impl BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// One harvested readiness event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (or peer half-closed with data possibly still buffered —
    /// level-triggered epoll keeps reporting until drained).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Peer closed its end (`EPOLLRDHUP`/`EPOLLHUP`).
    pub closed: bool,
    /// Error condition pending on the fd (`EPOLLERR`).
    pub error: bool,
}

/// A level-triggered epoll instance.
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// A fresh epoll instance.
    pub fn new() -> io::Result<Epoll> {
        Ok(Epoll { fd: sys::epoll_create()? })
    }

    /// Registers `fd` with `token` and `interest`.
    pub fn add(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_control(&self.fd, sys::EPOLL_CTL_ADD, fd.as_raw_fd(), interest.0, token)
    }

    /// Changes the interest of a registered fd.
    pub fn modify(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_control(&self.fd, sys::EPOLL_CTL_MOD, fd.as_raw_fd(), interest.0, token)
    }

    /// Deregisters a fd. Idempotent in practice: closing the fd also
    /// removes it, so teardown paths ignore this call's error.
    pub fn remove(&self, fd: &impl AsRawFd) -> io::Result<()> {
        sys::epoll_control(&self.fd, sys::EPOLL_CTL_DEL, fd.as_raw_fd(), 0, 0)
    }

    /// Waits up to `timeout_ms` (-1 = forever) and appends harvested
    /// events to `out` (cleared first). Interrupted waits (`EINTR`) report
    /// zero events rather than an error.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        out.clear();
        let mut raw = [sys::EpollEvent { events: 0, data: 0 }; 256];
        let n = match sys::epoll_pwait(&self.fd, &mut raw, timeout_ms) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in raw.iter().take(n) {
            // Packed struct: copy fields out before use.
            let bits = ev.events;
            let token = ev.data;
            out.push(Event {
                token,
                readable: bits & sys::EPOLLIN != 0,
                writable: bits & sys::EPOLLOUT != 0,
                closed: bits & (sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                error: bits & sys::EPOLLERR != 0,
            });
        }
        Ok(n)
    }
}
