//! Cross-thread shard wakeup via `eventfd`.

use crate::sys;
use std::io;
use std::os::fd::{AsRawFd, OwnedFd, RawFd};
use std::sync::Arc;

/// A wakeup channel into a shard's epoll loop: any thread calls
/// [`WakeHandle::wake`], the shard registers the fd under a reserved token
/// and calls [`WakeFd::drain`] when it fires. The eventfd counter
/// coalesces concurrent wakes into one readiness edge.
pub struct WakeFd {
    fd: Arc<OwnedFd>,
}

/// The sending side of a [`WakeFd`] (cheaply cloneable, `Send`).
#[derive(Clone)]
pub struct WakeHandle {
    fd: Arc<OwnedFd>,
}

impl WakeFd {
    /// A fresh nonblocking eventfd pair.
    pub fn new() -> io::Result<(WakeFd, WakeHandle)> {
        let fd = Arc::new(sys::eventfd_create()?);
        Ok((WakeFd { fd: Arc::clone(&fd) }, WakeHandle { fd }))
    }

    /// Consumes pending wakes so level-triggered epoll stops reporting.
    pub fn drain(&self) {
        // A read on an armed eventfd returns its counter and zeroes it;
        // EAGAIN means another drain already consumed it.
        let _ = sys::fd_read_u64(&self.fd);
    }
}

impl AsRawFd for WakeFd {
    fn as_raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }
}

impl WakeHandle {
    /// Wakes the owning shard's epoll loop.
    pub fn wake(&self) {
        // The only failure modes (EAGAIN on counter overflow) still leave
        // the fd readable, which is all a wake needs.
        let _ = sys::fd_write_u64(&self.fd, 1);
    }
}
