//! Deployment facade: the paper's experiments as declarative scenarios.
//!
//! This crate wires the workspace together for downstream users: given a
//! handful of parameters it builds the agreement graphs, client loads,
//! redirector trees, and simulator configurations for each of the paper's
//! evaluation setups (Figures 1 and 6–10), runs them, and summarizes the
//! per-phase processing rates the paper reports.
//!
//! ```no_run
//! use covenant_core::scenarios;
//!
//! let scenario = scenarios::fig6(50.0);
//! let outcome = scenario.run();
//! println!("{}", outcome.to_csv());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod report;
pub mod scenario;
pub mod scenarios;
pub mod spec;

pub use report::{
    counters_report_json, live_counters_json, live_counters_sharded_json, run_report_json,
    sim_counters, sim_counters_json, PhaseRates, ScenarioOutcome,
};
pub use scenario::{LinkSpec, NetSpec, ScenarioSpec, TimelineEvent};
pub use scenarios::FigureScenario;
pub use spec::{DeploymentSpec, SpecError};
