//! Declarative deployment specifications (JSON-friendly).
//!
//! Lets operators describe a whole enforcement deployment — principals,
//! agreements, redirector tree, scheduling policy, client loads — as data,
//! and run it without writing Rust. This is the input format of the
//! `covenant` CLI.

use covenant_agreements::{AgreementError, AgreementGraph, PrincipalId};
use covenant_sched::{LocalityCaps, Policy};
use covenant_sim::{QueueMode, SimConfig};
use covenant_tree::{Topology, TreeError};
use covenant_workload::{ClientMachine, PhasedLoad};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A whole-deployment specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentSpec {
    /// Principals in id order.
    pub principals: Vec<PrincipalSpec>,
    /// Direct agreements.
    pub agreements: Vec<AgreementSpec>,
    /// Redirectors and their combining tree (parent indices; exactly one
    /// `null` root). A single-redirector deployment is `[null]`.
    #[serde(default = "default_tree")]
    pub redirector_tree: Vec<Option<usize>>,
    /// Uniform edge delay in the tree, seconds.
    #[serde(default)]
    pub tree_edge_delay: f64,
    /// Extra information lag injected on top of propagation, seconds.
    #[serde(default)]
    pub extra_tree_lag: f64,
    /// Scheduling policy.
    #[serde(default)]
    pub policy: PolicySpec,
    /// Scheduling window, seconds.
    #[serde(default = "default_window")]
    pub window_secs: f64,
    /// Queuing mode.
    #[serde(default)]
    pub queue_mode: QueueModeSpec,
    /// Client machines.
    pub clients: Vec<ClientSpec>,
    /// Run length, seconds.
    pub duration: f64,
    /// Verifier rules (`covenant check`) suppressed for this spec, by
    /// code (e.g. `["V4"]`). The escape hatch for deployments that
    /// knowingly violate an advisory contract.
    #[serde(default)]
    pub allow: Vec<String>,
}

fn default_tree() -> Vec<Option<usize>> {
    vec![None]
}

fn default_window() -> f64 {
    0.1
}

/// One principal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrincipalSpec {
    /// Display name (also used in client references).
    pub name: String,
    /// Physical capacity, requests/second (0 for pure consumers).
    #[serde(default)]
    pub capacity: f64,
}

/// One `[lb, ub]` agreement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgreementSpec {
    /// Issuer principal name.
    pub issuer: String,
    /// Holder principal name.
    pub holder: String,
    /// Guaranteed fraction.
    pub lb: f64,
    /// Best-effort upper bound.
    pub ub: f64,
}

/// Scheduling policy selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case", tag = "kind")]
pub enum PolicySpec {
    /// Max-min θ (community).
    #[default]
    Community,
    /// Community with per-server locality caps (requests/window).
    CommunityWithLocality {
        /// Per-server caps in principal-id order.
        caps: Vec<f64>,
    },
    /// Provider income maximization.
    Provider {
        /// Per-principal price for requests beyond mandatory.
        prices: Vec<f64>,
    },
}

/// Queuing mode selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case", tag = "kind")]
pub enum QueueModeSpec {
    /// Explicit per-principal queues.
    Explicit,
    /// Credit gate + client retry (L7 semantics).
    CreditRetry {
        /// Retry delay, seconds.
        #[serde(default = "default_retry")]
        retry_delay: f64,
    },
    /// Credit gate + parking (L4 semantics).
    CreditPark,
}

impl Default for QueueModeSpec {
    fn default() -> Self {
        QueueModeSpec::CreditRetry { retry_delay: default_retry() }
    }
}

fn default_retry() -> f64 {
    0.05
}

/// One client machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientSpec {
    /// Principal whose agreements fund this client's requests.
    pub principal: String,
    /// Redirector index the client sends to.
    #[serde(default)]
    pub redirector: usize,
    /// Load phases: (duration seconds, rate req/s).
    pub phases: Vec<(f64, f64)>,
    /// Optional closed-loop outstanding limit.
    #[serde(default)]
    pub max_outstanding: Option<usize>,
}

/// Errors raised while materializing a spec.
#[derive(Debug)]
pub enum SpecError {
    /// A client or agreement referenced an unknown principal name.
    UnknownPrincipal(String),
    /// The agreement graph rejected an agreement.
    Agreement(AgreementError),
    /// The redirector tree was invalid.
    Tree(TreeError),
    /// A client referenced a redirector index outside the tree.
    BadRedirector(usize),
    /// JSON parse or shape failure.
    Json(crate::json::JsonError),
    /// A scenario-level constraint failed (timeline references, link
    /// shape) while materializing a [`crate::scenario::ScenarioSpec`].
    Scenario(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownPrincipal(n) => write!(f, "unknown principal '{n}'"),
            SpecError::Agreement(e) => write!(f, "invalid agreement: {e}"),
            SpecError::Tree(e) => write!(f, "invalid redirector tree: {e}"),
            SpecError::BadRedirector(i) => write!(f, "redirector index {i} out of range"),
            SpecError::Json(e) => write!(f, "invalid spec JSON: {e}"),
            SpecError::Scenario(m) => write!(f, "invalid scenario: {m}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl DeploymentSpec {
    /// Parses a spec from JSON.
    pub fn from_json(json: &str) -> Result<Self, SpecError> {
        decode::deployment(json).map_err(SpecError::Json)
    }

    /// Serializes the spec to pretty JSON.
    pub fn to_json(&self) -> String {
        encode::deployment(self).to_pretty()
    }

    /// Builds just the agreement graph.
    pub fn build_graph(&self) -> Result<AgreementGraph, SpecError> {
        let mut g = AgreementGraph::new();
        for p in &self.principals {
            g.add_principal(p.name.clone(), p.capacity);
        }
        let lookup = |name: &str| -> Result<PrincipalId, SpecError> {
            self.principals
                .iter()
                .position(|p| p.name == name)
                .map(PrincipalId)
                .ok_or_else(|| SpecError::UnknownPrincipal(name.to_string()))
        };
        for a in &self.agreements {
            let issuer = lookup(&a.issuer)?;
            let holder = lookup(&a.holder)?;
            g.add_agreement(issuer, holder, a.lb, a.ub)
                .map_err(SpecError::Agreement)?;
        }
        Ok(g)
    }

    /// Materializes the full simulator configuration.
    pub fn build_sim(&self) -> Result<SimConfig, SpecError> {
        let graph = self.build_graph()?;
        let tree = Topology::from_parents(
            &self.redirector_tree,
            &vec![self.tree_edge_delay; self.redirector_tree.len()],
        )
        .map_err(SpecError::Tree)?;
        let n_redirectors = tree.len();

        let mut cfg = SimConfig::new(graph, self.duration)
            .with_tree(tree, self.extra_tree_lag)
            .with_mode(match &self.queue_mode {
                QueueModeSpec::Explicit => QueueMode::Explicit,
                QueueModeSpec::CreditRetry { retry_delay } => {
                    QueueMode::CreditRetry { retry_delay: *retry_delay }
                }
                QueueModeSpec::CreditPark => QueueMode::CreditPark,
            })
            .with_policy(match &self.policy {
                PolicySpec::Community => Policy::Community { locality: None },
                PolicySpec::CommunityWithLocality { caps } => {
                    Policy::Community { locality: Some(LocalityCaps(caps.clone())) }
                }
                PolicySpec::Provider { prices } => Policy::Provider { prices: prices.clone() },
            });
        cfg.window_secs = self.window_secs;

        for (ci, c) in self.clients.iter().enumerate() {
            let principal = self
                .principals
                .iter()
                .position(|p| p.name == c.principal)
                .map(PrincipalId)
                .ok_or_else(|| SpecError::UnknownPrincipal(c.principal.clone()))?;
            if c.redirector >= n_redirectors {
                return Err(SpecError::BadRedirector(c.redirector));
            }
            let load = c
                .phases
                .iter()
                .fold(PhasedLoad::new(), |l, &(d, r)| l.then(d, r));
            let machine = ClientMachine::uniform(ci, principal, load);
            cfg = match c.max_outstanding {
                Some(limit) => cfg.closed_loop_client(machine, c.redirector, limit),
                None => cfg.client(machine, c.redirector),
            };
        }
        Ok(cfg)
    }
}

pub(crate) mod decode {
    //! JSON → spec mapping (replaces the serde derive path so the
    //! workspace builds offline). Field defaults mirror the `#[serde]`
    //! attributes on the spec types. `pub(crate)` so the scenario
    //! superset decoder reuses the deployment mapping and helpers.

    use super::*;
    use crate::json::{JsonError, Value};

    pub fn deployment(text: &str) -> Result<DeploymentSpec, JsonError> {
        let v = Value::parse(text)?;
        deployment_value(&v)
    }

    pub fn deployment_value(v: &Value) -> Result<DeploymentSpec, JsonError> {
        if !matches!(v, Value::Obj(_)) {
            return Err(JsonError::msg("spec must be a JSON object"));
        }
        Ok(DeploymentSpec {
            principals: list(v, "principals", principal)?,
            agreements: list(v, "agreements", agreement)?,
            redirector_tree: match v.get("redirector_tree") {
                None => default_tree(),
                Some(t) => tree(t)?,
            },
            tree_edge_delay: opt_f64(v, "tree_edge_delay", 0.0)?,
            extra_tree_lag: opt_f64(v, "extra_tree_lag", 0.0)?,
            policy: match v.get("policy") {
                None => PolicySpec::default(),
                Some(p) => policy(p)?,
            },
            window_secs: opt_f64(v, "window_secs", default_window())?,
            queue_mode: match v.get("queue_mode") {
                None => QueueModeSpec::default(),
                Some(q) => queue_mode(q)?,
            },
            clients: list(v, "clients", client)?,
            duration: req_f64(v, "duration")?,
            allow: match v.get("allow") {
                None => Vec::new(),
                Some(a) => str_array(a, "allow")?,
            },
        })
    }

    fn principal(v: &Value) -> Result<PrincipalSpec, JsonError> {
        Ok(PrincipalSpec {
            name: req_str(v, "name")?,
            capacity: opt_f64(v, "capacity", 0.0)?,
        })
    }

    fn agreement(v: &Value) -> Result<AgreementSpec, JsonError> {
        Ok(AgreementSpec {
            issuer: req_str(v, "issuer")?,
            holder: req_str(v, "holder")?,
            lb: req_f64(v, "lb")?,
            ub: req_f64(v, "ub")?,
        })
    }

    fn tree(v: &Value) -> Result<Vec<Option<usize>>, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::msg("redirector_tree must be an array"))?
            .iter()
            .map(|e| {
                if e.is_null() {
                    Ok(None)
                } else {
                    e.as_usize()
                        .map(Some)
                        .ok_or_else(|| JsonError::msg("redirector_tree entries must be null or an index"))
                }
            })
            .collect()
    }

    fn policy(v: &Value) -> Result<PolicySpec, JsonError> {
        match v["kind"].as_str() {
            Some("community") => Ok(PolicySpec::Community),
            Some("community_with_locality") => Ok(PolicySpec::CommunityWithLocality {
                caps: f64_array(&v["caps"], "policy caps")?,
            }),
            Some("provider") => Ok(PolicySpec::Provider {
                prices: f64_array(&v["prices"], "policy prices")?,
            }),
            _ => Err(JsonError::msg("policy kind must be community, community_with_locality, or provider")),
        }
    }

    fn queue_mode(v: &Value) -> Result<QueueModeSpec, JsonError> {
        match v["kind"].as_str() {
            Some("explicit") => Ok(QueueModeSpec::Explicit),
            Some("credit_retry") => Ok(QueueModeSpec::CreditRetry {
                retry_delay: opt_f64(v, "retry_delay", default_retry())?,
            }),
            Some("credit_park") => Ok(QueueModeSpec::CreditPark),
            _ => Err(JsonError::msg("queue_mode kind must be explicit, credit_retry, or credit_park")),
        }
    }

    fn client(v: &Value) -> Result<ClientSpec, JsonError> {
        let phases = v["phases"]
            .as_array()
            .ok_or_else(|| JsonError::msg("client phases must be an array"))?
            .iter()
            .map(|ph| {
                match (ph[0].as_f64(), ph[1].as_f64()) {
                    (Some(d), Some(r)) if ph.as_array().is_some_and(|a| a.len() == 2) => Ok((
                        finite_nonneg(d, "phase duration")?,
                        finite_nonneg(r, "phase rate")?,
                    )),
                    _ => Err(JsonError::msg("each phase must be a [duration, rate] pair")),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        let max_outstanding = match v.get("max_outstanding") {
            None | Some(Value::Null) => None,
            Some(m) => Some(
                m.as_usize()
                    .ok_or_else(|| JsonError::msg("max_outstanding must be a non-negative integer"))?,
            ),
        };
        Ok(ClientSpec {
            principal: req_str(v, "principal")?,
            redirector: match v.get("redirector") {
                None => 0,
                Some(r) => r
                    .as_usize()
                    .ok_or_else(|| JsonError::msg("redirector must be a non-negative integer"))?,
            },
            phases,
            max_outstanding,
        })
    }

    pub fn list<T>(
        v: &Value,
        key: &str,
        item: fn(&Value) -> Result<T, JsonError>,
    ) -> Result<Vec<T>, JsonError> {
        v.get(key)
            .and_then(Value::as_array)
            .ok_or_else(|| JsonError::msg(format!("'{key}' must be an array")))?
            .iter()
            .map(item)
            .collect()
    }

    pub fn str_array(v: &Value, what: &str) -> Result<Vec<String>, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::msg(format!("'{what}' must be an array of strings")))?
            .iter()
            .map(|e| {
                e.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| JsonError::msg(format!("'{what}' entries must be strings")))
            })
            .collect()
    }

    pub fn f64_array(v: &Value, what: &str) -> Result<Vec<f64>, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::msg(format!("{what} must be an array of numbers")))?
            .iter()
            .map(|e| e.as_f64().ok_or_else(|| JsonError::msg(format!("{what} must be numeric"))))
            .collect()
    }

    /// Every scalar the spec carries is a duration, rate, capacity, or
    /// fraction — NaN, infinities, and negatives would flow straight into
    /// the scheduler's credit arithmetic, so they are rejected here.
    pub fn finite_nonneg(x: f64, what: &str) -> Result<f64, JsonError> {
        if x.is_finite() && x >= 0.0 {
            Ok(x)
        } else {
            Err(JsonError::msg(format!(
                "{what} must be a finite, non-negative number, got {x}"
            )))
        }
    }

    pub fn req_f64(v: &Value, key: &str) -> Result<f64, JsonError> {
        v.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| JsonError::msg(format!("'{key}' must be a number")))
            .and_then(|x| finite_nonneg(x, &format!("'{key}'")))
    }

    pub fn opt_f64(v: &Value, key: &str, default: f64) -> Result<f64, JsonError> {
        match v.get(key) {
            None => Ok(default),
            Some(n) => n
                .as_f64()
                .ok_or_else(|| JsonError::msg(format!("'{key}' must be a number")))
                .and_then(|x| finite_nonneg(x, &format!("'{key}'"))),
        }
    }

    pub fn req_str(v: &Value, key: &str) -> Result<String, JsonError> {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| JsonError::msg(format!("'{key}' must be a string")))
    }
}

pub(crate) mod encode {
    //! Spec → JSON mapping, shape-compatible with [`decode`].

    use super::*;
    use crate::json::Value;

    pub fn deployment(spec: &DeploymentSpec) -> Value {
        let mut fields = vec![
            (
                "principals".into(),
                Value::Arr(spec.principals.iter().map(principal).collect()),
            ),
            (
                "agreements".into(),
                Value::Arr(spec.agreements.iter().map(agreement).collect()),
            ),
            (
                "redirector_tree".into(),
                Value::Arr(
                    spec.redirector_tree
                        .iter()
                        .map(|p| p.map_or(Value::Null, Value::from))
                        .collect(),
                ),
            ),
            ("tree_edge_delay".into(), spec.tree_edge_delay.into()),
            ("extra_tree_lag".into(), spec.extra_tree_lag.into()),
            ("policy".into(), policy(&spec.policy)),
            ("window_secs".into(), spec.window_secs.into()),
            ("queue_mode".into(), queue_mode(&spec.queue_mode)),
            (
                "clients".into(),
                Value::Arr(spec.clients.iter().map(client).collect()),
            ),
            ("duration".into(), spec.duration.into()),
        ];
        if !spec.allow.is_empty() {
            fields.push((
                "allow".into(),
                Value::Arr(spec.allow.iter().map(|s| s.as_str().into()).collect()),
            ));
        }
        Value::Obj(fields)
    }

    fn principal(p: &PrincipalSpec) -> Value {
        Value::Obj(vec![
            ("name".into(), p.name.as_str().into()),
            ("capacity".into(), p.capacity.into()),
        ])
    }

    fn agreement(a: &AgreementSpec) -> Value {
        Value::Obj(vec![
            ("issuer".into(), a.issuer.as_str().into()),
            ("holder".into(), a.holder.as_str().into()),
            ("lb".into(), a.lb.into()),
            ("ub".into(), a.ub.into()),
        ])
    }

    fn policy(p: &PolicySpec) -> Value {
        match p {
            PolicySpec::Community => Value::Obj(vec![("kind".into(), "community".into())]),
            PolicySpec::CommunityWithLocality { caps } => Value::Obj(vec![
                ("kind".into(), "community_with_locality".into()),
                ("caps".into(), f64_array(caps)),
            ]),
            PolicySpec::Provider { prices } => Value::Obj(vec![
                ("kind".into(), "provider".into()),
                ("prices".into(), f64_array(prices)),
            ]),
        }
    }

    fn queue_mode(q: &QueueModeSpec) -> Value {
        match q {
            QueueModeSpec::Explicit => Value::Obj(vec![("kind".into(), "explicit".into())]),
            QueueModeSpec::CreditRetry { retry_delay } => Value::Obj(vec![
                ("kind".into(), "credit_retry".into()),
                ("retry_delay".into(), (*retry_delay).into()),
            ]),
            QueueModeSpec::CreditPark => Value::Obj(vec![("kind".into(), "credit_park".into())]),
        }
    }

    fn client(c: &ClientSpec) -> Value {
        let mut fields = vec![
            ("principal".into(), c.principal.as_str().into()),
            ("redirector".into(), c.redirector.into()),
            (
                "phases".into(),
                Value::Arr(
                    c.phases
                        .iter()
                        .map(|&(d, r)| Value::Arr(vec![d.into(), r.into()]))
                        .collect(),
                ),
            ),
        ];
        fields.push((
            "max_outstanding".into(),
            c.max_outstanding.map_or(Value::Null, Value::from),
        ));
        Value::Obj(fields)
    }

    fn f64_array(xs: &[f64]) -> Value {
        Value::Arr(xs.iter().map(|&x| x.into()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covenant_sim::Simulation;

    const EXAMPLE: &str = r#"{
        "principals": [
            {"name": "S", "capacity": 100.0},
            {"name": "A"},
            {"name": "B"}
        ],
        "agreements": [
            {"issuer": "S", "holder": "A", "lb": 0.2, "ub": 1.0},
            {"issuer": "S", "holder": "B", "lb": 0.8, "ub": 1.0}
        ],
        "clients": [
            {"principal": "A", "phases": [[20.0, 150.0]]},
            {"principal": "B", "phases": [[20.0, 150.0]]}
        ],
        "duration": 20.0
    }"#;

    #[test]
    fn parses_and_builds() {
        let spec = DeploymentSpec::from_json(EXAMPLE).unwrap();
        let g = spec.build_graph().unwrap();
        assert_eq!(g.len(), 3);
        let lv = g.access_levels();
        assert!((lv.mandatory(PrincipalId(2)) - 80.0).abs() < 1e-9);
        let cfg = spec.build_sim().unwrap();
        assert_eq!(cfg.clients.len(), 2);
        assert_eq!(cfg.n_redirectors(), 1);
    }

    #[test]
    fn spec_driven_run_enforces() {
        let spec = DeploymentSpec::from_json(EXAMPLE).unwrap();
        let report = Simulation::new(spec.build_sim().unwrap()).run();
        let b = report.rates.mean_rate_secs(PrincipalId(2), 8.0, 19.0);
        assert!((b - 80.0).abs() < 8.0, "B {b}");
    }

    #[test]
    fn roundtrips_json() {
        let spec = DeploymentSpec::from_json(EXAMPLE).unwrap();
        let json = spec.to_json();
        let again = DeploymentSpec::from_json(&json).unwrap();
        assert_eq!(again.principals.len(), 3);
        assert_eq!(again.agreements.len(), 2);
    }

    #[test]
    fn unknown_names_rejected() {
        let bad = EXAMPLE.replace("\"holder\": \"A\"", "\"holder\": \"Z\"");
        let spec = DeploymentSpec::from_json(&bad).unwrap();
        assert!(matches!(spec.build_graph(), Err(SpecError::UnknownPrincipal(_))));
    }

    #[test]
    fn bad_tree_rejected() {
        let mut spec = DeploymentSpec::from_json(EXAMPLE).unwrap();
        spec.redirector_tree = vec![Some(1), Some(0)];
        assert!(matches!(spec.build_sim(), Err(SpecError::Tree(_))));
    }

    #[test]
    fn bad_redirector_index_rejected() {
        let mut spec = DeploymentSpec::from_json(EXAMPLE).unwrap();
        spec.clients[0].redirector = 5;
        assert!(matches!(spec.build_sim(), Err(SpecError::BadRedirector(5))));
    }

    #[test]
    fn rejects_nan_and_negative_numerics() {
        // Infinity sneaks into JSON as an out-of-range literal; negatives
        // are plain syntax. Every numeric field must reject both.
        for (field, bad) in [
            ("\"capacity\": 100.0", "\"capacity\": -100.0"),
            ("\"capacity\": 100.0", "\"capacity\": 1e999"),
            ("\"lb\": 0.2", "\"lb\": -0.2"),
            ("\"ub\": 1.0", "\"ub\": -1.0"),
            ("\"duration\": 20.0", "\"duration\": -20.0"),
            ("\"duration\": 20.0", "\"duration\": 1e999"),
            ("[20.0, 150.0]", "[-20.0, 150.0]"),
            ("[20.0, 150.0]", "[20.0, -150.0]"),
        ] {
            let bad_spec = EXAMPLE.replace(field, bad);
            assert!(
                matches!(DeploymentSpec::from_json(&bad_spec), Err(SpecError::Json(_))),
                "{bad} should be rejected at decode"
            );
        }
        let with_extras = EXAMPLE.replace(
            "\"duration\": 20.0",
            "\"duration\": 20.0, \"window_secs\": -0.1",
        );
        assert!(DeploymentSpec::from_json(&with_extras).is_err());
        let with_retry = EXAMPLE.replace(
            "\"duration\": 20.0",
            "\"duration\": 20.0, \"queue_mode\": {\"kind\": \"credit_retry\", \"retry_delay\": -0.05}",
        );
        assert!(DeploymentSpec::from_json(&with_retry).is_err());
    }

    #[test]
    fn allow_list_parses_and_roundtrips() {
        let with_allow =
            EXAMPLE.replace("\"duration\": 20.0", "\"duration\": 20.0, \"allow\": [\"V4\"]");
        let spec = DeploymentSpec::from_json(&with_allow).unwrap();
        assert_eq!(spec.allow, vec!["V4".to_string()]);
        let again = DeploymentSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, again);
        // Absent `allow` decodes empty and is omitted from the encoding.
        let plain = DeploymentSpec::from_json(EXAMPLE).unwrap();
        assert!(plain.allow.is_empty());
        assert!(!plain.to_json().contains("allow"));
    }

    #[test]
    fn policy_and_mode_variants_parse() {
        let json = r#"{
            "principals": [{"name": "S", "capacity": 10.0}],
            "agreements": [],
            "policy": {"kind": "provider", "prices": [1.0]},
            "queue_mode": {"kind": "credit_park"},
            "redirector_tree": [null, 0],
            "clients": [],
            "duration": 1.0
        }"#;
        let spec = DeploymentSpec::from_json(json).unwrap();
        let cfg = spec.build_sim().unwrap();
        assert_eq!(cfg.n_redirectors(), 2);
        assert!(matches!(cfg.mode, QueueMode::CreditPark));
        assert!(matches!(cfg.policy, Policy::Provider { .. }));
    }
}
