//! Declarative deployment specifications (JSON-friendly).
//!
//! Lets operators describe a whole enforcement deployment — principals,
//! agreements, redirector tree, scheduling policy, client loads — as data,
//! and run it without writing Rust. This is the input format of the
//! `covenant` CLI.

use covenant_agreements::{AgreementError, AgreementGraph, PrincipalId};
use covenant_sched::{LocalityCaps, Policy};
use covenant_sim::{QueueMode, SimConfig};
use covenant_tree::{Topology, TreeError};
use covenant_workload::{ClientMachine, PhasedLoad};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A whole-deployment specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeploymentSpec {
    /// Principals in id order.
    pub principals: Vec<PrincipalSpec>,
    /// Direct agreements.
    pub agreements: Vec<AgreementSpec>,
    /// Redirectors and their combining tree (parent indices; exactly one
    /// `null` root). A single-redirector deployment is `[null]`.
    #[serde(default = "default_tree")]
    pub redirector_tree: Vec<Option<usize>>,
    /// Uniform edge delay in the tree, seconds.
    #[serde(default)]
    pub tree_edge_delay: f64,
    /// Extra information lag injected on top of propagation, seconds.
    #[serde(default)]
    pub extra_tree_lag: f64,
    /// Scheduling policy.
    #[serde(default)]
    pub policy: PolicySpec,
    /// Scheduling window, seconds.
    #[serde(default = "default_window")]
    pub window_secs: f64,
    /// Queuing mode.
    #[serde(default)]
    pub queue_mode: QueueModeSpec,
    /// Client machines.
    pub clients: Vec<ClientSpec>,
    /// Run length, seconds.
    pub duration: f64,
}

fn default_tree() -> Vec<Option<usize>> {
    vec![None]
}

fn default_window() -> f64 {
    0.1
}

/// One principal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrincipalSpec {
    /// Display name (also used in client references).
    pub name: String,
    /// Physical capacity, requests/second (0 for pure consumers).
    #[serde(default)]
    pub capacity: f64,
}

/// One `[lb, ub]` agreement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgreementSpec {
    /// Issuer principal name.
    pub issuer: String,
    /// Holder principal name.
    pub holder: String,
    /// Guaranteed fraction.
    pub lb: f64,
    /// Best-effort upper bound.
    pub ub: f64,
}

/// Scheduling policy selection.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case", tag = "kind")]
pub enum PolicySpec {
    /// Max-min θ (community).
    #[default]
    Community,
    /// Community with per-server locality caps (requests/window).
    CommunityWithLocality {
        /// Per-server caps in principal-id order.
        caps: Vec<f64>,
    },
    /// Provider income maximization.
    Provider {
        /// Per-principal price for requests beyond mandatory.
        prices: Vec<f64>,
    },
}

/// Queuing mode selection.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "snake_case", tag = "kind")]
pub enum QueueModeSpec {
    /// Explicit per-principal queues.
    Explicit,
    /// Credit gate + client retry (L7 semantics).
    CreditRetry {
        /// Retry delay, seconds.
        #[serde(default = "default_retry")]
        retry_delay: f64,
    },
    /// Credit gate + parking (L4 semantics).
    CreditPark,
}

impl Default for QueueModeSpec {
    fn default() -> Self {
        QueueModeSpec::CreditRetry { retry_delay: default_retry() }
    }
}

fn default_retry() -> f64 {
    0.05
}

/// One client machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClientSpec {
    /// Principal whose agreements fund this client's requests.
    pub principal: String,
    /// Redirector index the client sends to.
    #[serde(default)]
    pub redirector: usize,
    /// Load phases: (duration seconds, rate req/s).
    pub phases: Vec<(f64, f64)>,
    /// Optional closed-loop outstanding limit.
    #[serde(default)]
    pub max_outstanding: Option<usize>,
}

/// Errors raised while materializing a spec.
#[derive(Debug)]
pub enum SpecError {
    /// A client or agreement referenced an unknown principal name.
    UnknownPrincipal(String),
    /// The agreement graph rejected an agreement.
    Agreement(AgreementError),
    /// The redirector tree was invalid.
    Tree(TreeError),
    /// A client referenced a redirector index outside the tree.
    BadRedirector(usize),
    /// JSON parse failure.
    Json(serde_json::Error),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownPrincipal(n) => write!(f, "unknown principal '{n}'"),
            SpecError::Agreement(e) => write!(f, "invalid agreement: {e}"),
            SpecError::Tree(e) => write!(f, "invalid redirector tree: {e}"),
            SpecError::BadRedirector(i) => write!(f, "redirector index {i} out of range"),
            SpecError::Json(e) => write!(f, "invalid spec JSON: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl DeploymentSpec {
    /// Parses a spec from JSON.
    pub fn from_json(json: &str) -> Result<Self, SpecError> {
        serde_json::from_str(json).map_err(SpecError::Json)
    }

    /// Serializes the spec to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    /// Builds just the agreement graph.
    pub fn build_graph(&self) -> Result<AgreementGraph, SpecError> {
        let mut g = AgreementGraph::new();
        for p in &self.principals {
            g.add_principal(p.name.clone(), p.capacity);
        }
        let lookup = |name: &str| -> Result<PrincipalId, SpecError> {
            self.principals
                .iter()
                .position(|p| p.name == name)
                .map(PrincipalId)
                .ok_or_else(|| SpecError::UnknownPrincipal(name.to_string()))
        };
        for a in &self.agreements {
            let issuer = lookup(&a.issuer)?;
            let holder = lookup(&a.holder)?;
            g.add_agreement(issuer, holder, a.lb, a.ub)
                .map_err(SpecError::Agreement)?;
        }
        Ok(g)
    }

    /// Materializes the full simulator configuration.
    pub fn build_sim(&self) -> Result<SimConfig, SpecError> {
        let graph = self.build_graph()?;
        let tree = Topology::from_parents(
            &self.redirector_tree,
            &vec![self.tree_edge_delay; self.redirector_tree.len()],
        )
        .map_err(SpecError::Tree)?;
        let n_redirectors = tree.len();

        let mut cfg = SimConfig::new(graph, self.duration)
            .with_tree(tree, self.extra_tree_lag)
            .with_mode(match &self.queue_mode {
                QueueModeSpec::Explicit => QueueMode::Explicit,
                QueueModeSpec::CreditRetry { retry_delay } => {
                    QueueMode::CreditRetry { retry_delay: *retry_delay }
                }
                QueueModeSpec::CreditPark => QueueMode::CreditPark,
            })
            .with_policy(match &self.policy {
                PolicySpec::Community => Policy::Community { locality: None },
                PolicySpec::CommunityWithLocality { caps } => {
                    Policy::Community { locality: Some(LocalityCaps(caps.clone())) }
                }
                PolicySpec::Provider { prices } => Policy::Provider { prices: prices.clone() },
            });
        cfg.window_secs = self.window_secs;

        for (ci, c) in self.clients.iter().enumerate() {
            let principal = self
                .principals
                .iter()
                .position(|p| p.name == c.principal)
                .map(PrincipalId)
                .ok_or_else(|| SpecError::UnknownPrincipal(c.principal.clone()))?;
            if c.redirector >= n_redirectors {
                return Err(SpecError::BadRedirector(c.redirector));
            }
            let load = c
                .phases
                .iter()
                .fold(PhasedLoad::new(), |l, &(d, r)| l.then(d, r));
            let machine = ClientMachine::uniform(ci, principal, load);
            cfg = match c.max_outstanding {
                Some(limit) => cfg.closed_loop_client(machine, c.redirector, limit),
                None => cfg.client(machine, c.redirector),
            };
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covenant_sim::Simulation;

    const EXAMPLE: &str = r#"{
        "principals": [
            {"name": "S", "capacity": 100.0},
            {"name": "A"},
            {"name": "B"}
        ],
        "agreements": [
            {"issuer": "S", "holder": "A", "lb": 0.2, "ub": 1.0},
            {"issuer": "S", "holder": "B", "lb": 0.8, "ub": 1.0}
        ],
        "clients": [
            {"principal": "A", "phases": [[20.0, 150.0]]},
            {"principal": "B", "phases": [[20.0, 150.0]]}
        ],
        "duration": 20.0
    }"#;

    #[test]
    fn parses_and_builds() {
        let spec = DeploymentSpec::from_json(EXAMPLE).unwrap();
        let g = spec.build_graph().unwrap();
        assert_eq!(g.len(), 3);
        let lv = g.access_levels();
        assert!((lv.mandatory(PrincipalId(2)) - 80.0).abs() < 1e-9);
        let cfg = spec.build_sim().unwrap();
        assert_eq!(cfg.clients.len(), 2);
        assert_eq!(cfg.n_redirectors(), 1);
    }

    #[test]
    fn spec_driven_run_enforces() {
        let spec = DeploymentSpec::from_json(EXAMPLE).unwrap();
        let report = Simulation::new(spec.build_sim().unwrap()).run();
        let b = report.rates.mean_rate_secs(PrincipalId(2), 8.0, 19.0);
        assert!((b - 80.0).abs() < 8.0, "B {b}");
    }

    #[test]
    fn roundtrips_json() {
        let spec = DeploymentSpec::from_json(EXAMPLE).unwrap();
        let json = spec.to_json();
        let again = DeploymentSpec::from_json(&json).unwrap();
        assert_eq!(again.principals.len(), 3);
        assert_eq!(again.agreements.len(), 2);
    }

    #[test]
    fn unknown_names_rejected() {
        let bad = EXAMPLE.replace("\"holder\": \"A\"", "\"holder\": \"Z\"");
        let spec = DeploymentSpec::from_json(&bad).unwrap();
        assert!(matches!(spec.build_graph(), Err(SpecError::UnknownPrincipal(_))));
    }

    #[test]
    fn bad_tree_rejected() {
        let mut spec = DeploymentSpec::from_json(EXAMPLE).unwrap();
        spec.redirector_tree = vec![Some(1), Some(0)];
        assert!(matches!(spec.build_sim(), Err(SpecError::Tree(_))));
    }

    #[test]
    fn bad_redirector_index_rejected() {
        let mut spec = DeploymentSpec::from_json(EXAMPLE).unwrap();
        spec.clients[0].redirector = 5;
        assert!(matches!(spec.build_sim(), Err(SpecError::BadRedirector(5))));
    }

    #[test]
    fn policy_and_mode_variants_parse() {
        let json = r#"{
            "principals": [{"name": "S", "capacity": 10.0}],
            "agreements": [],
            "policy": {"kind": "provider", "prices": [1.0]},
            "queue_mode": {"kind": "credit_park"},
            "redirector_tree": [null, 0],
            "clients": [],
            "duration": 1.0
        }"#;
        let spec = DeploymentSpec::from_json(json).unwrap();
        let cfg = spec.build_sim().unwrap();
        assert_eq!(cfg.n_redirectors(), 2);
        assert!(matches!(cfg.mode, QueueMode::CreditPark));
        assert!(matches!(cfg.policy, Policy::Provider { .. }));
    }
}
