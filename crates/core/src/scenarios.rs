//! The paper's experiment setups as scenario builders.
//!
//! Each `figN` function reproduces the corresponding figure's testbed:
//! agreement graph, client machines with the per-client rate caps the paper
//! measured (135 req/s for proxied-WebBench L7 clients, 400 req/s for L4
//! clients), redirector tree, queuing mode, and phase schedule. Phase
//! durations are parameterized so quick runs (tests) and paper-length runs
//! (benches) share one definition.

use crate::report::{PhaseRates, ScenarioOutcome};
use covenant_agreements::{AgreementGraph, PrincipalId};
use covenant_sched::{CommunityScheduler, Policy};
use covenant_sim::{QueueMode, SimConfig, SimReport, Simulation};
use covenant_tree::Topology;
use covenant_workload::{ClientMachine, PhasedLoad};

/// Per-client rate cap with the modified Apache proxy in front of WebBench
/// (paper footnote 2: "per client load generation [drops] to 135 req/sec").
pub const L7_CLIENT_RATE: f64 = 135.0;
/// Per-client rate cap without the proxy (L4 experiments).
pub const L4_CLIENT_RATE: f64 = 400.0;

/// A named phase within a scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Label ("phase 1", …).
    pub name: String,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

/// A fully-specified figure experiment.
pub struct FigureScenario {
    /// Which figure this reproduces ("fig6", …).
    pub id: &'static str,
    /// The simulator configuration.
    pub cfg: SimConfig,
    /// The principals whose rates the figure plots, with display names.
    pub tracked: Vec<(String, PrincipalId)>,
    /// Phase boundaries for summarization.
    pub phases: Vec<PhaseSpec>,
}

impl FigureScenario {
    /// Runs the simulation and summarizes per-phase rates.
    pub fn run(self) -> ScenarioOutcome {
        let bucket = self.cfg.bucket_secs;
        let report: SimReport = Simulation::new(self.cfg).run();
        let mut phases = Vec::new();
        for ph in &self.phases {
            // Trim the first seconds of each phase: the paper's plotted
            // steady levels exclude the adaptation transient.
            let settle = ((ph.end - ph.start) * 0.2).clamp(bucket, 10.0);
            let rates = self
                .tracked
                .iter()
                .map(|(name, p)| {
                    (name.clone(), report.rates.mean_rate_secs(*p, ph.start + settle, ph.end))
                })
                .collect();
            phases.push(PhaseRates { name: ph.name.clone(), start: ph.start, end: ph.end, rates });
        }
        ScenarioOutcome { id: self.id, phases, report, tracked: self.tracked }
    }
}

fn phases(durations: &[(&str, f64)]) -> Vec<PhaseSpec> {
    let mut out = Vec::new();
    let mut t = 0.0;
    for (name, d) in durations {
        out.push(PhaseSpec { name: (*name).to_string(), start: t, end: t + d });
        t += d;
    }
    out
}

/// Figure 6: L7, service-provider context. Server V=320; A [0.2,1] with two
/// clients via R1, B [0.8,1] with one client via R2. Three phases: both
/// active / only A / both active. `phase_secs` is the length of each phase.
pub fn fig6(phase_secs: f64) -> FigureScenario {
    let mut g = AgreementGraph::new();
    let s = g.add_principal("S", 320.0);
    let a = g.add_principal("A", 0.0);
    let b = g.add_principal("B", 0.0);
    g.add_agreement(s, a, 0.2, 1.0).unwrap();
    g.add_agreement(s, b, 0.8, 1.0).unwrap();

    let p = phase_secs;
    let a_load = PhasedLoad::constant(L7_CLIENT_RATE, 3.0 * p);
    let b_load = PhasedLoad::new().then(p, L7_CLIENT_RATE).idle(p).then(p, L7_CLIENT_RATE);

    let cfg = SimConfig::new(g, 3.0 * p)
        .with_mode(QueueMode::CreditRetry { retry_delay: 0.05 })
        .with_tree(Topology::star(2, 0.0), 0.0)
        .closed_loop_client(ClientMachine::uniform(0, a, a_load.clone()), 0, 64)
        .closed_loop_client(ClientMachine::uniform(1, a, a_load), 0, 64)
        .closed_loop_client(ClientMachine::uniform(2, b, b_load), 1, 64);

    FigureScenario {
        id: "fig6",
        cfg,
        tracked: vec![("A".into(), a), ("B".into(), b)],
        phases: phases(&[("phase 1", p), ("phase 2", p), ("phase 3", p)]),
    }
}

/// Figure 7: community context, minimize global response time. Server
/// V=250; both A and B hold [0.2,1]; A has two clients, B one. A's requests
/// should be processed at twice B's rate.
pub fn fig7(duration: f64) -> FigureScenario {
    let mut g = AgreementGraph::new();
    let s = g.add_principal("S", 250.0);
    let a = g.add_principal("A", 0.0);
    let b = g.add_principal("B", 0.0);
    g.add_agreement(s, a, 0.2, 1.0).unwrap();
    g.add_agreement(s, b, 0.2, 1.0).unwrap();

    let cfg = SimConfig::new(g, duration)
        .with_mode(QueueMode::CreditRetry { retry_delay: 0.05 })
        .with_tree(Topology::star(2, 0.0), 0.0)
        .closed_loop_client(
            ClientMachine::uniform(0, a, PhasedLoad::constant(L7_CLIENT_RATE, duration)),
            0,
            64,
        )
        .closed_loop_client(
            ClientMachine::uniform(1, a, PhasedLoad::constant(L7_CLIENT_RATE, duration)),
            0,
            64,
        )
        .closed_loop_client(
            ClientMachine::uniform(2, b, PhasedLoad::constant(L7_CLIENT_RATE, duration)),
            1,
            64,
        );

    FigureScenario {
        id: "fig7",
        cfg,
        tracked: vec![("A".into(), a), ("B".into(), b)],
        phases: phases(&[("steady", duration)]),
    }
}

/// Figure 8: impact of network delay. Server V=320; A [0.8,1] (two clients
/// via R1), B [0.2,1] (one client via R2); the combining tree delivers
/// aggregates with a 10 s lag. Six phases as in the paper: B alone
/// (conservative start, then full use), competition transient, enforced
/// shares, A departs (transient, then B recovers).
pub fn fig8(extra_lag: f64) -> FigureScenario {
    let mut g = AgreementGraph::new();
    let s = g.add_principal("S", 320.0);
    let a = g.add_principal("A", 0.0);
    let b = g.add_principal("B", 0.0);
    g.add_agreement(s, a, 0.8, 1.0).unwrap();
    g.add_agreement(s, b, 0.2, 1.0).unwrap();

    // Timeline (with lag L = extra_lag, paper L = 10):
    //   0..L      phase 1: B alone, conservative (half mandatory = 32/s)
    //   L..60     phase 2: B alone, full server (client-limited 135/s)
    //   60..60+L  phase 3: A+B competing while info propagates
    //   60+L..150 phase 4: enforced (A 255, B 65)
    //   150..150+L phase 5: A gone, B still at 65 until info propagates
    //   150+L..250 phase 6: B recovers to 135
    let duration = 250.0;
    let a_load = PhasedLoad::new().idle(60.0).then(90.0, L7_CLIENT_RATE).idle(100.0);
    let b_load = PhasedLoad::constant(L7_CLIENT_RATE, duration);

    let cfg = SimConfig::new(g, duration)
        .with_mode(QueueMode::CreditRetry { retry_delay: 0.05 })
        .with_tree(Topology::star(2, 0.0), extra_lag)
        .closed_loop_client(ClientMachine::uniform(0, a, a_load.clone()), 0, 64)
        .closed_loop_client(ClientMachine::uniform(1, a, a_load), 0, 64)
        .closed_loop_client(ClientMachine::uniform(2, b, b_load), 1, 64);

    let l = extra_lag;
    FigureScenario {
        id: "fig8",
        cfg,
        tracked: vec![("A".into(), a), ("B".into(), b)],
        phases: vec![
            PhaseSpec { name: "phase 1 (conservative)".into(), start: 0.0, end: l.max(1.0) },
            PhaseSpec { name: "phase 2 (B alone)".into(), start: l.max(1.0), end: 60.0 },
            PhaseSpec { name: "phase 3 (transient)".into(), start: 60.0, end: 60.0 + l },
            PhaseSpec { name: "phase 4 (enforced)".into(), start: 60.0 + l, end: 150.0 },
            PhaseSpec { name: "phase 5 (transient)".into(), start: 150.0, end: 150.0 + l },
            PhaseSpec { name: "phase 6 (B recovers)".into(), start: 150.0 + l, end: 250.0 },
        ],
    }
}

/// Figure 9: L4, community context. A and B each own a 320 req/s server; B
/// shares its server with A under [0.5, 0.5]. Four phases: A has 2, 0, 1, 0
/// clients (400 req/s each); B always has one client.
pub fn fig9(phase_secs: f64) -> FigureScenario {
    let mut g = AgreementGraph::new();
    let a = g.add_principal("A", 320.0);
    let b = g.add_principal("B", 320.0);
    g.add_agreement(b, a, 0.5, 0.5).unwrap();

    let p = phase_secs;
    let a1 = PhasedLoad::new().then(p, L4_CLIENT_RATE).idle(p).then(p, L4_CLIENT_RATE).idle(p);
    let a2 = PhasedLoad::new().then(p, L4_CLIENT_RATE).idle(3.0 * p);
    let b1 = PhasedLoad::constant(L4_CLIENT_RATE, 4.0 * p);

    let cfg = SimConfig::new(g, 4.0 * p)
        .with_mode(QueueMode::CreditPark)
        .closed_loop_client(ClientMachine::uniform(0, a, a1), 0, 64)
        .closed_loop_client(ClientMachine::uniform(1, a, a2), 0, 64)
        .closed_loop_client(ClientMachine::uniform(2, b, b1), 0, 64);

    FigureScenario {
        id: "fig9",
        cfg,
        tracked: vec![("A".into(), a), ("B".into(), b)],
        phases: phases(&[("phase 1", p), ("phase 2", p), ("phase 3", p), ("phase 4", p)]),
    }
}

/// Figure 10: L4, provider income maximization. Provider with two 320 req/s
/// servers (pooled V=640); A [0.8,1] pays 2 per extra request, B [0.2,1]
/// pays 1. Same client phasing as Figure 9.
pub fn fig10(phase_secs: f64) -> FigureScenario {
    let mut g = AgreementGraph::new();
    let s = g.add_principal("S", 640.0);
    let a = g.add_principal("A", 0.0);
    let b = g.add_principal("B", 0.0);
    g.add_agreement(s, a, 0.8, 1.0).unwrap();
    g.add_agreement(s, b, 0.2, 1.0).unwrap();

    let p = phase_secs;
    let a1 = PhasedLoad::new().then(p, L4_CLIENT_RATE).idle(p).then(p, L4_CLIENT_RATE).idle(p);
    let a2 = PhasedLoad::new().then(p, L4_CLIENT_RATE).idle(3.0 * p);
    let b1 = PhasedLoad::constant(L4_CLIENT_RATE, 4.0 * p);

    let cfg = SimConfig::new(g, 4.0 * p)
        .with_mode(QueueMode::CreditPark)
        .with_policy(Policy::Provider { prices: vec![0.0, 2.0, 1.0] })
        .closed_loop_client(ClientMachine::uniform(0, a, a1), 0, 64)
        .closed_loop_client(ClientMachine::uniform(1, a, a2), 0, 64)
        .closed_loop_client(ClientMachine::uniform(2, b, b1), 0, 64);

    FigureScenario {
        id: "fig10",
        cfg,
        tracked: vec![("A".into(), a), ("B".into(), b)],
        phases: phases(&[("phase 1", p), ("phase 2", p), ("phase 3", p), ("phase 4", p)]),
    }
}

/// The aggregate rates Figure 1's motivating example predicts, computed
/// directly from the scheduling LP (no simulation needed — the example is
/// arithmetic about steady-state rates).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Result {
    /// (A, B) aggregate rates under independent per-server enforcement.
    pub uncoordinated: (f64, f64),
    /// (A, B) aggregate rates under coordinated enforcement.
    pub coordinated: (f64, f64),
}

/// Figure 1: two 50 req/s servers; SLAs give A 20% and B 80% of the
/// aggregate. Redirector locality bias splits the (A:40, B:80) offered load
/// as (A:20,B:30) onto S1 and (A:20,B:50) onto S2.
pub fn fig1() -> Fig1Result {
    // Independent enforcement: each server runs the LP alone on its local
    // arrivals, with per-server shares (A 20%, B 80% of that server).
    let per_server = |demand_a: f64, demand_b: f64| -> (f64, f64) {
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 50.0);
        let a = g.add_principal("A", 0.0);
        let b = g.add_principal("B", 0.0);
        g.add_agreement(s, a, 0.2, 1.0).unwrap();
        g.add_agreement(s, b, 0.8, 1.0).unwrap();
        let plan = CommunityScheduler::new().plan(&g.access_levels(), &[0.0, demand_a, demand_b]);
        (plan.admitted(a), plan.admitted(b))
    };
    let s1 = per_server(20.0, 30.0);
    let s2 = per_server(20.0, 50.0);
    let uncoordinated = (s1.0 + s2.0, s1.1 + s2.1);

    // Coordinated: one LP over both servers with the global demands.
    let mut g = AgreementGraph::new();
    let s1p = g.add_principal("S1", 50.0);
    let s2p = g.add_principal("S2", 50.0);
    let a = g.add_principal("A", 0.0);
    let b = g.add_principal("B", 0.0);
    for s in [s1p, s2p] {
        g.add_agreement(s, a, 0.2, 1.0).unwrap();
        g.add_agreement(s, b, 0.8, 1.0).unwrap();
    }
    let plan = CommunityScheduler::new().plan(&g.access_levels(), &[0.0, 0.0, 40.0, 80.0]);
    let coordinated = (plan.admitted(a), plan.admitted(b));

    Fig1Result { uncoordinated, coordinated }
}

/// §4.1 queuing-mode comparison (E9): one principal flooding a V=320
/// server through a redirector in the given mode, with closed-loop clients
/// (the mechanism by which bunching depresses throughput). Returns the
/// achieved service rate for the offered load.
pub fn queuing_mode_rate(mode: QueueMode, offered: f64, duration: f64) -> f64 {
    let mut g = AgreementGraph::new();
    let s = g.add_principal("S", 320.0);
    let a = g.add_principal("A", 0.0);
    g.add_agreement(s, a, 0.0, 1.0).unwrap();

    // Several client machines sum to the offered rate, each with a modest
    // outstanding limit (WebBench threads block on their responses).
    let n_clients = 4;
    let per_client = offered / n_clients as f64;
    let mut cfg = SimConfig::new(g, duration).with_mode(mode);
    // Tight server backlog: bunched window-boundary bursts overflow it,
    // spread-out admissions do not.
    cfg.server_backlog = 32;
    for c in 0..n_clients {
        cfg = cfg.closed_loop_client(
            ClientMachine::uniform(c, a, PhasedLoad::constant(per_client, duration)),
            0,
            4,
        );
    }
    let report = Simulation::new(cfg).run();
    report.rates.mean_rate_secs(a, duration * 0.2, duration)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reproduces_the_motivating_example() {
        let r = fig1();
        // Paper: uncoordinated aggregate (A:30, B:70) — the SLA violation.
        assert!((r.uncoordinated.0 - 30.0).abs() < 1e-4, "A {}", r.uncoordinated.0);
        assert!((r.uncoordinated.1 - 70.0).abs() < 1e-4, "B {}", r.uncoordinated.1);
        // Coordinated: (A:20, B:80) — the SLA respected.
        assert!((r.coordinated.0 - 20.0).abs() < 1e-4, "A {}", r.coordinated.0);
        assert!((r.coordinated.1 - 80.0).abs() < 1e-4, "B {}", r.coordinated.1);
    }

    #[test]
    fn fig6_phase_rates_match_paper() {
        let outcome = fig6(20.0).run();
        let p = &outcome.phases;
        // Phase 1: B 135 (fully served, below mandatory), A ≈ 185.
        assert!((p[0].rate("B") - 135.0).abs() < 12.0, "p1 B {}", p[0].rate("B"));
        assert!((p[0].rate("A") - 185.0).abs() < 15.0, "p1 A {}", p[0].rate("A"));
        // Phase 2: only A, limited by two clients to 270.
        assert!((p[1].rate("A") - 270.0).abs() < 15.0, "p2 A {}", p[1].rate("A"));
        assert!(p[1].rate("B") < 10.0, "p2 B {}", p[1].rate("B"));
        // Phase 3: back to phase-1 shares.
        assert!((p[2].rate("B") - 135.0).abs() < 12.0, "p3 B {}", p[2].rate("B"));
        assert!((p[2].rate("A") - 185.0).abs() < 15.0, "p3 A {}", p[2].rate("A"));
    }

    #[test]
    fn fig6_steady_state_hits_plan_cache_without_changing_rates() {
        // Once the EWMA demand estimates converge inside each flat phase,
        // consecutive windows pose identical LPs and the plan cache must
        // serve them — without altering a single admitted request relative
        // to solving every window from scratch.
        let cached = fig6(20.0).run();
        assert!(
            cached.report.plan_cache_hits > 0,
            "no cache hits in steady state: {:?}",
            (cached.report.plan_cache_hits, cached.report.plan_cache_misses)
        );
        let mut scenario = fig6(20.0);
        scenario.cfg.plan_cache = false;
        let solved = scenario.run();
        assert_eq!(solved.report.plan_cache_hits, 0);
        assert_eq!(solved.report.plan_cache_misses, 0);
        assert_eq!(cached.report.admitted, solved.report.admitted);
        assert_eq!(cached.report.deferred, solved.report.deferred);
        for (cp, sp) in cached.phases.iter().zip(&solved.phases) {
            for ((cn, cr), (sn, sr)) in cp.rates.iter().zip(&sp.rates) {
                assert_eq!(cn, sn);
                assert_eq!(cr, sr, "{cn} rate differs in {}", cp.name);
            }
        }
    }

    #[test]
    fn fig7_a_served_at_twice_b() {
        let outcome = fig7(30.0).run();
        let a = outcome.phases[0].rate("A");
        let b = outcome.phases[0].rate("B");
        assert!((a / b - 2.0).abs() < 0.25, "A/B = {}", a / b);
        assert!((a + b - 250.0).abs() < 20.0, "total {}", a + b);
    }

    #[test]
    fn fig8_network_delay_phases() {
        let outcome = fig8(10.0).run();
        let p = &outcome.phases;
        // Phase 1: conservative half-mandatory ≈ 32 req/s (paper measures ~30).
        assert!((p[0].rate("B") - 32.0).abs() < 6.0, "p1 B {}", p[0].rate("B"));
        // Phase 2: B alone, client-limited 135.
        assert!((p[1].rate("B") - 135.0).abs() < 10.0, "p2 B {}", p[1].rate("B"));
        // Phase 4: enforced shares: A 255, B 65 (paper: 255 / 65).
        assert!((p[3].rate("A") - 255.0).abs() < 15.0, "p4 A {}", p[3].rate("A"));
        assert!((p[3].rate("B") - 65.0).abs() < 10.0, "p4 B {}", p[3].rate("B"));
        // Phase 6: B recovers to 135.
        assert!((p[5].rate("B") - 135.0).abs() < 10.0, "p6 B {}", p[5].rate("B"));
    }

    #[test]
    fn fig9_phase_rates_match_paper() {
        let outcome = fig9(25.0).run();
        let p = &outcome.phases;
        assert!((p[0].rate("A") - 480.0).abs() < 25.0, "p1 A {}", p[0].rate("A"));
        assert!((p[0].rate("B") - 160.0).abs() < 20.0, "p1 B {}", p[0].rate("B"));
        assert!(p[1].rate("A") < 15.0, "p2 A {}", p[1].rate("A"));
        assert!((p[1].rate("B") - 320.0).abs() < 20.0, "p2 B {}", p[1].rate("B"));
        assert!((p[2].rate("A") - 400.0).abs() < 25.0, "p3 A {}", p[2].rate("A"));
        assert!((p[2].rate("B") - 240.0).abs() < 20.0, "p3 B {}", p[2].rate("B"));
        assert!((p[3].rate("B") - 320.0).abs() < 20.0, "p4 B {}", p[3].rate("B"));
    }

    #[test]
    fn fig10_income_priority() {
        let outcome = fig10(25.0).run();
        let p = &outcome.phases;
        // Phase 1: B pinned to mandatory 128, A takes 512.
        assert!((p[0].rate("B") - 128.0).abs() < 15.0, "p1 B {}", p[0].rate("B"));
        assert!((p[0].rate("A") - 512.0).abs() < 25.0, "p1 A {}", p[0].rate("A"));
        // Phase 2: A idle; B client-limited to 400.
        assert!((p[1].rate("B") - 400.0).abs() < 20.0, "p2 B {}", p[1].rate("B"));
        // Phase 3: A 400 (one client), B takes the remaining 240.
        assert!((p[2].rate("A") - 400.0).abs() < 20.0, "p3 A {}", p[2].rate("A"));
        assert!((p[2].rate("B") - 240.0).abs() < 20.0, "p3 B {}", p[2].rate("B"));
    }
}
