//! Declarative scenarios: a deployment plus links, a timeline, and a seed.
//!
//! A [`ScenarioSpec`] is a strict superset of [`DeploymentSpec`]: the same
//! JSON object, extended with
//!
//! * `net` — one shared-rate reply-path link per redirector (rate in
//!   bytes/second, `fifo` or `fair_share` discipline) plus the byte scale,
//!   turning the simulator's fixed two-hop delay into congestion-derived
//!   transfer times;
//! * `timeline` — dated events reshaping the run while it executes: flash
//!   crowds, diurnal load swings, agreement renegotiations (the paper's
//!   dynamic-reinterpretation hook, §2.2), server failure and recovery,
//!   adversarial demand inflation, and redirector restarts;
//! * `seed` — the RNG seed for the reply-size distribution (each client
//!   derives its own stream from it), making every run reproducible.
//!
//! Because the deployment decoder ignores unknown keys, every scenario
//! file is *also* a valid deployment spec — `covenant check` verifies the
//! whole thing (rules V1–V10) and `covenant run` would simply ignore the
//! dynamics. [`ScenarioSpec::build_sim`] is the full materialization:
//! timeline events become phase overlays, capacity/agreement change
//! schedules, and restart injections on the [`SimConfig`].

use crate::json::{JsonError, Value};
use crate::spec::{decode, encode, DeploymentSpec, SpecError};
use covenant_agreements::PrincipalId;
use covenant_sim::{
    LinkCfg, LinkDiscipline, NetModelCfg, RequestCost, SimConfig,
};
use covenant_workload::ReplySizes;

/// One reply-path link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Link capacity, bytes per second.
    pub rate_bytes_per_sec: f64,
    /// Queueing discipline: `"fifo"` or `"fair_share"`.
    pub discipline: LinkDiscipline,
}

/// The scenario's network model: one link per redirector.
#[derive(Debug, Clone, PartialEq)]
pub struct NetSpec {
    /// One link per redirector, indexed like `redirector_tree`.
    pub links: Vec<LinkSpec>,
    /// Reply bytes per cost unit (and the mean of the sampled reply-size
    /// distribution). Default 6144, the paper's 6 KB average reply.
    pub unit_bytes: f64,
    /// One-way per-hop latency added to every message, seconds.
    pub hop_latency: f64,
}

fn default_unit_bytes() -> f64 {
    6144.0
}

/// One dated timeline event.
#[derive(Debug, Clone, PartialEq)]
pub enum TimelineEvent {
    /// A client's offered rate jumps by `extra_rate` for `duration`
    /// seconds (the paper's Figure 7 flash-crowd shape).
    FlashCrowd {
        /// Start time, seconds.
        at: f64,
        /// How long the crowd stays, seconds.
        duration: f64,
        /// Index into `clients`.
        client: usize,
        /// Additional req/s during the crowd.
        extra_rate: f64,
    },
    /// From `at` on, the client's load becomes a square wave alternating
    /// `peak_rate` and `trough_rate` every half `period`.
    Diurnal {
        /// Start time, seconds.
        at: f64,
        /// Full cycle length, seconds.
        period: f64,
        /// Index into `clients`.
        client: usize,
        /// Rate during the first half of each cycle, req/s.
        peak_rate: f64,
        /// Rate during the second half, req/s.
        trough_rate: f64,
    },
    /// An existing issuer→holder agreement is renegotiated to `[lb, ub]`
    /// at the next window boundary (dynamic reinterpretation, §2.2).
    Renegotiate {
        /// Effective time, seconds.
        at: f64,
        /// Issuer principal name.
        issuer: String,
        /// Holder principal name.
        holder: String,
        /// New mandatory fraction.
        lb: f64,
        /// New upper bound.
        ub: f64,
    },
    /// A server's capacity drops to zero (crash) at the next window
    /// boundary.
    ServerFail {
        /// Effective time, seconds.
        at: f64,
        /// Principal whose capacity vanishes.
        principal: String,
    },
    /// A failed server comes back, at its declared capacity or an
    /// explicit override.
    ServerRecover {
        /// Effective time, seconds.
        at: f64,
        /// Principal whose capacity returns.
        principal: String,
        /// Restored capacity; `None` restores the spec's declared value.
        capacity: Option<f64>,
    },
    /// From `at` on, a client's offered rate is multiplied by `factor`
    /// (adversarial demand inflation — a principal pushing far past its
    /// entitlement to probe the enforcement).
    Inflate {
        /// Start time, seconds.
        at: f64,
        /// Index into `clients`.
        client: usize,
        /// Rate multiplier (≥ 0).
        factor: f64,
    },
    /// A redirector crashes and restarts with empty state at `at`.
    RestartRedirector {
        /// Crash time, seconds.
        at: f64,
        /// Redirector index.
        redirector: usize,
    },
}

impl TimelineEvent {
    /// The event's scheduled time.
    pub fn at(&self) -> f64 {
        match self {
            TimelineEvent::FlashCrowd { at, .. }
            | TimelineEvent::Diurnal { at, .. }
            | TimelineEvent::Renegotiate { at, .. }
            | TimelineEvent::ServerFail { at, .. }
            | TimelineEvent::ServerRecover { at, .. }
            | TimelineEvent::Inflate { at, .. }
            | TimelineEvent::RestartRedirector { at, .. } => *at,
        }
    }

    /// The event's `kind` tag as spelled in JSON.
    pub fn kind(&self) -> &'static str {
        match self {
            TimelineEvent::FlashCrowd { .. } => "flash_crowd",
            TimelineEvent::Diurnal { .. } => "diurnal",
            TimelineEvent::Renegotiate { .. } => "renegotiate",
            TimelineEvent::ServerFail { .. } => "server_fail",
            TimelineEvent::ServerRecover { .. } => "server_recover",
            TimelineEvent::Inflate { .. } => "inflate",
            TimelineEvent::RestartRedirector { .. } => "restart_redirector",
        }
    }
}

/// A whole scenario: deployment plus net model, timeline, and seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The embedded deployment (same JSON object; scenario keys ride
    /// alongside the deployment keys).
    pub deployment: DeploymentSpec,
    /// Shared-rate reply-path links; `None` keeps the fixed-delay model.
    pub net: Option<NetSpec>,
    /// Dated events, expected in non-decreasing `at` order (decode
    /// accepts any order; verifier rule V9 flags violations).
    pub timeline: Vec<TimelineEvent>,
    /// Seed for the reply-size sampler streams.
    pub seed: u64,
}

impl ScenarioSpec {
    /// Parses a scenario from JSON. Plain deployment specs parse too,
    /// with no net model, an empty timeline, and seed 0.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let v = Value::parse(text).map_err(SpecError::Json)?;
        let deployment = decode::deployment_value(&v).map_err(SpecError::Json)?;
        let net = match v.get("net") {
            None | Some(Value::Null) => None,
            Some(n) => Some(decode_net(n).map_err(SpecError::Json)?),
        };
        let timeline = match v.get("timeline") {
            None => Vec::new(),
            Some(t) => t
                .as_array()
                .ok_or_else(|| SpecError::Json(JsonError::msg("'timeline' must be an array")))?
                .iter()
                .map(decode_event)
                .collect::<Result<_, _>>()
                .map_err(SpecError::Json)?,
        };
        let seed = match v.get("seed") {
            None => 0,
            Some(s) => s.as_usize().ok_or_else(|| {
                SpecError::Json(JsonError::msg("'seed' must be a non-negative integer"))
            })? as u64,
        };
        Ok(ScenarioSpec { deployment, net, timeline, seed })
    }

    /// Serializes the scenario to pretty JSON (deployment keys first,
    /// then the scenario extras), shape-compatible with [`Self::from_json`].
    pub fn to_json(&self) -> String {
        let Value::Obj(mut fields) = encode::deployment(&self.deployment) else {
            unreachable!("deployment encodes to an object");
        };
        if let Some(net) = &self.net {
            fields.push(("net".into(), encode_net(net)));
        }
        if !self.timeline.is_empty() {
            fields.push((
                "timeline".into(),
                Value::Arr(self.timeline.iter().map(encode_event).collect()),
            ));
        }
        if self.seed != 0 {
            fields.push(("seed".into(), (self.seed as f64).into()));
        }
        Value::Obj(fields).to_pretty()
    }

    /// Materializes the full simulator configuration: load-shaping events
    /// become phase overlays, control events become capacity/agreement
    /// change schedules and restart injections, and the net model installs
    /// links plus size-distributed request costs seeded from `seed`.
    pub fn build_sim(&self) -> Result<SimConfig, SpecError> {
        let mut dep = self.deployment.clone();
        let scenario_err = |m: String| SpecError::Scenario(m);
        for (ei, ev) in self.timeline.iter().enumerate() {
            match ev {
                TimelineEvent::FlashCrowd { at, duration, client, extra_rate } => {
                    let phases = client_phases(&mut dep, *client, ei, ev.kind())?;
                    *phases = overlay(phases, *at, *at + *duration, |r| r + *extra_rate);
                }
                TimelineEvent::Inflate { at, client, factor } => {
                    let phases = client_phases(&mut dep, *client, ei, ev.kind())?;
                    *phases = overlay(phases, *at, f64::INFINITY, |r| r * *factor);
                }
                TimelineEvent::Diurnal { at, period, client, peak_rate, trough_rate } => {
                    if *period <= 0.0 || period.is_nan() {
                        return Err(scenario_err(format!(
                            "timeline[{ei}] (diurnal) period must be positive, got {period}"
                        )));
                    }
                    let duration = dep.duration;
                    let phases = client_phases(&mut dep, *client, ei, ev.kind())?;
                    let mut shaped = truncate(phases, *at);
                    let mut t = *at;
                    let mut high = true;
                    while t < duration {
                        let d = (period / 2.0).min(duration - t);
                        shaped.push((d, if high { *peak_rate } else { *trough_rate }));
                        high = !high;
                        t += d;
                    }
                    *phases = shaped;
                }
                _ => {}
            }
        }

        let mut cfg = dep.build_sim()?;

        if let Some(net) = &self.net {
            if net.links.len() != cfg.n_redirectors() {
                return Err(scenario_err(format!(
                    "net declares {} links for {} redirectors; one link per redirector",
                    net.links.len(),
                    cfg.n_redirectors()
                )));
            }
            for (li, l) in net.links.iter().enumerate() {
                if !(l.rate_bytes_per_sec.is_finite() && l.rate_bytes_per_sec > 0.0) {
                    return Err(scenario_err(format!(
                        "net.links[{li}] rate must be finite and positive, got {}",
                        l.rate_bytes_per_sec
                    )));
                }
            }
            cfg = cfg
                .with_network_latency(net.hop_latency)
                .with_net(NetModelCfg {
                    links: net
                        .links
                        .iter()
                        .map(|l| LinkCfg {
                            rate_bytes_per_sec: l.rate_bytes_per_sec,
                            discipline: l.discipline,
                        })
                        .collect(),
                    unit_bytes: net.unit_bytes,
                });
            // Under a link model requests carry sampled WebBench reply
            // sizes, so the 200 B–500 KB tail actually hits the links.
            for (ci, c) in cfg.clients.iter_mut().enumerate() {
                c.cost = RequestCost::SizeDistributed {
                    sizes: ReplySizes::default(),
                    mean_bytes: net.unit_bytes,
                    seed: client_seed(self.seed, ci),
                };
            }
        }

        let lookup = |name: &str| -> Result<PrincipalId, SpecError> {
            self.deployment
                .principals
                .iter()
                .position(|p| p.name == name)
                .map(PrincipalId)
                .ok_or_else(|| SpecError::UnknownPrincipal(name.to_string()))
        };
        for ev in &self.timeline {
            match ev {
                TimelineEvent::Renegotiate { at, issuer, holder, lb, ub } => {
                    cfg = cfg.with_agreement_change(*at, lookup(issuer)?, lookup(holder)?, *lb, *ub);
                }
                TimelineEvent::ServerFail { at, principal } => {
                    cfg = cfg.with_capacity_change(*at, lookup(principal)?, 0.0);
                }
                TimelineEvent::ServerRecover { at, principal, capacity } => {
                    let id = lookup(principal)?;
                    let declared = self.deployment.principals[id.0].capacity;
                    cfg = cfg.with_capacity_change(*at, id, capacity.unwrap_or(declared));
                }
                TimelineEvent::RestartRedirector { at, redirector } => {
                    if *redirector >= cfg.n_redirectors() {
                        return Err(SpecError::BadRedirector(*redirector));
                    }
                    cfg = cfg.with_redirector_restart(*at, *redirector);
                }
                _ => {}
            }
        }
        Ok(cfg)
    }
}

/// Looks up a timeline event's client by index, with a positioned error.
fn client_phases<'a>(
    dep: &'a mut DeploymentSpec,
    ci: usize,
    ei: usize,
    kind: &str,
) -> Result<&'a mut Vec<(f64, f64)>, SpecError> {
    let total = dep.clients.len();
    dep.clients.get_mut(ci).map(|c| &mut c.phases).ok_or_else(|| {
        SpecError::Scenario(format!(
            "timeline[{ei}] ({kind}) references client {ci}, but only {total} clients are declared"
        ))
    })
}

/// Derives one client's reply-size RNG seed from the scenario seed
/// (splitmix-style so adjacent clients get unrelated streams).
fn client_seed(seed: u64, client: usize) -> u64 {
    let mut z = seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Applies `f` to the rate of every part of `phases` overlapping `[s, e)`,
/// splitting phases at the window edges. If the window extends past the
/// declared phases and `f(0)` produces load, the gap and tail are
/// materialized (a flash crowd can outlast the base schedule).
fn overlay(phases: &[(f64, f64)], s: f64, e: f64, f: impl Fn(f64) -> f64) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    let mut t = 0.0;
    for &(d, r) in phases {
        let (t0, t1) = (t, t + d);
        let cuts = [t0, s.clamp(t0, t1), e.clamp(t0, t1), t1];
        for w in cuts.windows(2) {
            let (a, b) = (w[0], w[1]);
            if b > a {
                let rate = if a >= s && b <= e { f(r) } else { r };
                out.push((b - a, rate));
            }
        }
        t = t1;
    }
    if e.is_finite() && e > t && f(0.0) > 0.0 {
        let a = s.max(t);
        if a > t {
            out.push((a - t, 0.0));
        }
        out.push((e - a, f(0.0)));
    }
    out
}

/// The prefix of `phases` covering `[0, cut)`.
fn truncate(phases: &[(f64, f64)], cut: f64) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    let mut t = 0.0;
    for &(d, r) in phases {
        if t + d <= cut {
            out.push((d, r));
        } else if t < cut {
            out.push((cut - t, r));
        }
        t += d;
        if t >= cut {
            break;
        }
    }
    out
}

fn decode_net(v: &Value) -> Result<NetSpec, JsonError> {
    let links = v
        .get("links")
        .and_then(Value::as_array)
        .ok_or_else(|| JsonError::msg("'net.links' must be an array"))?
        .iter()
        .map(decode_link)
        .collect::<Result<_, _>>()?;
    Ok(NetSpec {
        links,
        unit_bytes: decode::opt_f64(v, "unit_bytes", default_unit_bytes())?,
        hop_latency: decode::opt_f64(v, "hop_latency", 0.0)?,
    })
}

fn decode_link(v: &Value) -> Result<LinkSpec, JsonError> {
    let discipline = match v.get("discipline") {
        None => LinkDiscipline::Fifo,
        Some(d) => match d.as_str() {
            Some("fifo") => LinkDiscipline::Fifo,
            Some("fair_share") => LinkDiscipline::FairShare,
            _ => return Err(JsonError::msg("link discipline must be fifo or fair_share")),
        },
    };
    Ok(LinkSpec {
        rate_bytes_per_sec: decode::req_f64(v, "rate_bytes_per_sec")?,
        discipline,
    })
}

fn req_usize(v: &Value, key: &str) -> Result<usize, JsonError> {
    v.get(key)
        .and_then(Value::as_usize)
        .ok_or_else(|| JsonError::msg(format!("'{key}' must be a non-negative integer")))
}

fn decode_event(v: &Value) -> Result<TimelineEvent, JsonError> {
    let at = decode::req_f64(v, "at")?;
    match v["kind"].as_str() {
        Some("flash_crowd") => Ok(TimelineEvent::FlashCrowd {
            at,
            duration: decode::req_f64(v, "duration")?,
            client: req_usize(v, "client")?,
            extra_rate: decode::req_f64(v, "extra_rate")?,
        }),
        Some("diurnal") => Ok(TimelineEvent::Diurnal {
            at,
            period: decode::req_f64(v, "period")?,
            client: req_usize(v, "client")?,
            peak_rate: decode::req_f64(v, "peak_rate")?,
            trough_rate: decode::req_f64(v, "trough_rate")?,
        }),
        Some("renegotiate") => Ok(TimelineEvent::Renegotiate {
            at,
            issuer: decode::req_str(v, "issuer")?,
            holder: decode::req_str(v, "holder")?,
            lb: decode::req_f64(v, "lb")?,
            ub: decode::req_f64(v, "ub")?,
        }),
        Some("server_fail") => Ok(TimelineEvent::ServerFail {
            at,
            principal: decode::req_str(v, "principal")?,
        }),
        Some("server_recover") => Ok(TimelineEvent::ServerRecover {
            at,
            principal: decode::req_str(v, "principal")?,
            capacity: match v.get("capacity") {
                None | Some(Value::Null) => None,
                Some(_) => Some(decode::req_f64(v, "capacity")?),
            },
        }),
        Some("inflate") => Ok(TimelineEvent::Inflate {
            at,
            client: req_usize(v, "client")?,
            factor: decode::req_f64(v, "factor")?,
        }),
        Some("restart_redirector") => Ok(TimelineEvent::RestartRedirector {
            at,
            redirector: req_usize(v, "redirector")?,
        }),
        _ => Err(JsonError::msg(
            "timeline kind must be flash_crowd, diurnal, renegotiate, server_fail, \
             server_recover, inflate, or restart_redirector",
        )),
    }
}

fn encode_net(net: &NetSpec) -> Value {
    Value::Obj(vec![
        (
            "links".into(),
            Value::Arr(
                net.links
                    .iter()
                    .map(|l| {
                        Value::Obj(vec![
                            ("rate_bytes_per_sec".into(), l.rate_bytes_per_sec.into()),
                            (
                                "discipline".into(),
                                match l.discipline {
                                    LinkDiscipline::Fifo => "fifo".into(),
                                    LinkDiscipline::FairShare => "fair_share".into(),
                                },
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("unit_bytes".into(), net.unit_bytes.into()),
        ("hop_latency".into(), net.hop_latency.into()),
    ])
}

fn encode_event(ev: &TimelineEvent) -> Value {
    let mut fields: Vec<(String, Value)> =
        vec![("kind".into(), ev.kind().into()), ("at".into(), ev.at().into())];
    match ev {
        TimelineEvent::FlashCrowd { duration, client, extra_rate, .. } => {
            fields.push(("duration".into(), (*duration).into()));
            fields.push(("client".into(), (*client).into()));
            fields.push(("extra_rate".into(), (*extra_rate).into()));
        }
        TimelineEvent::Diurnal { period, client, peak_rate, trough_rate, .. } => {
            fields.push(("period".into(), (*period).into()));
            fields.push(("client".into(), (*client).into()));
            fields.push(("peak_rate".into(), (*peak_rate).into()));
            fields.push(("trough_rate".into(), (*trough_rate).into()));
        }
        TimelineEvent::Renegotiate { issuer, holder, lb, ub, .. } => {
            fields.push(("issuer".into(), issuer.as_str().into()));
            fields.push(("holder".into(), holder.as_str().into()));
            fields.push(("lb".into(), (*lb).into()));
            fields.push(("ub".into(), (*ub).into()));
        }
        TimelineEvent::ServerFail { principal, .. } => {
            fields.push(("principal".into(), principal.as_str().into()));
        }
        TimelineEvent::ServerRecover { principal, capacity, .. } => {
            fields.push(("principal".into(), principal.as_str().into()));
            fields.push(("capacity".into(), capacity.map_or(Value::Null, Value::from)));
        }
        TimelineEvent::Inflate { client, factor, .. } => {
            fields.push(("client".into(), (*client).into()));
            fields.push(("factor".into(), (*factor).into()));
        }
        TimelineEvent::RestartRedirector { redirector, .. } => {
            fields.push(("redirector".into(), (*redirector).into()));
        }
    }
    Value::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use covenant_sim::Simulation;

    const SCENARIO: &str = r#"{
        "principals": [
            {"name": "S", "capacity": 100.0},
            {"name": "A"},
            {"name": "B"}
        ],
        "agreements": [
            {"issuer": "S", "holder": "A", "lb": 0.2, "ub": 1.0},
            {"issuer": "S", "holder": "B", "lb": 0.8, "ub": 1.0}
        ],
        "clients": [
            {"principal": "A", "phases": [[30.0, 60.0]]},
            {"principal": "B", "phases": [[30.0, 60.0]]}
        ],
        "duration": 30.0,
        "net": {
            "links": [{"rate_bytes_per_sec": 1.0e6, "discipline": "fair_share"}],
            "unit_bytes": 6144.0
        },
        "timeline": [
            {"kind": "flash_crowd", "at": 10.0, "duration": 5.0, "client": 0, "extra_rate": 90.0},
            {"kind": "renegotiate", "at": 20.0, "issuer": "S", "holder": "B", "lb": 0.4, "ub": 1.0}
        ],
        "seed": 7
    }"#;

    #[test]
    fn parses_extras_and_builds() {
        let sc = ScenarioSpec::from_json(SCENARIO).unwrap();
        assert_eq!(sc.timeline.len(), 2);
        assert_eq!(sc.seed, 7);
        let net = sc.net.as_ref().unwrap();
        assert_eq!(net.links.len(), 1);
        assert_eq!(net.links[0].discipline, LinkDiscipline::FairShare);
        let cfg = sc.build_sim().unwrap();
        assert!(cfg.net.is_some());
        assert_eq!(cfg.agreement_changes.len(), 1);
        // The flash crowd split client 0's single phase into three parts.
        assert!(matches!(cfg.clients[0].cost, RequestCost::SizeDistributed { .. }));
    }

    #[test]
    fn plain_deployment_parses_as_scenario() {
        let plain = r#"{
            "principals": [{"name": "S", "capacity": 10.0}],
            "agreements": [],
            "clients": [{"principal": "S", "phases": [[5.0, 5.0]]}],
            "duration": 5.0
        }"#;
        let sc = ScenarioSpec::from_json(plain).unwrap();
        assert!(sc.net.is_none());
        assert!(sc.timeline.is_empty());
        assert_eq!(sc.seed, 0);
        let cfg = sc.build_sim().unwrap();
        assert!(cfg.net.is_none());
        assert!(matches!(cfg.clients[0].cost, RequestCost::Unit));
    }

    #[test]
    fn roundtrips_json() {
        let sc = ScenarioSpec::from_json(SCENARIO).unwrap();
        let again = ScenarioSpec::from_json(&sc.to_json()).unwrap();
        assert_eq!(sc, again);
    }

    #[test]
    fn scenario_run_is_seed_deterministic() {
        let sc = ScenarioSpec::from_json(SCENARIO).unwrap();
        let a = Simulation::new(sc.build_sim().unwrap()).run();
        let b = Simulation::new(sc.build_sim().unwrap()).run();
        assert!(a.outcome_eq(&b));
    }

    #[test]
    fn overlay_splits_and_extends() {
        // 10 s at 5 req/s; crowd over [4, 6) adds 20.
        let shaped = overlay(&[(10.0, 5.0)], 4.0, 6.0, |r| r + 20.0);
        assert_eq!(shaped, vec![(4.0, 5.0), (2.0, 25.0), (4.0, 5.0)]);
        // Crowd outlasting the schedule materializes the tail.
        let tail = overlay(&[(3.0, 5.0)], 2.0, 6.0, |r| r + 20.0);
        assert_eq!(tail, vec![(2.0, 5.0), (1.0, 25.0), (3.0, 20.0)]);
        // Multiplicative shaping past the end adds nothing (f(0) = 0).
        let mult = overlay(&[(3.0, 5.0)], 2.0, f64::INFINITY, |r| r * 3.0);
        assert_eq!(mult, vec![(2.0, 5.0), (1.0, 15.0)]);
    }

    #[test]
    fn diurnal_truncates_and_alternates() {
        let sc_text = SCENARIO.replace(
            r#"{"kind": "flash_crowd", "at": 10.0, "duration": 5.0, "client": 0, "extra_rate": 90.0}"#,
            r#"{"kind": "diurnal", "at": 10.0, "period": 8.0, "client": 0, "peak_rate": 80.0, "trough_rate": 10.0}"#,
        );
        let sc = ScenarioSpec::from_json(&sc_text).unwrap();
        let cfg = sc.build_sim().unwrap();
        // [0,10) base, then peak/trough half-periods of 4 s to 30 s.
        let machine = &cfg.clients[0].machine;
        let _ = machine; // phases live inside the load; run smoke below
        let report = Simulation::new(cfg).run();
        assert!(report.events_processed > 0);
    }

    #[test]
    fn unknown_client_index_rejected() {
        let bad = SCENARIO.replace("\"client\": 0", "\"client\": 9");
        let sc = ScenarioSpec::from_json(&bad).unwrap();
        assert!(matches!(sc.build_sim(), Err(SpecError::Scenario(_))));
    }

    #[test]
    fn link_count_mismatch_rejected() {
        let bad = SCENARIO.replace(
            r#""links": [{"rate_bytes_per_sec": 1.0e6, "discipline": "fair_share"}]"#,
            r#""links": [{"rate_bytes_per_sec": 1.0e6}, {"rate_bytes_per_sec": 1.0e6}]"#,
        );
        let sc = ScenarioSpec::from_json(&bad).unwrap();
        assert!(matches!(sc.build_sim(), Err(SpecError::Scenario(_))));
    }

    #[test]
    fn non_finite_link_rate_rejected_at_decode() {
        for bad_rate in ["1e999", "-5.0"] {
            let bad = SCENARIO.replace("1.0e6", bad_rate);
            assert!(
                matches!(ScenarioSpec::from_json(&bad), Err(SpecError::Json(_))),
                "rate {bad_rate} must fail decode"
            );
        }
        // Zero passes decode (finite, non-negative) but fails materialization.
        let zero = SCENARIO.replace("1.0e6", "0.0");
        let sc = ScenarioSpec::from_json(&zero).unwrap();
        assert!(matches!(sc.build_sim(), Err(SpecError::Scenario(_))));
    }

    #[test]
    fn out_of_order_timeline_decodes() {
        // Decode is permissive; ordering is the verifier's job (V9).
        let swapped = SCENARIO
            .replace("\"at\": 10.0", "\"at\": 25.0");
        let sc = ScenarioSpec::from_json(&swapped).unwrap();
        assert_eq!(sc.timeline[0].at(), 25.0);
        assert_eq!(sc.timeline[1].at(), 20.0);
    }

    #[test]
    fn fail_recover_schedules_capacity_changes() {
        let sc_text = SCENARIO.replace(
            r#"{"kind": "renegotiate", "at": 20.0, "issuer": "S", "holder": "B", "lb": 0.4, "ub": 1.0}"#,
            r#"{"kind": "server_fail", "at": 15.0, "principal": "S"},
               {"kind": "server_recover", "at": 20.0, "principal": "S"}"#,
        );
        let sc = ScenarioSpec::from_json(&sc_text).unwrap();
        let cfg = sc.build_sim().unwrap();
        assert_eq!(cfg.capacity_changes.len(), 2);
        assert_eq!(cfg.capacity_changes[0].capacity, 0.0);
        assert_eq!(cfg.capacity_changes[1].capacity, 100.0);
    }
}
