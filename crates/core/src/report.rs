//! Scenario result summarization and export.

use covenant_agreements::PrincipalId;
use covenant_enforce::EnforcementCounters;
use covenant_sim::SimReport;
use serde::Serialize;

/// Mean processing rates over one phase.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PhaseRates {
    /// Phase label.
    pub name: String,
    /// Phase start, seconds.
    pub start: f64,
    /// Phase end, seconds.
    pub end: f64,
    /// (principal display name, mean req/s) over the settled phase.
    pub rates: Vec<(String, f64)>,
}

impl PhaseRates {
    /// The rate of the named principal (panics if untracked).
    pub fn rate(&self, name: &str) -> f64 {
        self.rates
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| *r)
            .unwrap_or_else(|| panic!("principal {name} not tracked"))
    }
}

/// Engine and coordination counters of a simulator report as a JSON
/// object: event-loop performance profile (`events_processed`,
/// `peak_event_queue`, wall-clock `events_per_sec`), plan-cache
/// effectiveness, LP solver work (warm-basis reuse vs cold restarts,
/// pivot counts), and message/drop accounting. Shared by the CLI's
/// `run --json` output and any tooling that tracks engine health.
pub fn sim_counters_json(report: &SimReport) -> crate::json::Value {
    use crate::json::Value;
    Value::Obj(vec![
        ("events_processed".into(), (report.events_processed as f64).into()),
        ("peak_event_queue".into(), report.peak_event_queue.into()),
        ("events_per_sec".into(), report.events_per_sec().into()),
        ("plan_cache_hits".into(), (report.plan_cache_hits as f64).into()),
        ("plan_cache_misses".into(), (report.plan_cache_misses as f64).into()),
        ("plan_cache_evictions".into(), (report.plan_cache_evictions as f64).into()),
        ("lp_solves".into(), (report.lp_solves as f64).into()),
        ("lp_pivots".into(), (report.lp_pivots as f64).into()),
        ("lp_warm_hits".into(), (report.lp_warm_hits as f64).into()),
        ("lp_cold_fallbacks".into(), (report.lp_cold_fallbacks as f64).into()),
        ("tree_messages".into(), (report.tree_messages as f64).into()),
        (
            "pairwise_messages_equivalent".into(),
            (report.pairwise_messages_equivalent as f64).into(),
        ),
        ("dropped_server".into(), (report.dropped_server as f64).into()),
    ])
}

/// Live-deployment counterpart of [`sim_counters_json`]: one enforcement
/// core's counters (admission, parking, plan cache, LP work) as a JSON
/// object, plus `shed` — connections refused with RST at a hard cap
/// before they ever reached admission (the legacy L4 `live_limit` gate,
/// the sharded planes' connection/relay caps). Feed it
/// `AdmissionControl::counters_snapshot()` from a running redirector; the
/// shared shape lets the same tooling watch either a simulation or a live
/// control plane.
pub fn live_counters_json(counters: &EnforcementCounters, shed: u64) -> crate::json::Value {
    use crate::json::Value;
    Value::Obj(vec![
        ("admitted".into(), (counters.admitted as f64).into()),
        ("deferred".into(), (counters.deferred as f64).into()),
        ("parked".into(), (counters.parked as f64).into()),
        ("plan_cache_hits".into(), (counters.plan_cache_hits as f64).into()),
        ("plan_cache_misses".into(), (counters.plan_cache_misses as f64).into()),
        ("plan_cache_evictions".into(), (counters.plan_cache_evictions as f64).into()),
        ("lp_solves".into(), (counters.lp_solves as f64).into()),
        ("lp_pivots".into(), (counters.lp_pivots as f64).into()),
        ("lp_warm_hits".into(), (counters.lp_warm_hits as f64).into()),
        ("lp_cold_fallbacks".into(), (counters.lp_cold_fallbacks as f64).into()),
        ("shed".into(), (shed as f64).into()),
    ])
}

/// Sharded-data-plane counterpart of [`live_counters_json`]: merges the
/// per-shard snapshots of a reactor deployment into one payload. The
/// top-level fields are the familiar [`live_counters_json`] keys *summed
/// across shards* (so dashboards built for the single-core shape keep
/// working), plus `shards` (the shard count), the aggregate reactor
/// batching counters (`reactor_wakes`, `batched_verdicts`), and a
/// `per_shard` array retaining each shard's admission and batching
/// profile — the load-balance view the sum hides. `shed` is summed across
/// shards like the rest, so this payload carries exactly the
/// [`live_counters_json`] keys plus the sharding extras.
pub fn live_counters_sharded_json(shards: &[covenant_enforce::ShardSnapshot]) -> crate::json::Value {
    use crate::json::Value;
    let mut total = EnforcementCounters::default();
    let mut wakes = 0u64;
    let mut verdicts = 0u64;
    let mut shed = 0u64;
    for s in shards {
        let c = &s.counters;
        total.admitted += c.admitted;
        total.deferred += c.deferred;
        total.parked += c.parked;
        total.plan_cache_hits += c.plan_cache_hits;
        total.plan_cache_misses += c.plan_cache_misses;
        total.plan_cache_evictions += c.plan_cache_evictions;
        total.lp_solves += c.lp_solves;
        total.lp_pivots += c.lp_pivots;
        total.lp_warm_hits += c.lp_warm_hits;
        total.lp_cold_fallbacks += c.lp_cold_fallbacks;
        wakes += s.reactor_wakes;
        verdicts += s.batched_verdicts;
        shed += s.shed;
    }
    let Value::Obj(mut fields) = live_counters_json(&total, shed) else {
        unreachable!("live_counters_json returns an object");
    };
    fields.push(("shards".into(), (shards.len() as f64).into()));
    fields.push(("reactor_wakes".into(), (wakes as f64).into()));
    fields.push(("batched_verdicts".into(), (verdicts as f64).into()));
    fields.push((
        "per_shard".into(),
        Value::Arr(
            shards
                .iter()
                .map(|s| {
                    Value::Obj(vec![
                        ("admitted".into(), (s.counters.admitted as f64).into()),
                        ("deferred".into(), (s.counters.deferred as f64).into()),
                        ("parked".into(), (s.counters.parked as f64).into()),
                        ("lp_solves".into(), (s.counters.lp_solves as f64).into()),
                        ("reactor_wakes".into(), (s.reactor_wakes as f64).into()),
                        ("batched_verdicts".into(), (s.batched_verdicts as f64).into()),
                        ("shed".into(), (s.shed as f64).into()),
                    ])
                })
                .collect(),
        ),
    ));
    Value::Obj(fields)
}

/// The outcome of one figure scenario.
pub struct ScenarioOutcome {
    /// Scenario identifier ("fig6", …).
    pub id: &'static str,
    /// Per-phase summaries.
    pub phases: Vec<PhaseRates>,
    /// The raw simulator report (full time series, counters).
    pub report: SimReport,
    /// Tracked principals.
    pub tracked: Vec<(String, PrincipalId)>,
}

impl ScenarioOutcome {
    /// The full per-second time series as CSV (`time,<name>,rate` rows) —
    /// the data behind the paper's figure plot.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,principal,rate_req_s\n");
        for (name, p) in &self.tracked {
            for (t, r) in self.report.rates.series(*p) {
                out.push_str(&format!("{t},{name},{r}\n"));
            }
        }
        out
    }

    /// Per-phase summary as an aligned text table.
    pub fn phase_table(&self) -> String {
        let mut out = format!("{:<26}{:>12}", "phase", "window");
        for (name, _) in &self.tracked {
            out.push_str(&format!("{name:>10}"));
        }
        out.push('\n');
        for ph in &self.phases {
            out.push_str(&format!(
                "{:<26}{:>12}",
                ph.name,
                format!("{:.0}-{:.0}s", ph.start, ph.end)
            ));
            for (name, _) in &self.tracked {
                out.push_str(&format!("{:>10.1}", ph.rate(name)));
            }
            out.push('\n');
        }
        out
    }

    /// Per-phase summary serialized as JSON.
    pub fn phases_json(&self) -> String {
        use crate::json::Value;
        Value::Arr(
            self.phases
                .iter()
                .map(|ph| {
                    Value::Obj(vec![
                        ("name".into(), ph.name.as_str().into()),
                        ("start".into(), ph.start.into()),
                        ("end".into(), ph.end.into()),
                        (
                            "rates".into(),
                            Value::Arr(
                                ph.rates
                                    .iter()
                                    .map(|(n, r)| Value::Arr(vec![n.as_str().into(), (*r).into()]))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        )
        .to_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covenant_agreements::AgreementGraph;
    use covenant_sim::{SimConfig, Simulation};
    use covenant_workload::{ClientMachine, PhasedLoad};

    fn outcome() -> ScenarioOutcome {
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 50.0);
        let a = g.add_principal("A", 0.0);
        g.add_agreement(s, a, 0.5, 1.0).unwrap();
        let cfg = SimConfig::new(g, 5.0)
            .client(ClientMachine::uniform(0, a, PhasedLoad::constant(30.0, 5.0)), 0);
        let report = Simulation::new(cfg).run();
        let rate = report.rates.mean_rate_secs(a, 1.0, 5.0);
        ScenarioOutcome {
            id: "test",
            phases: vec![PhaseRates {
                name: "steady".into(),
                start: 0.0,
                end: 5.0,
                rates: vec![("A".into(), rate)],
            }],
            report,
            tracked: vec![("A".into(), a)],
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let o = outcome();
        let csv = o.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time_s,principal,rate_req_s"));
        let rows: Vec<&str> = lines.collect();
        assert!(rows.len() >= 4, "rows: {rows:?}");
        assert!(rows.iter().all(|r| r.split(',').count() == 3));
        assert!(rows.iter().all(|r| r.contains(",A,")));
    }

    #[test]
    fn phase_table_is_aligned_text() {
        let o = outcome();
        let table = o.phase_table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("phase"));
        assert!(lines[0].contains("A"));
        assert!(lines[1].starts_with("steady"));
    }

    #[test]
    fn phases_json_parses_back() {
        let o = outcome();
        let parsed = crate::json::Value::parse(&o.phases_json()).unwrap();
        assert_eq!(parsed[0]["name"], "steady");
        assert!(parsed[0]["rates"][0][1].as_f64().unwrap() > 20.0);
    }

    #[test]
    #[should_panic(expected = "not tracked")]
    fn rate_lookup_panics_on_unknown_name() {
        let o = outcome();
        let _ = o.phases[0].rate("nobody");
    }

    #[test]
    fn live_counters_json_roundtrips() {
        let counters = EnforcementCounters {
            admitted: 42,
            deferred: 7,
            parked: 3,
            plan_cache_hits: 90,
            plan_cache_misses: 10,
            plan_cache_evictions: 4,
            lp_solves: 10,
            lp_pivots: 25,
            lp_warm_hits: 8,
            lp_cold_fallbacks: 2,
        };
        let parsed =
            crate::json::Value::parse(&live_counters_json(&counters, 5).to_pretty()).unwrap();
        assert_eq!(parsed["admitted"].as_f64().unwrap(), 42.0);
        assert_eq!(parsed["deferred"].as_f64().unwrap(), 7.0);
        assert_eq!(parsed["parked"].as_f64().unwrap(), 3.0);
        assert_eq!(parsed["plan_cache_hits"].as_f64().unwrap(), 90.0);
        assert_eq!(parsed["plan_cache_evictions"].as_f64().unwrap(), 4.0);
        assert_eq!(parsed["lp_pivots"].as_f64().unwrap(), 25.0);
        assert_eq!(parsed["lp_warm_hits"].as_f64().unwrap(), 8.0);
        assert_eq!(parsed["lp_cold_fallbacks"].as_f64().unwrap(), 2.0);
        assert_eq!(parsed["shed"].as_f64().unwrap(), 5.0);
    }

    #[test]
    fn sharded_counters_sum_and_retain_per_shard_profile() {
        use covenant_enforce::ShardSnapshot;
        let shards = [
            ShardSnapshot {
                counters: EnforcementCounters {
                    admitted: 100,
                    deferred: 10,
                    lp_solves: 5,
                    ..Default::default()
                },
                reactor_wakes: 40,
                batched_verdicts: 110,
                shed: 4,
            },
            ShardSnapshot {
                counters: EnforcementCounters {
                    admitted: 60,
                    deferred: 30,
                    lp_solves: 5,
                    ..Default::default()
                },
                reactor_wakes: 20,
                batched_verdicts: 90,
                shed: 1,
            },
        ];
        let v = live_counters_sharded_json(&shards);
        let parsed = crate::json::Value::parse(&v.to_pretty()).unwrap();
        // Summed top level keeps the single-core payload shape.
        assert_eq!(parsed["admitted"].as_f64().unwrap(), 160.0);
        assert_eq!(parsed["deferred"].as_f64().unwrap(), 40.0);
        assert_eq!(parsed["lp_solves"].as_f64().unwrap(), 10.0);
        assert_eq!(parsed["shards"].as_f64().unwrap(), 2.0);
        assert_eq!(parsed["reactor_wakes"].as_f64().unwrap(), 60.0);
        assert_eq!(parsed["batched_verdicts"].as_f64().unwrap(), 200.0);
        assert_eq!(parsed["shed"].as_f64().unwrap(), 5.0);
        // Per-shard balance survives the merge.
        assert_eq!(parsed["per_shard"][0]["admitted"].as_f64().unwrap(), 100.0);
        assert_eq!(parsed["per_shard"][1]["admitted"].as_f64().unwrap(), 60.0);
        assert_eq!(parsed["per_shard"][1]["reactor_wakes"].as_f64().unwrap(), 20.0);
        assert_eq!(parsed["per_shard"][0]["shed"].as_f64().unwrap(), 4.0);
    }

    #[test]
    fn sim_counters_json_roundtrips() {
        let o = outcome();
        let v = sim_counters_json(&o.report);
        let parsed = crate::json::Value::parse(&v.to_pretty()).unwrap();
        assert!(parsed["events_processed"].as_f64().unwrap() > 100.0);
        assert!(parsed["peak_event_queue"].as_usize().unwrap() > 0);
        assert!(parsed["events_per_sec"].as_f64().unwrap() > 0.0);
        assert_eq!(
            parsed["plan_cache_hits"].as_f64().unwrap()
                + parsed["plan_cache_misses"].as_f64().unwrap(),
            (o.report.plan_cache_hits + o.report.plan_cache_misses) as f64
        );
        // The steady single-redirector scenario runs the LP and reuses the
        // previous window's basis after the first solve.
        assert!(parsed["lp_solves"].as_f64().unwrap() > 0.0);
        assert!(parsed["lp_warm_hits"].as_f64().unwrap() > 0.0);
        assert_eq!(parsed["lp_cold_fallbacks"].as_f64().unwrap(), 1.0);
        // The heap must be concurrency-bounded in this tiny scenario,
        // far below its ~150 total requests.
        assert!(parsed["peak_event_queue"].as_usize().unwrap() < 64);
    }
}
