//! Scenario result summarization and export.

use covenant_agreements::PrincipalId;
use covenant_enforce::{CountersReport, EnforcementCounters, EngineTotals, NetTotals, SolverTotals};
use covenant_sim::SimReport;
use serde::Serialize;

/// Mean processing rates over one phase.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PhaseRates {
    /// Phase label.
    pub name: String,
    /// Phase start, seconds.
    pub start: f64,
    /// Phase end, seconds.
    pub end: f64,
    /// (principal display name, mean req/s) over the settled phase.
    pub rates: Vec<(String, f64)>,
}

impl PhaseRates {
    /// The rate of the named principal (panics if untracked).
    pub fn rate(&self, name: &str) -> f64 {
        self.rates
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| *r)
            .unwrap_or_else(|| panic!("principal {name} not tracked"))
    }
}

/// The single JSON encoder behind every stack's counters payload. Section
/// key order is fixed so each legacy emitter's exact key sequence is
/// reproduced: engine prefix (`events_processed`, `peak_event_queue`,
/// `events_per_sec`), admission (`admitted`, `deferred`, `parked`), the
/// solver profile, engine suffix (`tree_messages`,
/// `pairwise_messages_equivalent`, `dropped_server`), the net section
/// (`net_*`), admission's `shed`, and finally the sharding section
/// (`shards`, `reactor_wakes`, `batched_verdicts`, `per_shard`). Sections
/// a stack did not populate are simply absent — no nulls, no placeholder
/// keys — so dashboards keyed on one stack's shape keep working.
pub fn counters_report_json(r: &CountersReport) -> crate::json::Value {
    use crate::json::Value;
    let mut fields: Vec<(String, Value)> = Vec::new();
    if let Some(e) = &r.engine {
        fields.push(("events_processed".into(), (e.events_processed as f64).into()));
        fields.push(("peak_event_queue".into(), e.peak_event_queue.into()));
        fields.push(("events_per_sec".into(), e.events_per_sec.into()));
    }
    if let Some(a) = &r.admission {
        fields.push(("admitted".into(), (a.admitted as f64).into()));
        fields.push(("deferred".into(), (a.deferred as f64).into()));
        fields.push(("parked".into(), (a.parked as f64).into()));
    }
    let s = &r.solver;
    fields.push(("plan_cache_hits".into(), (s.plan_cache_hits as f64).into()));
    fields.push(("plan_cache_misses".into(), (s.plan_cache_misses as f64).into()));
    fields.push(("plan_cache_evictions".into(), (s.plan_cache_evictions as f64).into()));
    fields.push(("lp_solves".into(), (s.lp_solves as f64).into()));
    fields.push(("lp_pivots".into(), (s.lp_pivots as f64).into()));
    fields.push(("lp_warm_hits".into(), (s.lp_warm_hits as f64).into()));
    fields.push(("lp_cold_fallbacks".into(), (s.lp_cold_fallbacks as f64).into()));
    if let Some(e) = &r.engine {
        fields.push(("tree_messages".into(), (e.tree_messages as f64).into()));
        fields.push((
            "pairwise_messages_equivalent".into(),
            (e.pairwise_messages_equivalent as f64).into(),
        ));
        fields.push(("dropped_server".into(), (e.dropped_server as f64).into()));
    }
    if let Some(n) = &r.net {
        fields.push(("net_transfers".into(), (n.transfers as f64).into()));
        fields.push(("net_bytes".into(), n.bytes.into()));
        fields.push(("net_peak_concurrent".into(), n.peak_concurrent.into()));
        fields.push(("net_mean_transfer_secs".into(), n.mean_transfer_secs.into()));
    }
    if let Some(a) = &r.admission {
        fields.push(("shed".into(), (a.shed as f64).into()));
    }
    if let Some(sh) = &r.sharding {
        fields.push(("shards".into(), (sh.per_shard.len() as f64).into()));
        fields.push(("reactor_wakes".into(), (sh.reactor_wakes as f64).into()));
        fields.push(("batched_verdicts".into(), (sh.batched_verdicts as f64).into()));
        fields.push((
            "per_shard".into(),
            Value::Arr(
                sh.per_shard
                    .iter()
                    .map(|s| {
                        Value::Obj(vec![
                            ("admitted".into(), (s.counters.admitted as f64).into()),
                            ("deferred".into(), (s.counters.deferred as f64).into()),
                            ("parked".into(), (s.counters.parked as f64).into()),
                            ("lp_solves".into(), (s.counters.lp_solves as f64).into()),
                            ("reactor_wakes".into(), (s.reactor_wakes as f64).into()),
                            ("batched_verdicts".into(), (s.batched_verdicts as f64).into()),
                            ("shed".into(), (s.shed as f64).into()),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    Value::Obj(fields)
}

/// The simulator's [`CountersReport`]: solver and engine sections from the
/// report's counters, plus a net section when the run carried replies over
/// shared links.
pub fn sim_counters(report: &SimReport) -> CountersReport {
    let net = if report.link_bytes.is_empty() {
        None
    } else {
        let transfers: u64 = report.transfer.iter().map(|t| t.count).sum();
        let total: f64 = report.transfer.iter().map(|t| t.total).sum();
        Some(NetTotals {
            transfers,
            bytes: report.link_bytes.iter().sum(),
            peak_concurrent: report.link_active_peak.iter().copied().max().unwrap_or(0),
            mean_transfer_secs: if transfers > 0 { total / transfers as f64 } else { 0.0 },
        })
    };
    CountersReport {
        solver: SolverTotals {
            plan_cache_hits: report.plan_cache_hits,
            plan_cache_misses: report.plan_cache_misses,
            plan_cache_evictions: report.plan_cache_evictions,
            lp_solves: report.lp_solves,
            lp_pivots: report.lp_pivots,
            lp_warm_hits: report.lp_warm_hits,
            lp_cold_fallbacks: report.lp_cold_fallbacks,
        },
        admission: None,
        engine: Some(EngineTotals {
            events_processed: report.events_processed,
            peak_event_queue: report.peak_event_queue,
            events_per_sec: report.events_per_sec(),
            tree_messages: report.tree_messages,
            pairwise_messages_equivalent: report.pairwise_messages_equivalent,
            dropped_server: report.dropped_server,
        }),
        net,
        sharding: None,
    }
}

/// The `covenant run --json` / `covenant sim --json` document: the run
/// duration, each principal's outcome (offered requests, settled service
/// rate over the final 80% of the run, deferrals, mean response time), and
/// the full [`counters_report_json`] payload. With `deterministic` set the
/// wall-clock `events_per_sec` figure is zeroed — every other field derives
/// from simulation time, so replaying the same spec and seed then yields
/// byte-identical text (the scenario determinism gate relies on this).
pub fn run_report_json(
    names: &[String],
    duration: f64,
    report: &SimReport,
    deterministic: bool,
) -> crate::json::Value {
    use crate::json::Value;
    let principals = Value::Arr(
        names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let id = PrincipalId(i);
                Value::Obj(vec![
                    ("name".into(), name.as_str().into()),
                    ("offered".into(), (report.offered[i] as f64).into()),
                    (
                        "served_per_sec".into(),
                        report.rates.mean_rate_secs(id, duration * 0.2, duration).into(),
                    ),
                    ("deferred".into(), (report.deferred[i] as f64).into()),
                    (
                        "mean_response_ms".into(),
                        (report.response[i].mean().unwrap_or(0.0) * 1000.0).into(),
                    ),
                ])
            })
            .collect(),
    );
    let mut counters = sim_counters(report);
    if deterministic {
        if let Some(e) = counters.engine.as_mut() {
            e.events_per_sec = 0.0;
        }
    }
    Value::Obj(vec![
        ("duration_s".into(), duration.into()),
        ("principals".into(), principals),
        ("counters".into(), counters_report_json(&counters)),
    ])
}

/// Engine and coordination counters of a simulator report as a JSON
/// object: event-loop performance profile (`events_processed`,
/// `peak_event_queue`, wall-clock `events_per_sec`), plan-cache
/// effectiveness, LP solver work (warm-basis reuse vs cold restarts,
/// pivot counts), message/drop accounting, and — when the run modeled
/// shared links — the `net_*` transfer profile. Shared by the CLI's
/// `run --json` output and any tooling that tracks engine health.
pub fn sim_counters_json(report: &SimReport) -> crate::json::Value {
    counters_report_json(&sim_counters(report))
}

/// Live-deployment counterpart of [`sim_counters_json`]: one enforcement
/// core's counters (admission, parking, plan cache, LP work) as a JSON
/// object, plus `shed` — connections refused with RST at a hard cap
/// before they ever reached admission (the legacy L4 `live_limit` gate,
/// the sharded planes' connection/relay caps). Feed it
/// `AdmissionControl::counters_snapshot()` from a running redirector; the
/// shared shape lets the same tooling watch either a simulation or a live
/// control plane.
pub fn live_counters_json(counters: &EnforcementCounters, shed: u64) -> crate::json::Value {
    counters_report_json(&CountersReport::live(counters, shed))
}

/// Sharded-data-plane counterpart of [`live_counters_json`]: merges the
/// per-shard snapshots of a reactor deployment into one payload. The
/// top-level fields are the familiar [`live_counters_json`] keys *summed
/// across shards* (so dashboards built for the single-core shape keep
/// working), plus `shards` (the shard count), the aggregate reactor
/// batching counters (`reactor_wakes`, `batched_verdicts`), and a
/// `per_shard` array retaining each shard's admission and batching
/// profile — the load-balance view the sum hides. `shed` is summed across
/// shards like the rest, so this payload carries exactly the
/// [`live_counters_json`] keys plus the sharding extras.
pub fn live_counters_sharded_json(shards: &[covenant_enforce::ShardSnapshot]) -> crate::json::Value {
    counters_report_json(&CountersReport::sharded(shards))
}

/// The outcome of one figure scenario.
pub struct ScenarioOutcome {
    /// Scenario identifier ("fig6", …).
    pub id: &'static str,
    /// Per-phase summaries.
    pub phases: Vec<PhaseRates>,
    /// The raw simulator report (full time series, counters).
    pub report: SimReport,
    /// Tracked principals.
    pub tracked: Vec<(String, PrincipalId)>,
}

impl ScenarioOutcome {
    /// The full per-second time series as CSV (`time,<name>,rate` rows) —
    /// the data behind the paper's figure plot.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,principal,rate_req_s\n");
        for (name, p) in &self.tracked {
            for (t, r) in self.report.rates.series(*p) {
                out.push_str(&format!("{t},{name},{r}\n"));
            }
        }
        out
    }

    /// Per-phase summary as an aligned text table.
    pub fn phase_table(&self) -> String {
        let mut out = format!("{:<26}{:>12}", "phase", "window");
        for (name, _) in &self.tracked {
            out.push_str(&format!("{name:>10}"));
        }
        out.push('\n');
        for ph in &self.phases {
            out.push_str(&format!(
                "{:<26}{:>12}",
                ph.name,
                format!("{:.0}-{:.0}s", ph.start, ph.end)
            ));
            for (name, _) in &self.tracked {
                out.push_str(&format!("{:>10.1}", ph.rate(name)));
            }
            out.push('\n');
        }
        out
    }

    /// Per-phase summary serialized as JSON.
    pub fn phases_json(&self) -> String {
        use crate::json::Value;
        Value::Arr(
            self.phases
                .iter()
                .map(|ph| {
                    Value::Obj(vec![
                        ("name".into(), ph.name.as_str().into()),
                        ("start".into(), ph.start.into()),
                        ("end".into(), ph.end.into()),
                        (
                            "rates".into(),
                            Value::Arr(
                                ph.rates
                                    .iter()
                                    .map(|(n, r)| Value::Arr(vec![n.as_str().into(), (*r).into()]))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        )
        .to_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covenant_agreements::AgreementGraph;
    use covenant_sim::{SimConfig, Simulation};
    use covenant_workload::{ClientMachine, PhasedLoad};

    fn outcome() -> ScenarioOutcome {
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 50.0);
        let a = g.add_principal("A", 0.0);
        g.add_agreement(s, a, 0.5, 1.0).unwrap();
        let cfg = SimConfig::new(g, 5.0)
            .client(ClientMachine::uniform(0, a, PhasedLoad::constant(30.0, 5.0)), 0);
        let report = Simulation::new(cfg).run();
        let rate = report.rates.mean_rate_secs(a, 1.0, 5.0);
        ScenarioOutcome {
            id: "test",
            phases: vec![PhaseRates {
                name: "steady".into(),
                start: 0.0,
                end: 5.0,
                rates: vec![("A".into(), rate)],
            }],
            report,
            tracked: vec![("A".into(), a)],
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let o = outcome();
        let csv = o.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time_s,principal,rate_req_s"));
        let rows: Vec<&str> = lines.collect();
        assert!(rows.len() >= 4, "rows: {rows:?}");
        assert!(rows.iter().all(|r| r.split(',').count() == 3));
        assert!(rows.iter().all(|r| r.contains(",A,")));
    }

    #[test]
    fn phase_table_is_aligned_text() {
        let o = outcome();
        let table = o.phase_table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("phase"));
        assert!(lines[0].contains("A"));
        assert!(lines[1].starts_with("steady"));
    }

    #[test]
    fn phases_json_parses_back() {
        let o = outcome();
        let parsed = crate::json::Value::parse(&o.phases_json()).unwrap();
        assert_eq!(parsed[0]["name"], "steady");
        assert!(parsed[0]["rates"][0][1].as_f64().unwrap() > 20.0);
    }

    #[test]
    #[should_panic(expected = "not tracked")]
    fn rate_lookup_panics_on_unknown_name() {
        let o = outcome();
        let _ = o.phases[0].rate("nobody");
    }

    #[test]
    fn live_counters_json_roundtrips() {
        let counters = EnforcementCounters {
            admitted: 42,
            deferred: 7,
            parked: 3,
            plan_cache_hits: 90,
            plan_cache_misses: 10,
            plan_cache_evictions: 4,
            lp_solves: 10,
            lp_pivots: 25,
            lp_warm_hits: 8,
            lp_cold_fallbacks: 2,
        };
        let parsed =
            crate::json::Value::parse(&live_counters_json(&counters, 5).to_pretty()).unwrap();
        assert_eq!(parsed["admitted"].as_f64().unwrap(), 42.0);
        assert_eq!(parsed["deferred"].as_f64().unwrap(), 7.0);
        assert_eq!(parsed["parked"].as_f64().unwrap(), 3.0);
        assert_eq!(parsed["plan_cache_hits"].as_f64().unwrap(), 90.0);
        assert_eq!(parsed["plan_cache_evictions"].as_f64().unwrap(), 4.0);
        assert_eq!(parsed["lp_pivots"].as_f64().unwrap(), 25.0);
        assert_eq!(parsed["lp_warm_hits"].as_f64().unwrap(), 8.0);
        assert_eq!(parsed["lp_cold_fallbacks"].as_f64().unwrap(), 2.0);
        assert_eq!(parsed["shed"].as_f64().unwrap(), 5.0);
    }

    #[test]
    fn sharded_counters_sum_and_retain_per_shard_profile() {
        use covenant_enforce::ShardSnapshot;
        let shards = [
            ShardSnapshot {
                counters: EnforcementCounters {
                    admitted: 100,
                    deferred: 10,
                    lp_solves: 5,
                    ..Default::default()
                },
                reactor_wakes: 40,
                batched_verdicts: 110,
                shed: 4,
            },
            ShardSnapshot {
                counters: EnforcementCounters {
                    admitted: 60,
                    deferred: 30,
                    lp_solves: 5,
                    ..Default::default()
                },
                reactor_wakes: 20,
                batched_verdicts: 90,
                shed: 1,
            },
        ];
        let v = live_counters_sharded_json(&shards);
        let parsed = crate::json::Value::parse(&v.to_pretty()).unwrap();
        // Summed top level keeps the single-core payload shape.
        assert_eq!(parsed["admitted"].as_f64().unwrap(), 160.0);
        assert_eq!(parsed["deferred"].as_f64().unwrap(), 40.0);
        assert_eq!(parsed["lp_solves"].as_f64().unwrap(), 10.0);
        assert_eq!(parsed["shards"].as_f64().unwrap(), 2.0);
        assert_eq!(parsed["reactor_wakes"].as_f64().unwrap(), 60.0);
        assert_eq!(parsed["batched_verdicts"].as_f64().unwrap(), 200.0);
        assert_eq!(parsed["shed"].as_f64().unwrap(), 5.0);
        // Per-shard balance survives the merge.
        assert_eq!(parsed["per_shard"][0]["admitted"].as_f64().unwrap(), 100.0);
        assert_eq!(parsed["per_shard"][1]["admitted"].as_f64().unwrap(), 60.0);
        assert_eq!(parsed["per_shard"][1]["reactor_wakes"].as_f64().unwrap(), 20.0);
        assert_eq!(parsed["per_shard"][0]["shed"].as_f64().unwrap(), 4.0);
    }

    /// The object's key sequence (payload schema, order-sensitive).
    fn keys(v: &crate::json::Value) -> Vec<String> {
        match v {
            crate::json::Value::Obj(fields) => fields.iter().map(|(k, _)| k.clone()).collect(),
            other => panic!("expected object, got {other:?}"),
        }
    }

    const SOLVER_KEYS: [&str; 7] = [
        "plan_cache_hits",
        "plan_cache_misses",
        "plan_cache_evictions",
        "lp_solves",
        "lp_pivots",
        "lp_warm_hits",
        "lp_cold_fallbacks",
    ];

    #[test]
    fn counters_schemas_agree_across_stacks() {
        use covenant_enforce::ShardSnapshot;
        let o = outcome();
        let sim = keys(&sim_counters_json(&o.report));
        let live = keys(&live_counters_json(&EnforcementCounters::default(), 0));
        let sharded = keys(&live_counters_sharded_json(&[ShardSnapshot::default()]));
        // The solver section appears verbatim — same keys, same order — in
        // every stack's payload (single encoder, schemas cannot drift).
        for stack in [&sim, &live, &sharded] {
            let at = stack
                .iter()
                .position(|k| k == SOLVER_KEYS[0])
                .expect("solver section present");
            assert_eq!(&stack[at..at + SOLVER_KEYS.len()], &SOLVER_KEYS);
        }
        // The sharded payload is the live payload plus sharding extras.
        assert_eq!(&sharded[..live.len()], &live[..]);
        assert_eq!(&sharded[live.len()..], ["shards", "reactor_wakes", "batched_verdicts", "per_shard"]);
        // Each wrapper still emits its exact legacy key set.
        let mut want_live = vec!["admitted", "deferred", "parked"];
        want_live.extend(SOLVER_KEYS);
        want_live.push("shed");
        assert_eq!(live, want_live);
        let mut want_sim = vec!["events_processed", "peak_event_queue", "events_per_sec"];
        want_sim.extend(SOLVER_KEYS);
        want_sim.extend(["tree_messages", "pairwise_messages_equivalent", "dropped_server"]);
        assert_eq!(sim, want_sim);
    }

    #[test]
    fn sim_counters_gain_net_section_under_link_model() {
        use covenant_sim::{LinkDiscipline, NetModelCfg};
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 50.0);
        let a = g.add_principal("A", 0.0);
        g.add_agreement(s, a, 0.5, 1.0).unwrap();
        let cfg = SimConfig::new(g, 5.0)
            .client(ClientMachine::uniform(0, a, PhasedLoad::constant(30.0, 5.0)), 0)
            .with_net(NetModelCfg::uniform(1, 1.0e6, LinkDiscipline::Fifo));
        let report = Simulation::new(cfg).run();
        let v = sim_counters_json(&report);
        let parsed = crate::json::Value::parse(&v.to_pretty()).unwrap();
        assert!(parsed["net_transfers"].as_f64().unwrap() > 0.0);
        assert!(parsed["net_bytes"].as_f64().unwrap() > 0.0);
        assert!(parsed["net_peak_concurrent"].as_usize().unwrap() >= 1);
        assert!(parsed["net_mean_transfer_secs"].as_f64().unwrap() > 0.0);
        // The net section slots in before `shed` would go, after the
        // engine suffix — the no-net schema is untouched otherwise.
        let ks = keys(&v);
        let mut want = vec!["events_processed", "peak_event_queue", "events_per_sec"];
        want.extend(SOLVER_KEYS);
        want.extend(["tree_messages", "pairwise_messages_equivalent", "dropped_server"]);
        want.extend(["net_transfers", "net_bytes", "net_peak_concurrent", "net_mean_transfer_secs"]);
        assert_eq!(ks, want);
    }

    #[test]
    fn sim_counters_json_roundtrips() {
        let o = outcome();
        let v = sim_counters_json(&o.report);
        let parsed = crate::json::Value::parse(&v.to_pretty()).unwrap();
        assert!(parsed["events_processed"].as_f64().unwrap() > 100.0);
        assert!(parsed["peak_event_queue"].as_usize().unwrap() > 0);
        assert!(parsed["events_per_sec"].as_f64().unwrap() > 0.0);
        assert_eq!(
            parsed["plan_cache_hits"].as_f64().unwrap()
                + parsed["plan_cache_misses"].as_f64().unwrap(),
            (o.report.plan_cache_hits + o.report.plan_cache_misses) as f64
        );
        // The steady single-redirector scenario runs the LP and reuses the
        // previous window's basis after the first solve.
        assert!(parsed["lp_solves"].as_f64().unwrap() > 0.0);
        assert!(parsed["lp_warm_hits"].as_f64().unwrap() > 0.0);
        assert_eq!(parsed["lp_cold_fallbacks"].as_f64().unwrap(), 1.0);
        // The heap must be concurrency-bounded in this tiny scenario,
        // far below its ~150 total requests.
        assert!(parsed["peak_event_queue"].as_usize().unwrap() < 64);
    }
}
