//! Minimal JSON value model, parser, and pretty printer.
//!
//! The workspace builds offline without `serde_json`; this module covers
//! the subset the deployment-spec and report paths need: full JSON
//! parsing into a [`Value`] tree, indexed access (`v[0]["name"]`), typed
//! accessors, and pretty serialization.

use std::fmt;
use std::ops::Index;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        Spanned::parse(text).map(Spanned::into_value)
    }

    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view (rejects non-integral numbers and negatives).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            // Integrality test: fract() of an integral f64 is exactly 0.
            // covenant: allow(float-eq)
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => out.push_str(&format_number(*n)),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Arr(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_pretty())
    }
}

/// A JSON value annotated with the 1-based line and column of its first
/// character, so diagnostics can point back into the source text.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// 1-based source line of the value's first character.
    pub line: u32,
    /// 1-based byte column within that line.
    pub col: u32,
    /// The value itself.
    pub node: Node,
}

/// The value alternatives of a [`Spanned`] tree; mirrors [`Value`] with
/// positioned children.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array of positioned values.
    Arr(Vec<Spanned>),
    /// An object; insertion order is preserved, values positioned.
    Obj(Vec<(String, Spanned)>),
}

impl Spanned {
    /// Parses a JSON document, recording the position of every value.
    pub fn parse(text: &str) -> Result<Spanned, JsonError> {
        let mut p =
            Parser { bytes: text.as_bytes(), pos: 0, scanned: 0, line: 1, line_start: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Spanned> {
        match &self.node {
            Node::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup; `None` for non-arrays or out-of-range indices.
    pub fn item(&self, i: usize) -> Option<&Spanned> {
        match &self.node {
            Node::Arr(items) => items.get(i),
            _ => None,
        }
    }

    /// The value's source position as a `(line, col)` pair.
    pub fn pos(&self) -> (u32, u32) {
        (self.line, self.col)
    }

    /// Strips positions, yielding the plain [`Value`] tree.
    pub fn into_value(self) -> Value {
        match self.node {
            Node::Null => Value::Null,
            Node::Bool(b) => Value::Bool(b),
            Node::Num(n) => Value::Num(n),
            Node::Str(s) => Value::Str(s),
            Node::Arr(items) => {
                Value::Arr(items.into_iter().map(Spanned::into_value).collect())
            }
            Node::Obj(fields) => {
                Value::Obj(fields.into_iter().map(|(k, v)| (k, v.into_value())).collect())
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn format_number(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no Inf/NaN; clamp like serde_json's lossy modes do not —
        // emit null so the output stays parseable.
        return "null".to_string();
    }
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{:.1}", n)
    } else {
        format!("{}", n)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse (or shape) error.
#[derive(Debug, Clone)]
pub struct JsonError {
    msg: String,
    /// 1-based (line, column) of the error, when raised by the parser.
    pos: Option<(u32, u32)>,
}

impl JsonError {
    /// A shape/validation error not tied to a source position.
    pub fn msg<S: Into<String>>(msg: S) -> Self {
        JsonError { msg: msg.into(), pos: None }
    }

    /// The error's 1-based `(line, col)` source position, when known.
    pub fn position(&self) -> Option<(u32, u32)> {
        self.pos
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some((l, c)) => write!(f, "{} at line {l} column {c}", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Bytes already checked for newlines by [`Parser::mark`].
    scanned: usize,
    /// 1-based line of the byte at `scanned`.
    line: u32,
    /// Byte offset where `line` starts.
    line_start: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        // Cold path: recompute the position from scratch so `err` can take
        // `&self` from any context.
        let mut line = 1u32;
        let mut line_start = 0usize;
        for (i, b) in self.bytes.iter().take(self.pos).enumerate() {
            if *b == b'\n' {
                line += 1;
                line_start = i + 1;
            }
        }
        let col = (self.pos - line_start + 1) as u32;
        JsonError { msg: msg.to_string(), pos: Some((line, col)) }
    }

    /// Advances the newline scanner to `self.pos` and returns the 1-based
    /// (line, column) of the byte there. Positions are only ever requested
    /// at monotonically increasing offsets, so the scan is linear overall.
    fn mark(&mut self) -> (u32, u32) {
        while self.scanned < self.pos {
            if self.bytes[self.scanned] == b'\n' {
                self.line += 1;
                self.line_start = self.scanned + 1;
            }
            self.scanned += 1;
        }
        (self.line, (self.pos - self.line_start + 1) as u32)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, node: Node) -> Result<Node, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(node)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Spanned, JsonError> {
        let (line, col) = self.mark();
        let node = match self.peek() {
            None => return Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Node::Null)?,
            Some(b't') => self.literal("true", Node::Bool(true))?,
            Some(b'f') => self.literal("false", Node::Bool(false))?,
            Some(b'"') => Node::Str(self.string()?),
            Some(b'[') => self.array()?,
            Some(b'{') => self.object()?,
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number()?,
            Some(c) => {
                return Err(self.err(&format!("unexpected character '{}'", c as char)))
            }
        };
        Ok(Spanned { line, col, node })
    }

    fn array(&mut self) -> Result<Node, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Node::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Node::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Node, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Node::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Node::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for this
                            // workspace's specs; map lone surrogates to the
                            // replacement character instead of failing.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    self.pos += c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Node, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Node::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = Value::parse(
            r#"{"a": [1, 2.5, null, true], "b": {"c": "x\ny"}, "d": -3e2}"#,
        )
        .unwrap();
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert!(v["a"][2].is_null());
        assert_eq!(v["a"][3].as_bool(), Some(true));
        assert_eq!(v["b"]["c"].as_str(), Some("x\ny"));
        assert_eq!(v["d"].as_f64(), Some(-300.0));
        // Out-of-range indexing degrades to null rather than panicking.
        assert!(v["a"][99].is_null());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn pretty_output_round_trips() {
        let src = r#"{"name": "steady", "rates": [["A", 31.5]], "empty": [], "flag": false}"#;
        let v = Value::parse(src).unwrap();
        let again = Value::parse(&v.to_pretty()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(Value::Num(20.0).to_pretty(), "20.0");
        assert_eq!(Value::Num(0.25).to_pretty(), "0.25");
    }

    #[test]
    fn string_equality_against_str() {
        let v = Value::parse(r#"{"name": "steady"}"#).unwrap();
        assert_eq!(v["name"], "steady");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "nulL", "1 2"] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escapes_survive_round_trip() {
        let v = Value::Str("quote \" slash \\ tab \t".into());
        let again = Value::parse(&v.to_pretty()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn spanned_values_carry_line_and_column() {
        let src = "{\n  \"a\": [1,\n    2.5],\n  \"b\": true\n}";
        let s = Spanned::parse(src).unwrap();
        assert_eq!(s.pos(), (1, 1));
        let a = s.get("a").unwrap();
        assert_eq!(a.pos(), (2, 8));
        assert_eq!(a.item(0).unwrap().pos(), (2, 9));
        assert_eq!(a.item(1).unwrap().pos(), (3, 5));
        assert_eq!(s.get("b").unwrap().pos(), (4, 8));
        // Missing keys and out-of-range items degrade to None.
        assert!(s.get("missing").is_none());
        assert!(a.item(9).is_none());
    }

    #[test]
    fn spanned_strips_to_the_same_value_tree() {
        let src = r#"{"a": [1, 2.5, null, true], "b": {"c": "x"}, "d": -3e2}"#;
        let spanned = Spanned::parse(src).unwrap();
        assert_eq!(spanned.into_value(), Value::parse(src).unwrap());
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        let err = Value::parse("{\n  \"a\": nulL\n}").unwrap_err();
        assert_eq!(err.position(), Some((2, 8)));
        assert!(err.to_string().contains("line 2 column 8"), "{err}");
        assert!(JsonError::msg("shape").position().is_none());
    }
}
