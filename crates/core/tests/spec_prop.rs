//! Property test: the deployment-spec JSON encoder and decoder are exact
//! inverses. Numbers are printed shortest-roundtrip, so any spec that
//! passes decode validation (finite, non-negative numerics) must survive
//! encode → decode bit-for-bit.

use covenant_core::spec::{
    AgreementSpec, ClientSpec, DeploymentSpec, PolicySpec, PrincipalSpec, QueueModeSpec,
};
use proptest::collection::vec;
use proptest::prelude::*;

fn policy_strategy() -> impl Strategy<Value = PolicySpec> {
    (0usize..3, vec(0.0..1000.0f64, 0..4)).prop_map(|(kind, xs)| match kind {
        0 => PolicySpec::Community,
        1 => PolicySpec::CommunityWithLocality { caps: xs },
        _ => PolicySpec::Provider { prices: xs },
    })
}

fn queue_strategy() -> impl Strategy<Value = QueueModeSpec> {
    (0usize..3, 0.0..1.0f64).prop_map(|(kind, delay)| match kind {
        0 => QueueModeSpec::Explicit,
        1 => QueueModeSpec::CreditRetry { retry_delay: delay },
        _ => QueueModeSpec::CreditPark,
    })
}

/// A client referencing one of `n` generated principals by index.
fn client_strategy(n: usize) -> impl Strategy<Value = ClientSpec> {
    (
        0..n,
        0usize..8,
        vec((0.0..100.0f64, 0.0..5000.0f64), 1..4),
        any::<bool>(),
        1usize..256,
    )
        .prop_map(|(p, redirector, phases, closed_loop, max)| ClientSpec {
            principal: format!("P{p}"),
            redirector,
            phases,
            max_outstanding: closed_loop.then_some(max),
        })
}

fn spec_strategy() -> impl Strategy<Value = DeploymentSpec> {
    (1usize..5).prop_flat_map(|n| {
        let principals = vec(0.0..1000.0f64, n);
        let agreements = vec((0..n, 0..n, 0.0..0.5f64, 0.5..1.0f64), 0..5);
        let tree = vec((any::<bool>(), 0..n), 0..4);
        let scalars = (0.0..0.2f64, 0.0..0.2f64, 0.001..10.0f64, 0.1..100.0f64);
        let rest = (
            policy_strategy(),
            queue_strategy(),
            vec(client_strategy(n), 0..3),
            vec(0usize..7, 0..3),
        );
        (principals, agreements, tree, scalars, rest).prop_map(
            |(caps, ags, tree, (delay, lag, window, duration), (policy, queue, clients, allow))| {
                DeploymentSpec {
                    principals: caps
                        .iter()
                        .enumerate()
                        .map(|(i, &c)| PrincipalSpec { name: format!("P{i}"), capacity: c })
                        .collect(),
                    agreements: ags
                        .into_iter()
                        .map(|(i, j, lb, ub)| AgreementSpec {
                            issuer: format!("P{i}"),
                            holder: format!("P{j}"),
                            lb,
                            ub,
                        })
                        .collect(),
                    redirector_tree: tree
                        .into_iter()
                        .map(|(is_child, p)| is_child.then_some(p))
                        .collect(),
                    tree_edge_delay: delay,
                    extra_tree_lag: lag,
                    policy,
                    window_secs: window,
                    queue_mode: queue,
                    clients,
                    duration,
                    allow: allow.into_iter().map(|i| format!("V{}", i + 1)).collect(),
                }
            },
        )
    })
}

proptest! {
    /// Encode → decode returns the identical spec, floats included.
    #[test]
    fn deployment_spec_json_roundtrip(spec in spec_strategy()) {
        let json = spec.to_json();
        let back = DeploymentSpec::from_json(&json)
            .unwrap_or_else(|e| panic!("encoded spec must decode: {e}\n{json}"));
        prop_assert_eq!(spec, back);
    }
}
