//! Property tests: the spec JSON encoders and decoders are exact
//! inverses. Numbers are printed shortest-roundtrip, so any spec that
//! passes decode validation (finite, non-negative numerics) must survive
//! encode → decode bit-for-bit. The scenario extension rides the same
//! contract: `ScenarioSpec` roundtrips net/timeline/seed exactly, the
//! decoder rejects non-finite and negative link rates, and out-of-order
//! timelines — which decode permissively — always trip verifier rule V9.

use covenant_core::scenario::{LinkSpec, NetSpec, ScenarioSpec, TimelineEvent};
use covenant_core::spec::{
    AgreementSpec, ClientSpec, DeploymentSpec, PolicySpec, PrincipalSpec, QueueModeSpec,
};
use covenant_sim::LinkDiscipline;
use proptest::collection::vec;
use proptest::prelude::*;

fn policy_strategy() -> impl Strategy<Value = PolicySpec> {
    (0usize..3, vec(0.0..1000.0f64, 0..4)).prop_map(|(kind, xs)| match kind {
        0 => PolicySpec::Community,
        1 => PolicySpec::CommunityWithLocality { caps: xs },
        _ => PolicySpec::Provider { prices: xs },
    })
}

fn queue_strategy() -> impl Strategy<Value = QueueModeSpec> {
    (0usize..3, 0.0..1.0f64).prop_map(|(kind, delay)| match kind {
        0 => QueueModeSpec::Explicit,
        1 => QueueModeSpec::CreditRetry { retry_delay: delay },
        _ => QueueModeSpec::CreditPark,
    })
}

/// A client referencing one of `n` generated principals by index.
fn client_strategy(n: usize) -> impl Strategy<Value = ClientSpec> {
    (
        0..n,
        0usize..8,
        vec((0.0..100.0f64, 0.0..5000.0f64), 1..4),
        any::<bool>(),
        1usize..256,
    )
        .prop_map(|(p, redirector, phases, closed_loop, max)| ClientSpec {
            principal: format!("P{p}"),
            redirector,
            phases,
            max_outstanding: closed_loop.then_some(max),
        })
}

fn spec_strategy() -> impl Strategy<Value = DeploymentSpec> {
    (1usize..5).prop_flat_map(|n| {
        let principals = vec(0.0..1000.0f64, n);
        let agreements = vec((0..n, 0..n, 0.0..0.5f64, 0.5..1.0f64), 0..5);
        let tree = vec((any::<bool>(), 0..n), 0..4);
        let scalars = (0.0..0.2f64, 0.0..0.2f64, 0.001..10.0f64, 0.1..100.0f64);
        let rest = (
            policy_strategy(),
            queue_strategy(),
            vec(client_strategy(n), 0..3),
            vec(0usize..7, 0..3),
        );
        (principals, agreements, tree, scalars, rest).prop_map(
            |(caps, ags, tree, (delay, lag, window, duration), (policy, queue, clients, allow))| {
                DeploymentSpec {
                    principals: caps
                        .iter()
                        .enumerate()
                        .map(|(i, &c)| PrincipalSpec { name: format!("P{i}"), capacity: c })
                        .collect(),
                    agreements: ags
                        .into_iter()
                        .map(|(i, j, lb, ub)| AgreementSpec {
                            issuer: format!("P{i}"),
                            holder: format!("P{j}"),
                            lb,
                            ub,
                        })
                        .collect(),
                    redirector_tree: tree
                        .into_iter()
                        .map(|(is_child, p)| is_child.then_some(p))
                        .collect(),
                    tree_edge_delay: delay,
                    extra_tree_lag: lag,
                    policy,
                    window_secs: window,
                    queue_mode: queue,
                    clients,
                    duration,
                    allow: allow.into_iter().map(|i| format!("V{}", i + 1)).collect(),
                }
            },
        )
    })
}

proptest! {
    /// Encode → decode returns the identical spec, floats included.
    #[test]
    fn deployment_spec_json_roundtrip(spec in spec_strategy()) {
        let json = spec.to_json();
        let back = DeploymentSpec::from_json(&json)
            .unwrap_or_else(|e| panic!("encoded spec must decode: {e}\n{json}"));
        prop_assert_eq!(spec, back);
    }
}

fn link_strategy() -> impl Strategy<Value = LinkSpec> {
    (1.0..1.0e9f64, any::<bool>()).prop_map(|(rate, fair)| LinkSpec {
        rate_bytes_per_sec: rate,
        discipline: if fair { LinkDiscipline::FairShare } else { LinkDiscipline::Fifo },
    })
}

fn net_strategy() -> impl Strategy<Value = NetSpec> {
    (vec(link_strategy(), 1..4), 1.0..1.0e5f64, 0.0..0.1f64).prop_map(
        |(links, unit_bytes, hop_latency)| NetSpec { links, unit_bytes, hop_latency },
    )
}

/// All seven event kinds from one flat draw: `kind` selects the variant,
/// the shared fields are reinterpreted per kind.
fn event_strategy() -> impl Strategy<Value = TimelineEvent> {
    (
        0usize..7,
        0.0..100.0f64,
        (0.1..50.0f64, 0.0..500.0f64, 0.0..1.0f64),
        (0usize..4, 0usize..4),
        any::<bool>(),
    )
        .prop_map(|(kind, at, (a, b, c), (x, y), flag)| match kind {
            0 => TimelineEvent::FlashCrowd { at, duration: a, client: x, extra_rate: b },
            1 => TimelineEvent::Diurnal {
                at,
                period: a,
                client: x,
                peak_rate: b,
                trough_rate: c * 100.0,
            },
            2 => TimelineEvent::Renegotiate {
                at,
                issuer: format!("P{x}"),
                holder: format!("P{y}"),
                lb: c * 0.5,
                ub: 0.5 + c * 0.49,
            },
            3 => TimelineEvent::ServerFail { at, principal: format!("P{x}") },
            4 => TimelineEvent::ServerRecover {
                at,
                principal: format!("P{x}"),
                capacity: flag.then_some(b * 2.0),
            },
            5 => TimelineEvent::Inflate { at, client: x, factor: c * 16.0 },
            _ => TimelineEvent::RestartRedirector { at, redirector: x },
        })
}

fn scenario_strategy() -> impl Strategy<Value = ScenarioSpec> {
    (
        spec_strategy(),
        (any::<bool>(), net_strategy()),
        vec(event_strategy(), 0..5),
        0usize..1_000_000,
    )
        .prop_map(|(deployment, (has_net, net), timeline, seed)| ScenarioSpec {
            deployment,
            net: has_net.then_some(net),
            timeline,
            seed: seed as u64,
        })
}

proptest! {
    /// Encode → decode returns the identical scenario: the deployment
    /// keys plus net links, the full timeline (order preserved verbatim),
    /// and the seed.
    #[test]
    fn scenario_spec_json_roundtrip(sc in scenario_strategy()) {
        let json = sc.to_json();
        let back = ScenarioSpec::from_json(&json)
            .unwrap_or_else(|e| panic!("encoded scenario must decode: {e}\n{json}"));
        prop_assert_eq!(sc, back);
    }

    /// Non-finite and negative link rates never survive decode, no matter
    /// how the rest of the scenario looks.
    #[test]
    fn bad_link_rates_rejected_at_decode(sc in scenario_strategy(), mag in 0.0..1.0e6f64, kind in 0usize..3) {
        let bad_rate = match kind {
            0 => "1e999".to_string(),          // overflows to +inf
            1 => "-1e999".to_string(),         // overflows to -inf
            _ => format!("-{}", mag + 0.125),  // plain negative
        };
        let mut sc = sc;
        sc.net = Some(NetSpec {
            links: vec![LinkSpec { rate_bytes_per_sec: 1.0, discipline: LinkDiscipline::Fifo }],
            unit_bytes: 6144.0,
            hop_latency: 0.0,
        });
        let json = sc.to_json().replace("\"rate_bytes_per_sec\": 1.0", &format!("\"rate_bytes_per_sec\": {bad_rate}"));
        prop_assert!(
            ScenarioSpec::from_json(&json).is_err(),
            "rate {bad_rate} must be rejected:\n{json}"
        );
    }

    /// Out-of-order timelines decode permissively but always trip the
    /// verifier's ordering rule (V9), regardless of event kinds.
    #[test]
    fn out_of_order_timelines_fire_v9(
        sc in scenario_strategy(),
        first in event_strategy(),
        second in event_strategy(),
        gap in 0.5..50.0f64,
    ) {
        use covenant_verify::{verify_scenario, VRule};
        let mut sc = sc;
        let (mut late, mut early) = (first, second);
        set_at(&mut late, sc.deployment.duration + gap + gap);
        set_at(&mut early, sc.deployment.duration + gap);
        sc.timeline = vec![late, early];
        let back = ScenarioSpec::from_json(&sc.to_json()).expect("out-of-order timeline decodes");
        prop_assert_eq!(&back.timeline, &sc.timeline);
        let findings = verify_scenario(&back);
        prop_assert!(
            findings.iter().any(|f| f.rule == VRule::TimelineOrder),
            "V9 must fire on an out-of-order timeline: {findings:?}"
        );
    }
}

fn set_at(ev: &mut TimelineEvent, t: f64) {
    match ev {
        TimelineEvent::FlashCrowd { at, .. }
        | TimelineEvent::Diurnal { at, .. }
        | TimelineEvent::Renegotiate { at, .. }
        | TimelineEvent::ServerFail { at, .. }
        | TimelineEvent::ServerRecover { at, .. }
        | TimelineEvent::Inflate { at, .. }
        | TimelineEvent::RestartRedirector { at, .. } => *at = t,
    }
}
