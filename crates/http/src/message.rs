//! HTTP/1.1 message types, parsing, and serialization.

use crate::HttpError;
use std::io::{BufRead, Write};

/// Maximum accepted header block size (DoS guard).
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Maximum accepted body size (the paper's largest reply is 500 KB).
const MAX_BODY_BYTES: usize = 2 * 1024 * 1024;

/// Request methods the substrate understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// GET — the only method WebBench-style load uses.
    Get,
    /// HEAD.
    Head,
    /// POST.
    Post,
}

impl Method {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
        }
    }

    fn parse(s: &str) -> Result<Self, HttpError> {
        match s {
            "GET" => Ok(Method::Get),
            "HEAD" => Ok(Method::Head),
            "POST" => Ok(Method::Post),
            _ => Err(HttpError::Malformed("unsupported method")),
        }
    }
}

/// Status codes the redirectors and servers emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 302 Found — the L7 redirection vehicle.
    pub const FOUND: StatusCode = StatusCode(302);
    /// 400 Bad Request.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 503 Service Unavailable.
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    /// Canonical reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            302 => "Found",
            400 => "Bad Request",
            404 => "Not Found",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// True for 3xx.
    pub fn is_redirect(self) -> bool {
        (300..400).contains(&self.0)
    }
}

/// An HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq)]
pub struct HttpRequest {
    /// Method.
    pub method: Method,
    /// Request target (origin-form path, e.g. `/org/A/page1.html`).
    pub path: String,
    /// Header name/value pairs in arrival order (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// Body bytes (empty unless `Content-Length` was present).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// A bare GET.
    pub fn get(path: impl Into<String>) -> Self {
        HttpRequest { method: Method::Get, path: path.into(), headers: Vec::new(), body: Vec::new() }
    }

    /// Adds a header (builder style).
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_ascii_lowercase(), value.into()));
        self
    }

    /// First value of header `name` (case-insensitive).
    pub fn header_value(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Reads one request from a buffered stream.
    pub fn read_from<R: BufRead>(r: &mut R) -> Result<Self, HttpError> {
        let start = read_line(r)?;
        let mut parts = start.split_whitespace();
        let method = Method::parse(parts.next().ok_or(HttpError::Malformed("empty request line"))?)?;
        let path = parts
            .next()
            .ok_or(HttpError::Malformed("missing request target"))?
            .to_string();
        let version = parts.next().ok_or(HttpError::Malformed("missing version"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed("unsupported HTTP version"));
        }
        let headers = read_headers(r)?;
        let body = read_body(r, &headers)?;
        Ok(HttpRequest { method, path, headers, body })
    }

    /// Serializes onto a stream (always `Connection: close`).
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), HttpError> {
        write!(w, "{} {} HTTP/1.1\r\n", self.method.as_str(), self.path)?;
        let mut wrote_conn = false;
        for (n, v) in &self.headers {
            write!(w, "{n}: {v}\r\n")?;
            if n == "connection" {
                wrote_conn = true;
            }
        }
        if !self.body.is_empty() {
            write!(w, "content-length: {}\r\n", self.body.len())?;
        }
        if !wrote_conn {
            write!(w, "connection: close\r\n")?;
        }
        write!(w, "\r\n")?;
        w.write_all(&self.body)?;
        w.flush()?;
        Ok(())
    }
}

/// An HTTP/1.1 response.
#[derive(Debug, Clone, PartialEq)]
pub struct HttpResponse {
    /// Status code.
    pub status: StatusCode,
    /// Header name/value pairs (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// 200 with a body.
    pub fn ok(body: impl Into<Vec<u8>>) -> Self {
        HttpResponse { status: StatusCode::OK, headers: Vec::new(), body: body.into() }
    }

    /// 302 with a `Location` header — the L7 redirection reply.
    pub fn redirect(location: impl Into<String>) -> Self {
        HttpResponse {
            status: StatusCode::FOUND,
            headers: vec![("location".into(), location.into())],
            body: Vec::new(),
        }
    }

    /// An empty response with the given status.
    pub fn status(status: StatusCode) -> Self {
        HttpResponse { status, headers: Vec::new(), body: Vec::new() }
    }

    /// Adds a header (builder style).
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_ascii_lowercase(), value.into()));
        self
    }

    /// First value of header `name` (case-insensitive).
    pub fn header_value(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Reads one response from a buffered stream.
    pub fn read_from<R: BufRead>(r: &mut R) -> Result<Self, HttpError> {
        let start = read_line(r)?;
        let mut parts = start.split_whitespace();
        let version = parts.next().ok_or(HttpError::Malformed("empty status line"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed("unsupported HTTP version"));
        }
        let code: u16 = parts
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or(HttpError::Malformed("bad status code"))?;
        let headers = read_headers(r)?;
        let body = read_body(r, &headers)?;
        Ok(HttpResponse { status: StatusCode(code), headers, body })
    }

    /// Serializes onto a stream.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), HttpError> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status.0, self.status.reason())?;
        for (n, v) in &self.headers {
            write!(w, "{n}: {v}\r\n")?;
        }
        write!(w, "content-length: {}\r\n", self.body.len())?;
        write!(w, "connection: close\r\n\r\n")?;
        w.write_all(&self.body)?;
        w.flush()?;
        Ok(())
    }
}

/// A zero-copy view of one request's header block, for readiness-driven
/// servers that parse straight out of a receive buffer (the blocking
/// [`HttpRequest::read_from`] path allocates per header; a reactor shard
/// parsing hundreds of pipelined requests per wake cannot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestHead<'a> {
    /// Method.
    pub method: Method,
    /// Request target, borrowed from the buffer.
    pub path: &'a str,
    /// `Connection: close` was requested (HTTP/1.1 defaults to keep-alive).
    pub close: bool,
    /// Declared `Content-Length` (0 when absent).
    pub content_length: usize,
}

/// Finds the end of the first complete header block (one past the
/// `\r\n\r\n`), scanning from `from` — the caller's resume cursor over an
/// incrementally-filled buffer, so repeated calls stay O(bytes) overall.
/// Rescans up to 3 bytes before `from` to catch a terminator split across
/// fills.
pub fn header_block_end(buf: &[u8], from: usize) -> Option<usize> {
    let start = from.saturating_sub(3);
    buf.get(start..)?
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|pos| start + pos + 4)
}

/// Parses one complete header block (through its `\r\n\r\n`) without
/// copying. Malformed heads are errors — a reactor shard answers 400 and
/// closes rather than guessing.
pub fn parse_request_head(head: &[u8]) -> Result<RequestHead<'_>, HttpError> {
    if head.len() > MAX_HEADER_BYTES {
        return Err(HttpError::TooLarge);
    }
    let text = std::str::from_utf8(head).map_err(|_| HttpError::Malformed("non-UTF8 head"))?;
    let mut lines = text.split("\r\n");
    let start = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let mut parts = start.split_whitespace();
    let method = Method::parse(parts.next().ok_or(HttpError::Malformed("empty request line"))?)?;
    let path = parts.next().ok_or(HttpError::Malformed("missing request target"))?;
    let version = parts.next().ok_or(HttpError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }
    let mut close = version == "HTTP/1.0";
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header without colon"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("connection") {
            close = value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| HttpError::Malformed("bad content-length"))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    Ok(RequestHead { method, path, close, content_length })
}

fn read_line<R: BufRead>(r: &mut R) -> Result<String, HttpError> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Err(HttpError::UnexpectedEof);
    }
    if line.len() > MAX_HEADER_BYTES {
        return Err(HttpError::TooLarge);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

fn read_headers<R: BufRead>(r: &mut R) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    let mut total = 0usize;
    loop {
        let line = read_line(r)?;
        if line.is_empty() {
            return Ok(headers);
        }
        total += line.len();
        if total > MAX_HEADER_BYTES {
            return Err(HttpError::TooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
}

fn read_body<R: BufRead>(
    r: &mut R,
    headers: &[(String, String)],
) -> Result<Vec<u8>, HttpError> {
    let len: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    if len > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; len];
    let mut read = 0;
    while read < len {
        let n = r.read(&mut body[read..])?;
        if n == 0 {
            return Err(HttpError::UnexpectedEof);
        }
        read += n;
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn roundtrip_request(req: &HttpRequest) -> HttpRequest {
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        HttpRequest::read_from(&mut BufReader::new(&buf[..])).unwrap()
    }

    fn roundtrip_response(resp: &HttpResponse) -> HttpResponse {
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        HttpResponse::read_from(&mut BufReader::new(&buf[..])).unwrap()
    }

    #[test]
    fn request_roundtrip() {
        let req = HttpRequest::get("/org/A/page1.html").header("Host", "redirector:8080");
        let back = roundtrip_request(&req);
        assert_eq!(back.method, Method::Get);
        assert_eq!(back.path, "/org/A/page1.html");
        assert_eq!(back.header_value("host"), Some("redirector:8080"));
        assert!(back.body.is_empty());
    }

    #[test]
    fn request_with_body_roundtrips() {
        let mut req = HttpRequest::get("/submit");
        req.method = Method::Post;
        req.body = b"key=value".to_vec();
        let back = roundtrip_request(&req);
        assert_eq!(back.method, Method::Post);
        assert_eq!(back.body, b"key=value");
    }

    #[test]
    fn response_roundtrip() {
        let resp = HttpResponse::ok(vec![7u8; 6144]).header("X-Server", "s1");
        let back = roundtrip_response(&resp);
        assert_eq!(back.status, StatusCode::OK);
        assert_eq!(back.body.len(), 6144);
        assert_eq!(back.header_value("x-server"), Some("s1"));
    }

    #[test]
    fn redirect_response_carries_location() {
        let resp = HttpResponse::redirect("http://10.0.0.2:8080/org/A/x");
        let back = roundtrip_response(&resp);
        assert_eq!(back.status, StatusCode::FOUND);
        assert!(back.status.is_redirect());
        assert_eq!(back.header_value("location"), Some("http://10.0.0.2:8080/org/A/x"));
    }

    #[test]
    fn parses_case_insensitive_headers_and_whitespace() {
        let raw = b"GET /x HTTP/1.1\r\nHoSt:   example  \r\nContent-Length: 2\r\n\r\nhi";
        let req = HttpRequest::read_from(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(req.header_value("HOST"), Some("example"));
        assert_eq!(req.body, b"hi");
    }

    #[test]
    fn rejects_garbage() {
        for raw in [
            &b"NOTAMETHOD /x HTTP/1.1\r\n\r\n"[..],
            &b"GET /x SPDY/9\r\n\r\n"[..],
            &b"GET\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n"[..],
        ] {
            assert!(HttpRequest::read_from(&mut BufReader::new(raw)).is_err(), "{raw:?}");
        }
    }

    #[test]
    fn eof_mid_body_is_detected() {
        let raw = b"GET /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort";
        let err = HttpRequest::read_from(&mut BufReader::new(&raw[..])).unwrap_err();
        assert!(matches!(err, HttpError::UnexpectedEof));
    }

    #[test]
    fn oversized_body_rejected() {
        let raw = b"GET /x HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n";
        let err = HttpRequest::read_from(&mut BufReader::new(&raw[..])).unwrap_err();
        assert!(matches!(err, HttpError::TooLarge));
    }

    #[test]
    fn header_block_end_resumes_across_split_terminators() {
        let raw = b"GET /x HTTP/1.1\r\nhost: h\r\n\r\nGET /y";
        assert_eq!(header_block_end(raw, 0), Some(28));
        // Terminator split across two fills: the resume cursor sits inside
        // the \r\n\r\n and the rescan window must still find it.
        for cursor in 24..=27 {
            assert_eq!(header_block_end(raw, cursor), Some(28), "cursor {cursor}");
        }
        assert_eq!(header_block_end(b"GET /x HTTP/1.1\r\nhost:", 0), None);
        assert_eq!(header_block_end(&[], 0), None);
    }

    #[test]
    fn parse_request_head_zero_copy() {
        let head = parse_request_head(b"GET /org/A/p HTTP/1.1\r\nhost: h\r\n\r\n").unwrap();
        assert_eq!(head.method, Method::Get);
        assert_eq!(head.path, "/org/A/p");
        assert!(!head.close, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(head.content_length, 0);

        let head =
            parse_request_head(b"POST /s HTTP/1.1\r\nConnection: close\r\ncontent-length: 7\r\n\r\n")
                .unwrap();
        assert!(head.close);
        assert_eq!(head.content_length, 7);

        let head = parse_request_head(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(head.close, "HTTP/1.0 defaults to close");

        assert!(parse_request_head(b"BAD\r\n\r\n").is_err());
        assert!(parse_request_head(b"GET /x HTTP/1.1\r\nbroken\r\n\r\n").is_err());
        assert!(parse_request_head(b"GET /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n").is_err());
    }

    #[test]
    fn status_reasons() {
        assert_eq!(StatusCode::OK.reason(), "OK");
        assert_eq!(StatusCode::FOUND.reason(), "Found");
        assert_eq!(StatusCode(999).reason(), "Unknown");
        assert!(!StatusCode::OK.is_redirect());
    }
}
