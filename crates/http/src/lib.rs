//! Minimal blocking HTTP/1.1 substrate.
//!
//! The paper's prototypes live in the web-request path: WebBench clients
//! speak HTTP to a redirector, which either answers `302 Found` (Layer-7)
//! or forwards bytes (Layer-4) to Apache servers. This crate is that
//! substrate, built from scratch on `std::net`:
//!
//! * [`HttpRequest`] / [`HttpResponse`] — message types with strict
//!   request-line/header parsing and `Content-Length` bodies;
//! * [`HttpServer`] — a blocking accept loop with a thread per connection
//!   and cooperative shutdown;
//! * [`HttpClient`] — a one-request-per-connection client that can follow
//!   `302` redirects up to a bound (WebBench 4.01 famously could not — the
//!   paper fronts it with an Apache proxy; our client plays both roles).
//!
//! `Connection: close` semantics throughout: every request uses a fresh
//! connection, matching the short-lived-request model of the architecture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
pub mod clock;
mod error;
mod message;
mod origin;
mod server;

pub use client::{FetchResult, HttpClient};
pub use clock::{wall_clock, ClockFn};
pub use error::HttpError;
pub use message::{
    header_block_end, parse_request_head, HttpRequest, HttpResponse, Method, RequestHead,
    StatusCode,
};
pub use origin::{OriginServer, TokenBucket};
pub use server::{handler, Handler, HttpServer};
