//! Blocking HTTP client with bounded redirect following.

use crate::{HttpError, HttpRequest, HttpResponse};
use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::time::Duration;

/// Result of a fetch: the final response plus how the redirect chain
/// unfolded (the L7 experiments count self-redirect retries).
#[derive(Debug, Clone, PartialEq)]
pub struct FetchResult {
    /// The final (non-redirect, or redirect-limit-reached) response.
    pub response: HttpResponse,
    /// Number of redirects followed before the final response.
    pub redirects: usize,
}

/// A one-connection-per-request HTTP client.
#[derive(Debug, Clone)]
pub struct HttpClient {
    /// Maximum redirects to follow per fetch.
    pub max_redirects: usize,
    /// Socket timeout for connect/read/write.
    pub timeout: Duration,
    /// Pause before re-requesting the *same* URL (a self-redirect — the L7
    /// implicit-queue "please retry" signal). Zero means spin immediately.
    pub self_redirect_pause: Duration,
}

impl Default for HttpClient {
    fn default() -> Self {
        HttpClient {
            max_redirects: 32,
            timeout: Duration::from_secs(10),
            self_redirect_pause: Duration::from_millis(0),
        }
    }
}

impl HttpClient {
    /// A client with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the redirect hop limit.
    pub fn with_max_redirects(mut self, n: usize) -> Self {
        self.max_redirects = n;
        self
    }

    /// Performs one GET against a `http://host:port/path` URL, following
    /// redirects up to the limit.
    pub fn get(&self, url: &str) -> Result<FetchResult, HttpError> {
        let mut target = url.to_string();
        let mut redirects = 0;
        loop {
            let (authority, path) = split_url(&target)?;
            let response = self.request_once(authority, &HttpRequest::get(path))?;
            if response.status.is_redirect() {
                if redirects >= self.max_redirects {
                    return Err(HttpError::TooManyRedirects(self.max_redirects));
                }
                let loc = response
                    .header_value("location")
                    .ok_or(HttpError::BadRedirect)?;
                let next = if loc.starts_with("http://") {
                    loc.to_string()
                } else {
                    // Relative Location: same authority.
                    format!("http://{authority}{loc}")
                };
                if next == target && !self.self_redirect_pause.is_zero() {
                    std::thread::sleep(self.self_redirect_pause);
                }
                target = next;
                redirects += 1;
                continue;
            }
            return Ok(FetchResult { response, redirects });
        }
    }

    /// Performs one GET without following redirects (what raw WebBench
    /// 4.01 does — the paper fronts it with a proxy for the L7 runs).
    pub fn get_no_follow(&self, url: &str) -> Result<HttpResponse, HttpError> {
        let (authority, path) = split_url(url)?;
        self.request_once(authority, &HttpRequest::get(path))
    }

    /// Sends one request to `authority` ("host:port") on a fresh
    /// connection.
    pub fn request_once(
        &self,
        authority: &str,
        req: &HttpRequest,
    ) -> Result<HttpResponse, HttpError> {
        let stream = TcpStream::connect(authority)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let mut writer = BufWriter::new(stream.try_clone()?);
        let req = req.clone().header("host", authority.to_string());
        req.write_to(&mut writer)?;
        let mut reader = BufReader::new(stream);
        HttpResponse::read_from(&mut reader)
    }
}

/// Splits `http://host:port/path` into (`host:port`, `/path`).
fn split_url(url: &str) -> Result<(&str, &str), HttpError> {
    let rest = url
        .strip_prefix("http://")
        .ok_or(HttpError::Malformed("url must start with http://"))?;
    match rest.find('/') {
        Some(i) => Ok((&rest[..i], &rest[i..])),
        None => Ok((rest, "/")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HttpServer, StatusCode};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn split_url_variants() {
        assert_eq!(split_url("http://a:80/x/y").unwrap(), ("a:80", "/x/y"));
        assert_eq!(split_url("http://a:80").unwrap(), ("a:80", "/"));
        assert!(split_url("ftp://a/x").is_err());
    }

    #[test]
    fn follows_redirect_chain() {
        // Backend answers 200; front server 302-redirects to the backend.
        let backend: HttpServer = HttpServer::bind(
            "127.0.0.1:0",
            crate::server::handler(|_req, _| crate::HttpResponse::ok("backend")),
        )
        .unwrap();
        let backend_addr = backend.addr();
        let front = HttpServer::bind(
            "127.0.0.1:0",
            crate::server::handler(move |req, _| {
                crate::HttpResponse::redirect(format!("http://{backend_addr}{}", req.path))
            }),
        )
        .unwrap();

        let r = HttpClient::new().get(&format!("http://{}/p", front.addr())).unwrap();
        assert_eq!(r.response.status, StatusCode::OK);
        assert_eq!(r.response.body, b"backend");
        assert_eq!(r.redirects, 1);
    }

    #[test]
    fn self_redirect_loop_hits_limit() {
        // A redirector that always self-redirects (the L7 "implicit queue"
        // behaviour under zero quota).
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let server_handler_addr: Arc<parking_lot::Mutex<Option<std::net::SocketAddr>>> =
            Arc::new(parking_lot::Mutex::new(None));
        let sh = Arc::clone(&server_handler_addr);
        let server = HttpServer::bind(
            "127.0.0.1:0",
            crate::server::handler(move |req, _| {
                c2.fetch_add(1, Ordering::Relaxed);
                let addr = sh.lock().expect("addr set");
                crate::HttpResponse::redirect(format!("http://{addr}{}", req.path))
            }),
        )
        .unwrap();
        *server_handler_addr.lock() = Some(server.addr());

        let err = HttpClient::new()
            .with_max_redirects(5)
            .get(&format!("http://{}/p", server.addr()))
            .unwrap_err();
        assert!(matches!(err, HttpError::TooManyRedirects(5)));
        assert_eq!(counter.load(Ordering::Relaxed), 6); // initial + 5 retries
    }

    #[test]
    fn no_follow_returns_redirect() {
        let server = HttpServer::bind(
            "127.0.0.1:0",
            crate::server::handler(|_req, _| crate::HttpResponse::redirect("/again")),
        )
        .unwrap();
        let resp = HttpClient::new()
            .get_no_follow(&format!("http://{}/p", server.addr()))
            .unwrap();
        assert_eq!(resp.status, StatusCode::FOUND);
        assert_eq!(resp.header_value("location"), Some("/again"));
    }

    #[test]
    fn relative_location_resolves_against_authority() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h2 = Arc::clone(&hits);
        let server = HttpServer::bind(
            "127.0.0.1:0",
            crate::server::handler(move |req, _| {
                if req.path == "/final" {
                    crate::HttpResponse::ok("done")
                } else {
                    h2.fetch_add(1, Ordering::Relaxed);
                    crate::HttpResponse::redirect("/final")
                }
            }),
        )
        .unwrap();
        let r = HttpClient::new().get(&format!("http://{}/start", server.addr())).unwrap();
        assert_eq!(r.response.body, b"done");
        assert_eq!(r.redirects, 1);
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
