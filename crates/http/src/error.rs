//! HTTP substrate errors.

use std::fmt;
use std::io;

/// Errors raised while parsing or transporting HTTP messages.
#[derive(Debug)]
pub enum HttpError {
    /// Underlying socket error.
    Io(io::Error),
    /// Malformed request line, status line, or header.
    Malformed(&'static str),
    /// The peer closed the connection before a complete message arrived.
    UnexpectedEof,
    /// A redirect chain exceeded the client's hop limit.
    TooManyRedirects(usize),
    /// A `Location` header was missing or unusable on a redirect.
    BadRedirect,
    /// Header or body exceeded the configured size limit.
    TooLarge,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "io error: {e}"),
            HttpError::Malformed(what) => write!(f, "malformed message: {what}"),
            HttpError::UnexpectedEof => write!(f, "connection closed mid-message"),
            HttpError::TooManyRedirects(n) => write!(f, "more than {n} redirects"),
            HttpError::BadRedirect => write!(f, "redirect without usable Location"),
            HttpError::TooLarge => write!(f, "message exceeds size limit"),
        }
    }
}

impl std::error::Error for HttpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HttpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}
