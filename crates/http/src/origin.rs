//! Capacity-limited origin server — the testbed's Apache stand-in.
//!
//! The paper's servers are rate resources: a 1 GHz PC running Apache
//! saturates at 320 requests/second on the WebBench mix. [`OriginServer`]
//! reproduces exactly that: a token-bucket service rate in front of the
//! HTTP substrate, answering with a synthetic body. Requests that arrive
//! while the bucket is empty wait for tokens (Apache's accept queue), up to
//! a bound.
//!
//! All timing is injected (see [`crate::clock`]): the bucket itself is a
//! pure function of the timestamps it is handed, so origin throttling is
//! testable in virtual time.

use crate::clock::{wall_clock, ClockFn};
use crate::{handler, HttpError, HttpResponse, HttpServer, StatusCode};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Token bucket: `rate` tokens/second, capped at `burst`. Time is an
/// explicit parameter — callers hand in `now` in seconds on whatever
/// monotone clock they run (wall or virtual).
#[derive(Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    /// Timestamp of the last refill, on the caller's clock.
    last: f64,
}

impl TokenBucket {
    /// A bucket refilling at `rate`/s and holding at most `burst` tokens,
    /// with its refill anchor at time 0 on the caller's clock.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate >= 0.0 && burst >= 0.0);
        TokenBucket { rate, burst, tokens: burst.min(1.0), last: 0.0 }
    }

    /// Takes one token if available at time `now` (seconds on the caller's
    /// clock). Time moving backwards refills nothing.
    pub fn try_take_at(&mut self, now: f64) -> bool {
        let dt = (now - self.last).max(0.0);
        self.last = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// A rate-limited origin server.
pub struct OriginServer {
    server: HttpServer,
}

impl OriginServer {
    /// Binds an origin serving `body_bytes`-sized replies at up to
    /// `capacity` requests/second on the wall clock; requests wait up to
    /// `max_wait` for a service token before being answered `503`.
    pub fn bind(
        addr: &str,
        capacity: f64,
        body_bytes: usize,
        max_wait: Duration,
    ) -> Result<Self, HttpError> {
        Self::bind_with_clock(addr, capacity, body_bytes, max_wait, wall_clock())
    }

    /// Like [`Self::bind`] but on an injected clock — virtual-time tests
    /// drive the bucket without sleeping.
    pub fn bind_with_clock(
        addr: &str,
        capacity: f64,
        body_bytes: usize,
        max_wait: Duration,
        clock: ClockFn,
    ) -> Result<Self, HttpError> {
        // Burst of ~100 ms worth of capacity, but never below one whole
        // token (a positive-capacity origin must be able to serve at all);
        // zero capacity keeps a zero bucket and always 503s.
        let burst = if capacity > 0.0 { (capacity * 0.1).max(1.0) } else { 0.0 };
        let bucket = Arc::new(Mutex::new(TokenBucket::new(capacity, burst)));
        let body = vec![b'x'; body_bytes];
        let h = handler(move |req, _peer| {
            let deadline = clock() + max_wait.as_secs_f64();
            loop {
                if bucket.lock().try_take_at(clock()) {
                    return HttpResponse::ok(body.clone())
                        .header("x-path", req.path.clone());
                }
                if clock() >= deadline {
                    return HttpResponse::status(StatusCode::SERVICE_UNAVAILABLE);
                }
                std::thread::sleep(Duration::from_micros(500));
            }
        });
        Ok(OriginServer { server: HttpServer::bind(addr, h)? })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Requests answered (including 503s).
    pub fn served(&self) -> u64 {
        self.server.served()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HttpClient;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Instant;

    #[test]
    fn token_bucket_paces_in_virtual_time() {
        let mut b = TokenBucket::new(1000.0, 1.0);
        assert!(b.try_take_at(0.0));
        // Bucket drained; same-instant retry fails.
        assert!(!b.try_take_at(0.0));
        // 5 virtual milliseconds refill 5 tokens (capped at burst 1).
        assert!(b.try_take_at(0.005));
    }

    #[test]
    fn token_bucket_ignores_time_going_backwards() {
        let mut b = TokenBucket::new(10.0, 5.0);
        assert!(b.try_take_at(1.0));
        // A clock hiccup must not mint tokens or panic.
        assert!(b.try_take_at(0.5));
        assert!(b.try_take_at(0.5));
    }

    #[test]
    fn token_bucket_sustains_exact_rate_in_virtual_time() {
        // 50/s for 10 virtual seconds at 100 offered/s: exactly ~500 admits,
        // no sleeping involved.
        let mut b = TokenBucket::new(50.0, 5.0);
        let mut admitted = 0;
        for step in 0..1000 {
            if b.try_take_at(step as f64 * 0.01) {
                admitted += 1;
            }
        }
        assert!((495..=505).contains(&admitted), "admitted {admitted}");
    }

    #[test]
    fn origin_respects_injected_clock() {
        // A virtual clock the test advances: capacity 1/s with ~0 elapsed
        // time admits exactly one request; advancing the clock re-admits.
        let vtime = Arc::new(AtomicU64::new(0)); // microseconds
        let vt = Arc::clone(&vtime);
        let clock: crate::clock::ClockFn =
            Arc::new(move || vt.load(Ordering::Relaxed) as f64 * 1e-6);
        let origin = OriginServer::bind_with_clock(
            "127.0.0.1:0",
            1.0,
            64,
            Duration::ZERO,
            clock,
        )
        .unwrap();
        let client = HttpClient::new();
        let url = format!("http://{}/x", origin.addr());
        assert_eq!(client.get(&url).unwrap().response.status, StatusCode::OK);
        assert_eq!(
            client.get(&url).unwrap().response.status,
            StatusCode::SERVICE_UNAVAILABLE
        );
        // Advance virtual time 2 s: one token refilled.
        vtime.store(2_000_000, Ordering::Relaxed);
        assert_eq!(client.get(&url).unwrap().response.status, StatusCode::OK);
    }

    #[test]
    fn origin_answers_with_body() {
        let origin = OriginServer::bind("127.0.0.1:0", 1000.0, 6144, Duration::from_secs(1)).unwrap();
        let r = HttpClient::new()
            .get(&format!("http://{}/org/A/page", origin.addr()))
            .unwrap();
        assert_eq!(r.response.status, StatusCode::OK);
        assert_eq!(r.response.body.len(), 6144);
        assert_eq!(r.response.header_value("x-path"), Some("/org/A/page"));
    }

    #[test]
    fn origin_caps_throughput() {
        // 50 req/s origin; 30 sequential requests should take ≈ 0.6 s.
        let origin = OriginServer::bind("127.0.0.1:0", 50.0, 64, Duration::from_secs(5)).unwrap();
        let client = HttpClient::new();
        let url = format!("http://{}/x", origin.addr());
        let start = Instant::now();
        for _ in 0..30 {
            let r = client.get(&url).unwrap();
            assert_eq!(r.response.status, StatusCode::OK);
        }
        let elapsed = start.elapsed().as_secs_f64();
        assert!(elapsed > 0.4, "30 requests at 50/s finished in {elapsed:.2}s");
    }

    #[test]
    fn zero_capacity_yields_503() {
        let origin =
            OriginServer::bind("127.0.0.1:0", 0.0, 64, Duration::from_millis(20)).unwrap();
        let r = HttpClient::new().get(&format!("http://{}/x", origin.addr())).unwrap();
        assert_eq!(r.response.status, StatusCode::SERVICE_UNAVAILABLE);
    }
}
