//! Capacity-limited origin server — the testbed's Apache stand-in.
//!
//! The paper's servers are rate resources: a 1 GHz PC running Apache
//! saturates at 320 requests/second on the WebBench mix. [`OriginServer`]
//! reproduces exactly that: a token-bucket service rate in front of the
//! HTTP substrate, answering with a synthetic body. Requests that arrive
//! while the bucket is empty wait for tokens (Apache's accept queue), up to
//! a bound.

use crate::{handler, HttpError, HttpResponse, HttpServer, StatusCode};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Token bucket: `rate` tokens/second, capped at `burst`.
#[derive(Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket refilling at `rate`/s and holding at most `burst` tokens.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate >= 0.0 && burst >= 0.0);
        TokenBucket { rate, burst, tokens: burst.min(1.0), last: Instant::now() }
    }

    /// Takes one token if available right now.
    pub fn try_take(&mut self) -> bool {
        let now = Instant::now();
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// A rate-limited origin server.
pub struct OriginServer {
    server: HttpServer,
}

impl OriginServer {
    /// Binds an origin serving `body_bytes`-sized replies at up to
    /// `capacity` requests/second; requests wait up to `max_wait` for a
    /// service token before being answered `503`.
    pub fn bind(
        addr: &str,
        capacity: f64,
        body_bytes: usize,
        max_wait: Duration,
    ) -> Result<Self, HttpError> {
        let bucket = Arc::new(Mutex::new(TokenBucket::new(capacity, capacity.max(1.0) * 0.1)));
        let body = vec![b'x'; body_bytes];
        let h = handler(move |req, _peer| {
            let deadline = Instant::now() + max_wait;
            loop {
                if bucket.lock().try_take() {
                    return HttpResponse::ok(body.clone())
                        .header("x-path", req.path.clone());
                }
                if Instant::now() >= deadline {
                    return HttpResponse::status(StatusCode::SERVICE_UNAVAILABLE);
                }
                std::thread::sleep(Duration::from_micros(500));
            }
        });
        Ok(OriginServer { server: HttpServer::bind(addr, h)? })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Requests answered (including 503s).
    pub fn served(&self) -> u64 {
        self.server.served()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HttpClient;

    #[test]
    fn token_bucket_paces() {
        let mut b = TokenBucket::new(1000.0, 1.0);
        assert!(b.try_take());
        // Bucket drained; immediate retry fails.
        assert!(!b.try_take());
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.try_take());
    }

    #[test]
    fn origin_answers_with_body() {
        let origin = OriginServer::bind("127.0.0.1:0", 1000.0, 6144, Duration::from_secs(1)).unwrap();
        let r = HttpClient::new()
            .get(&format!("http://{}/org/A/page", origin.addr()))
            .unwrap();
        assert_eq!(r.response.status, StatusCode::OK);
        assert_eq!(r.response.body.len(), 6144);
        assert_eq!(r.response.header_value("x-path"), Some("/org/A/page"));
    }

    #[test]
    fn origin_caps_throughput() {
        // 50 req/s origin; 30 sequential requests should take ≈ 0.6 s.
        let origin = OriginServer::bind("127.0.0.1:0", 50.0, 64, Duration::from_secs(5)).unwrap();
        let client = HttpClient::new();
        let url = format!("http://{}/x", origin.addr());
        let start = Instant::now();
        for _ in 0..30 {
            let r = client.get(&url).unwrap();
            assert_eq!(r.response.status, StatusCode::OK);
        }
        let elapsed = start.elapsed().as_secs_f64();
        assert!(elapsed > 0.4, "30 requests at 50/s finished in {elapsed:.2}s");
    }

    #[test]
    fn zero_capacity_yields_503() {
        let origin =
            OriginServer::bind("127.0.0.1:0", 0.0, 64, Duration::from_millis(20)).unwrap();
        let r = HttpClient::new().get(&format!("http://{}/x", origin.addr())).unwrap();
        assert_eq!(r.response.status, StatusCode::SERVICE_UNAVAILABLE);
    }
}
