//! The clock source data-plane code takes by injection.
//!
//! This module is the one place in the HTTP substrate allowed to read the
//! wall clock (it is on `covenant-lint`'s R1 clock allowlist). Everything
//! downstream — the origin's token bucket, timeouts in tests — receives a
//! [`ClockFn`] and can therefore run in virtual time: the sim/live
//! differential replay depends on no data-plane code consulting
//! `Instant::now()` on its own.

use std::sync::Arc;
use std::time::Instant;

/// A monotone clock: seconds since some fixed epoch.
pub type ClockFn = Arc<dyn Fn() -> f64 + Send + Sync>;

/// The default wall clock: seconds since this call, via a captured
/// [`Instant`] epoch.
pub fn wall_clock() -> ClockFn {
    let epoch = Instant::now();
    Arc::new(move || epoch.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone_and_starts_near_zero() {
        let clock = wall_clock();
        let a = clock();
        let b = clock();
        assert!((0.0..1.0).contains(&a));
        assert!(b >= a);
    }
}
