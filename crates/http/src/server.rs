//! Blocking HTTP server with cooperative shutdown.

use crate::{HttpError, HttpRequest, HttpResponse, StatusCode};
use parking_lot::Mutex;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A request handler: maps a request (plus the peer address) to a response.
pub type Handler = Arc<dyn Fn(&HttpRequest, SocketAddr) -> HttpResponse + Send + Sync>;

/// Wraps a closure as a [`Handler`], pinning the higher-ranked lifetime so
/// closure type inference works at call sites.
pub fn handler<F>(f: F) -> Handler
where
    F: Fn(&HttpRequest, SocketAddr) -> HttpResponse + Send + Sync + 'static,
{
    Arc::new(f)
}

/// A running HTTP server. Dropping it (or calling [`HttpServer::shutdown`])
/// stops the accept loop and joins it.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    /// Completed-request counter (for capacity/throughput assertions).
    served: Arc<Mutex<u64>>,
}

impl HttpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// serving `handler` on a thread per connection.
    pub fn bind(addr: &str, handler: Handler) -> Result<Self, HttpError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(Mutex::new(0u64));

        let stop2 = Arc::clone(&stop);
        let served2 = Arc::clone(&served);
        let accept_thread = std::thread::Builder::new()
            .name(format!("http-accept-{local}"))
            .spawn(move || {
                let mut workers: Vec<JoinHandle<()>> = Vec::new();
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, peer)) => {
                            let handler = Arc::clone(&handler);
                            let served = Arc::clone(&served2);
                            workers.push(
                                std::thread::Builder::new()
                                    .name("http-conn".into())
                                    .spawn(move || {
                                        let _ = serve_connection(stream, peer, handler, served);
                                    })
                                    .expect("spawn connection thread"),
                            );
                            // Reap finished workers opportunistically.
                            workers.retain(|h| !h.is_finished());
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
                for h in workers {
                    let _ = h.join();
                }
            })
            .expect("spawn accept thread");

        Ok(HttpServer { addr: local, stop, accept_thread: Some(accept_thread), served })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total requests answered so far.
    pub fn served(&self) -> u64 {
        *self.served.lock()
    }

    /// Stops the accept loop and joins it (idempotent).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(
    stream: TcpStream,
    peer: SocketAddr,
    handler: Handler,
    served: Arc<Mutex<u64>>,
) -> Result<(), HttpError> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let response = match HttpRequest::read_from(&mut reader) {
        Ok(req) => handler(&req, peer),
        Err(HttpError::UnexpectedEof) => return Ok(()), // health probe / cancelled
        Err(_) => HttpResponse::status(StatusCode::BAD_REQUEST),
    };
    // Count before writing: once a client has read the response, the
    // counter must already reflect it, or observers that join on client
    // completion can read a stale total.
    *served.lock() += 1;
    response.write_to(&mut writer)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HttpClient;

    fn echo_server() -> HttpServer {
        let handler: Handler =
            super::handler(|req, _peer| HttpResponse::ok(format!("path={}", req.path)));
        HttpServer::bind("127.0.0.1:0", handler).unwrap()
    }

    #[test]
    fn serves_requests() {
        let server = echo_server();
        let client = HttpClient::new();
        let resp = client
            .get(&format!("http://{}/hello", server.addr()))
            .unwrap();
        assert_eq!(resp.response.status, StatusCode::OK);
        assert_eq!(resp.response.body, b"path=/hello");
        assert_eq!(server.served(), 1);
    }

    #[test]
    fn serves_concurrent_connections() {
        let server = echo_server();
        let addr = server.addr();
        let mut handles = Vec::new();
        for i in 0..16 {
            handles.push(std::thread::spawn(move || {
                let client = HttpClient::new();
                let r = client.get(&format!("http://{addr}/c{i}")).unwrap();
                assert_eq!(r.response.body, format!("path=/c{i}").as_bytes());
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.served(), 16);
    }

    #[test]
    fn bad_request_for_garbage() {
        use std::io::{Read, Write};
        let server = echo_server();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"garbage\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
    }

    #[test]
    fn shutdown_is_idempotent_and_frees_port() {
        let mut server = echo_server();
        let addr = server.addr();
        server.shutdown();
        server.shutdown();
        drop(server);
        // Port reusable after shutdown.
        let _rebind = TcpListener::bind(addr).unwrap();
    }
}
