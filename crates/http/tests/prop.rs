//! Property tests: HTTP message round-tripping.

use covenant_http::{HttpRequest, HttpResponse, StatusCode};
use proptest::prelude::*;
use std::io::BufReader;

fn path_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-zA-Z0-9._-]{1,12}", 1..5)
        .prop_map(|segs| format!("/{}", segs.join("/")))
}

fn header_strategy() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec(
        ("[a-z][a-z0-9-]{0,15}", "[ -~&&[^:]]{0,30}"),
        0..6,
    )
    .prop_map(|hs| {
        let mut seen = std::collections::HashSet::new();
        hs.into_iter()
            // Reserved names are written by the serializer itself; duplicate
            // names are legal HTTP but header_value returns the first, so
            // keep names unique for the per-pair comparison.
            .filter(|(n, _)| n != "content-length" && n != "connection" && n != "host")
            .filter(|(n, _)| seen.insert(n.clone()))
            .map(|(n, v)| (n, v.trim().to_string()))
            .collect()
    })
}

proptest! {
    /// Any request serializes and parses back to the same method, path,
    /// headers (ours), and body.
    #[test]
    fn request_roundtrip(
        path in path_strategy(),
        headers in header_strategy(),
        body in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let mut req = HttpRequest::get(path.clone());
        for (n, v) in &headers {
            req = req.header(n, v.clone());
        }
        req.body = body.clone();
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        let back = HttpRequest::read_from(&mut BufReader::new(&buf[..])).unwrap();
        prop_assert_eq!(&back.path, &path);
        prop_assert_eq!(&back.body, &body);
        for (n, v) in &headers {
            prop_assert_eq!(back.header_value(n), Some(v.as_str()), "header {}", n);
        }
    }

    /// Any response round-trips status and body exactly.
    #[test]
    fn response_roundtrip(
        code in 100u16..600,
        body in proptest::collection::vec(any::<u8>(), 0..4096),
    ) {
        let mut resp = HttpResponse::status(StatusCode(code));
        resp.body = body.clone();
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let back = HttpResponse::read_from(&mut BufReader::new(&buf[..])).unwrap();
        prop_assert_eq!(back.status, StatusCode(code));
        prop_assert_eq!(back.body, body);
    }

    /// Redirect responses always round-trip their Location.
    #[test]
    fn redirect_roundtrip(path in path_strategy()) {
        let resp = HttpResponse::redirect(format!("http://10.0.0.1:8080{path}"));
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let back = HttpResponse::read_from(&mut BufReader::new(&buf[..])).unwrap();
        prop_assert!(back.status.is_redirect());
        prop_assert_eq!(
            back.header_value("location").unwrap(),
            format!("http://10.0.0.1:8080{path}")
        );
    }

    /// The parser never panics on arbitrary bytes — it returns Ok or Err.
    #[test]
    fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = HttpRequest::read_from(&mut BufReader::new(&bytes[..]));
        let _ = HttpResponse::read_from(&mut BufReader::new(&bytes[..]));
    }
}
