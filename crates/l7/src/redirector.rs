//! The L7 redirector server.

use covenant_agreements::PrincipalId;
use covenant_coord::{AdmissionControl, DaemonHooks, WindowDaemon};
use covenant_http::{handler, HttpError, HttpResponse, HttpServer, StatusCode};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Static configuration of one L7 redirector instance.
#[derive(Debug, Clone)]
pub struct L7Config {
    /// Principal names by id — requests for `/org/<name>/…` are charged to
    /// the principal with that name.
    pub principal_names: Vec<String>,
    /// Backend server address per server index (principal id of the
    /// owner). Servers without capacity need no entry.
    pub backends: HashMap<usize, SocketAddr>,
}

/// A running Layer-7 redirector: HTTP front-end plus its window daemon.
pub struct L7Redirector {
    server: HttpServer,
    daemon: WindowDaemon,
    ctrl: Arc<AdmissionControl>,
}

impl L7Redirector {
    /// Binds the redirector on `bind` and starts its window daemon.
    pub fn start(
        bind: &str,
        cfg: L7Config,
        ctrl: Arc<AdmissionControl>,
    ) -> Result<Self, HttpError> {
        // The self-redirect target must name the *bound* address; bind
        // first, then install the handler referencing it. HttpServer takes
        // the handler at bind time, so stash the address in a once-cell.
        let self_addr: Arc<parking_lot::Mutex<Option<SocketAddr>>> =
            Arc::new(parking_lot::Mutex::new(None));

        let name_to_id: HashMap<String, usize> = cfg
            .principal_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        let backends = cfg.backends.clone();
        let ctrl_for_handler = Arc::clone(&ctrl);
        let self_addr_for_handler = Arc::clone(&self_addr);

        let h = handler(move |req, _peer| {
            let Some(principal) = parse_principal(&req.path, &name_to_id) else {
                return HttpResponse::status(StatusCode::NOT_FOUND);
            };
            match ctrl_for_handler.try_admit(PrincipalId(principal), None) {
                Some(server) => match backends.get(&server) {
                    Some(addr) => HttpResponse::redirect(format!("http://{addr}{}", req.path)),
                    None => HttpResponse::status(StatusCode::SERVICE_UNAVAILABLE),
                },
                None => {
                    // Implicit queuing: self-redirect, the client retries.
                    // The address is stashed right after bind; an unset
                    // slot (a request racing construction) answers 503
                    // rather than panicking the handler thread.
                    match *self_addr_for_handler.lock() {
                        Some(addr) => {
                            HttpResponse::redirect(format!("http://{addr}{}", req.path))
                        }
                        None => HttpResponse::status(StatusCode::SERVICE_UNAVAILABLE),
                    }
                }
            }
        });

        let server = HttpServer::bind(bind, h)?;
        *self_addr.lock() = Some(server.addr());
        // The daemon must tick at exactly the scheduler's window length:
        // installed quotas are scaled to it.
        let window = Duration::from_secs_f64(ctrl.window_secs());
        let daemon = WindowDaemon::start(Arc::clone(&ctrl), window, DaemonHooks::default())?;
        Ok(L7Redirector { server, daemon, ctrl })
    }

    /// The redirector's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// (admitted, deferred) counters.
    pub fn counters(&self) -> (u64, u64) {
        self.ctrl.counters()
    }

    /// Requests answered by the front-end (admissions + self-redirects).
    pub fn served(&self) -> u64 {
        self.server.served()
    }

    /// Stops the window daemon and the HTTP server.
    pub fn shutdown(&mut self) {
        self.daemon.shutdown();
        self.server.shutdown();
    }
}

impl Drop for L7Redirector {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Extracts the principal from an `/org/<name>/…` path.
pub(crate) fn parse_principal(path: &str, names: &HashMap<String, usize>) -> Option<usize> {
    let rest = path.strip_prefix("/org/")?;
    let name = rest.split('/').next()?;
    names.get(name).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use covenant_agreements::AgreementGraph;
    use covenant_coord::Coordinator;
    use covenant_http::{HttpClient, OriginServer};
    use covenant_sched::SchedulerConfig;
    use covenant_tree::Topology;
    use std::time::Instant;

    #[test]
    fn parse_principal_paths() {
        let names: HashMap<String, usize> = [("A".into(), 1), ("B".into(), 2)].into();
        assert_eq!(parse_principal("/org/A/page.html", &names), Some(1));
        assert_eq!(parse_principal("/org/B/x/y", &names), Some(2));
        assert_eq!(parse_principal("/org/C/x", &names), None);
        assert_eq!(parse_principal("/other", &names), None);
        assert_eq!(parse_principal("/org/A", &names), Some(1));
    }

    /// Full loop: origin (capacity 200/s) shared [0.25,1]/[0.75,1]; both
    /// principals flood through the L7 redirector; B must get ~3× A.
    #[test]
    fn l7_enforces_shares_end_to_end() {
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 200.0);
        let _a = g.add_principal("A", 0.0);
        let _b = g.add_principal("B", 0.0);
        g.add_agreement(s, PrincipalId(1), 0.25, 1.0).unwrap();
        g.add_agreement(s, PrincipalId(2), 0.75, 1.0).unwrap();
        let levels = g.access_levels();

        let origin =
            OriginServer::bind("127.0.0.1:0", 1000.0, 256, Duration::from_secs(2)).unwrap();
        let coordinator = Coordinator::new(Topology::star(1, 0.0), 0.0);
        let ctrl = AdmissionControl::new(
            0,
            &levels,
            SchedulerConfig::community_default(),
            coordinator,
        );
        let cfg = L7Config {
            principal_names: vec!["S".into(), "A".into(), "B".into()],
            backends: [(0, origin.addr())].into(),
        };
        let redirector = L7Redirector::start("127.0.0.1:0", cfg, ctrl).unwrap();
        let raddr = redirector.addr();

        // Two flooding client threads (closed loop, no-follow so each
        // admission decision is observed individually).
        let deadline = Instant::now() + Duration::from_secs(3);
        let mut handles = Vec::new();
        for name in ["A", "B"] {
            handles.push(std::thread::spawn(move || {
                let client = HttpClient::new();
                let url = format!("http://{raddr}/org/{name}/page");
                let mut admitted = 0u64;
                while Instant::now() < deadline {
                    match client.get_no_follow(&url) {
                        Ok(resp) if resp.status == StatusCode::FOUND => {
                            let loc = resp.header_value("location").unwrap_or("");
                            if !loc.contains(&raddr.to_string()) {
                                // Redirected to the backend: admitted.
                                admitted += 1;
                                // Complete the fetch at the backend.
                                let _ = client.get(&format!(
                                    "http://{}",
                                    loc.trim_start_matches("http://")
                                ));
                            }
                        }
                        _ => {}
                    }
                }
                admitted
            }));
        }
        let got_a = handles.remove(0).join().unwrap();
        let got_b = handles.remove(0).join().unwrap();
        let ratio = got_b as f64 / got_a.max(1) as f64;
        // Entitlements are 150 vs 50 req/s → ratio ≈ 3.
        assert!(
            (2.0..=4.5).contains(&ratio),
            "B/A admitted ratio {ratio:.2} (A={got_a}, B={got_b})"
        );
        // Aggregate admission should approximate server capacity (200/s over
        // ~3 s), modulo cold start — it must NOT exceed it significantly.
        let total = got_a + got_b;
        assert!(total <= 850, "admitted {total} > capacity budget");
        assert!(total >= 300, "admitted only {total}; scheduler stuck?");
    }

    #[test]
    fn unknown_principal_is_404_and_zero_quota_self_redirects() {
        let mut g = AgreementGraph::new();
        let _s = g.add_principal("S", 100.0);
        let _a = g.add_principal("A", 0.0);
        // No agreement: A has zero entitlement.
        let coordinator = Coordinator::new(Topology::star(1, 0.0), 0.0);
        let ctrl = AdmissionControl::new(
            0,
            &g.access_levels(),
            SchedulerConfig::community_default(),
            coordinator,
        );
        let cfg = L7Config {
            principal_names: vec!["S".into(), "A".into()],
            backends: HashMap::new(),
        };
        let redirector = L7Redirector::start("127.0.0.1:0", cfg, ctrl).unwrap();
        let client = HttpClient::new();

        let resp = client
            .get_no_follow(&format!("http://{}/org/Z/x", redirector.addr()))
            .unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);

        std::thread::sleep(Duration::from_millis(100));
        let resp = client
            .get_no_follow(&format!("http://{}/org/A/x", redirector.addr()))
            .unwrap();
        assert_eq!(resp.status, StatusCode::FOUND);
        let loc = resp.header_value("location").unwrap();
        assert!(
            loc.contains(&redirector.addr().to_string()),
            "zero-quota request must self-redirect, got {loc}"
        );
    }
}
