//! Layer-7 HTTP redirector (paper §4.1, final implicit-queuing design).
//!
//! The redirector sits between clients and the clustered servers. Clients
//! send every request to the redirector; for each one it consults the
//! window-scheduled admission control ([`covenant_coord::AdmissionControl`])
//! and answers with an HTTP `302 Found`:
//!
//! * **in quota** → `Location:` the assigned backend server, so the client
//!   re-issues the request there;
//! * **out of quota** → `Location:` the redirector's own address (a
//!   *self-redirect*), which implicitly queues the request at the client —
//!   the scheme the paper adopted after explicit queuing was found to bunch
//!   requests (§4.1).
//!
//! Requests are attributed to principals by URL prefix: `/org/<name>/…`,
//! mirroring the paper's "the request URL signifies the service being
//! requested".
//!
//! Two data planes implement this surface: the legacy thread-per-connection
//! [`L7Redirector`] and the thread-per-core [`ShardedL7`] reactor, which
//! batches admission verdicts per readiness wake.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explicit;
mod redirector;
mod shard;

pub use explicit::L7ExplicitRedirector;
pub use redirector::{L7Config, L7Redirector};
pub use shard::ShardedL7;
