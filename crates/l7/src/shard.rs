//! Thread-per-core L7 redirector on the readiness reactor.
//!
//! [`ShardedL7`] replaces the thread-per-connection [`crate::L7Redirector`]
//! data plane with N shards, each a single thread owning one `SO_REUSEPORT`
//! listener, one epoll instance, and one [`ShardCore`] — the enforcement
//! state machine with no mutex, because nothing else can touch it. The
//! kernel spreads connections across shards; admission verdicts for every
//! connection harvested from one readiness wake run back-to-back through
//! the shard's core (batched, zero locks, zero allocation on the hot path
//! once buffers warm up). Shards meet only inside the shared
//! [`Coordinator`] tree, at window boundaries, exactly like the paper's
//! distributed redirectors.
//!
//! The HTTP surface is deliberately the same as the legacy redirector —
//! `/org/<name>/…` parsed zero-copy, `302` to a backend when admitted,
//! `302` to self (implicit queuing) when deferred, `404` for unknown
//! principals — but the transport is keep-alive HTTP/1.1 with pipelining,
//! which is what lets a wake carry hundreds of verdicts.

use crate::redirector::parse_principal;
use crate::L7Config;
use covenant_agreements::{AccessLevels, PrincipalId};
use covenant_coord::{Coordinator, ShardCore};
use covenant_enforce::{ShardSnapshot, ShardStats};
use covenant_http::{header_block_end, parse_request_head};
use covenant_reactor::{
    reuseport_listener, set_rst_on_close, Epoll, Event, Interest, Io, RecvBuf, SendBuf, Slab,
    WakeFd, WakeHandle, WindowTicker,
};
use covenant_sched::SchedulerConfig;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Epoll token of the shard's wake eventfd.
const TOKEN_WAKE: u64 = 0;
/// Epoll token of the shard's `SO_REUSEPORT` listener.
const TOKEN_LISTEN: u64 = 1;
/// Connection tokens are slab keys offset past the fixed tokens.
const TOKEN_CONN_BASE: u64 = 2;

/// Per-connection receive cap: a request head must fit or the connection
/// is answered `400` and closed.
const RECV_LIMIT: usize = 64 * 1024;
/// Send backlog high-watermark: past this the shard stops *reading* from
/// the connection (pipelining backpressure) until a flush drains it.
const HIGH_WATER: usize = 256 * 1024;
/// Per-shard connection cap; accepts beyond it are shed with RST.
const MAX_CONNS: usize = 4096;

/// Canned non-redirect responses (keep-alive unless the request asked to
/// close; `400` always closes because framing is no longer trustworthy).
const RESP_404: &[u8] = b"HTTP/1.1 404 Not Found\r\ncontent-length: 0\r\n\r\n";
const RESP_503: &[u8] = b"HTTP/1.1 503 Service Unavailable\r\ncontent-length: 0\r\n\r\n";
const RESP_400: &[u8] = b"HTTP/1.1 400 Bad Request\r\ncontent-length: 0\r\nconnection: close\r\n\r\n";

/// One accepted connection's state machine.
struct L7Conn {
    stream: TcpStream,
    recv: RecvBuf,
    send: SendBuf,
    /// Resume cursor for the incremental `\r\n\r\n` scan.
    scan: usize,
    /// Interest currently registered with epoll.
    interest: Interest,
    /// Stop parsing; tear down once the send queue drains.
    close_after_flush: bool,
    /// Peer half-closed; flush what is pending, then tear down.
    read_closed: bool,
}

/// Everything one shard thread owns. No locks anywhere: the only shared
/// state is the stats block (written here, read elsewhere), the shed
/// counter, the stop flag, and the coordination tree inside `core`.
struct ShardRuntime {
    epoll: Epoll,
    wake: WakeFd,
    listener: TcpListener,
    conns: Slab<L7Conn>,
    core: ShardCore,
    stats: Arc<ShardStats>,
    shed: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    names: HashMap<String, usize>,
    /// `302` response prefix (through `location: http://<addr>`) per
    /// backend server index; the request path and a fixed suffix complete
    /// the response without formatting machinery.
    backend_prefix: HashMap<usize, Vec<u8>>,
    /// `302` prefix redirecting to this instance (implicit queuing).
    self_prefix: Vec<u8>,
    /// Response under construction (reused; avoids per-request allocs).
    scratch: Vec<u8>,
}

/// Outcome of inspecting the receive buffer for one request.
enum Parse {
    /// No complete head yet (or the connection is already closing).
    Wait,
    /// Head overflowed `RECV_LIMIT` without terminating: `400` + close.
    Overflow,
    /// A response for one parsed request is staged in `scratch`.
    Respond { consumed: usize, close: bool },
}

fn fill_redirect(scratch: &mut Vec<u8>, prefix: &[u8], path: &[u8]) {
    scratch.clear();
    scratch.extend_from_slice(prefix);
    scratch.extend_from_slice(path);
    scratch.extend_from_slice(b"\r\ncontent-length: 0\r\n\r\n");
}

fn fill_static(scratch: &mut Vec<u8>, resp: &[u8]) {
    scratch.clear();
    scratch.extend_from_slice(resp);
}

impl ShardRuntime {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut ticker = WindowTicker::new(self.core.window_secs());
        loop {
            let timeout = ticker.poll_timeout_ms(self.core.coordinator().now());
            if self.epoll.wait(&mut events, timeout).is_err() {
                break;
            }
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            // One clock sample serves the whole wake: every verdict in the
            // batch carries the same arrival time, same as a simulator
            // event batch at one virtual instant.
            let now = self.core.coordinator().now();
            let ticked = match ticker.due(now) {
                Some(boundary) => {
                    // Read-before-publish inside: one window stale, the
                    // same staleness the simulator models.
                    self.core.roll_window_at(None, boundary);
                    true
                }
                None => false,
            };
            let mut verdicts = 0u64;
            for i in 0..events.len() {
                let Some(ev) = events.get(i).copied() else {
                    break;
                };
                match ev.token {
                    TOKEN_WAKE => self.wake.drain(),
                    TOKEN_LISTEN => self.accept_ready(),
                    token => {
                        let Some(key) = token.checked_sub(TOKEN_CONN_BASE) else {
                            continue;
                        };
                        self.conn_ready(key as usize, ev, now, &mut verdicts);
                    }
                }
            }
            if !events.is_empty() || ticked {
                self.stats.record_wake(verdicts);
                self.stats.store_counters(&self.core.counters());
            }
        }
    }

    /// Drains the accept backlog. Past `MAX_CONNS` the connection is shed
    /// with RST immediately — a closed-loop client retries against
    /// another shard rather than queue-building here.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.conns.len() >= MAX_CONNS {
                        let _ = set_rst_on_close(&stream);
                        self.shed.fetch_add(1, Ordering::Relaxed);
                        self.stats.record_shed();
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let key = self.conns.insert(L7Conn {
                        stream,
                        recv: RecvBuf::with_capacity_limit(RECV_LIMIT),
                        send: SendBuf::new(),
                        scan: 0,
                        interest: Interest::READ,
                        close_after_flush: false,
                        read_closed: false,
                    });
                    let registered = match self.conns.get(key) {
                        Some(c) => self
                            .epoll
                            .add(&c.stream, key as u64 + TOKEN_CONN_BASE, Interest::READ)
                            .is_ok(),
                        None => false,
                    };
                    if !registered {
                        self.conns.remove(key);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break, // WouldBlock: backlog drained.
            }
        }
    }

    fn conn_ready(&mut self, key: usize, ev: Event, now: f64, verdicts: &mut u64) {
        if ev.error {
            self.teardown(key);
            return;
        }
        if ev.readable || ev.closed {
            let mut eof = false;
            let mut dead = false;
            match self.conns.get_mut(key) {
                Some(conn) => {
                    while !(conn.close_after_flush || conn.read_closed) {
                        match conn.recv.fill_from(&mut conn.stream) {
                            Ok(Io::Progress(_)) => {}
                            Ok(Io::WouldBlock) => break,
                            Ok(Io::Eof) => {
                                eof = true;
                                break;
                            }
                            Err(_) => {
                                dead = true;
                                break;
                            }
                        }
                        if conn.recv.is_full() {
                            break;
                        }
                    }
                }
                None => return,
            }
            if dead {
                self.teardown(key);
                return;
            }
            self.process_requests(key, now, verdicts);
            if eof {
                if let Some(conn) = self.conns.get_mut(key) {
                    conn.read_closed = true;
                }
            }
        }
        self.flush_and_update(key);
    }

    /// Parses and answers every complete pipelined request currently
    /// buffered — the per-wake verdict batch.
    fn process_requests(&mut self, key: usize, now: f64, verdicts: &mut u64) {
        loop {
            let step = {
                let Some(conn) = self.conns.get(key) else { return };
                if conn.close_after_flush {
                    Parse::Wait
                } else {
                    let data = conn.recv.data();
                    match header_block_end(data, conn.scan) {
                        None if conn.recv.is_full() => Parse::Overflow,
                        None => Parse::Wait,
                        Some(end) => match data.get(..end).map(parse_request_head) {
                            Some(Ok(head)) if head.content_length == 0 => {
                                match parse_principal(head.path, &self.names) {
                                    None => fill_static(&mut self.scratch, RESP_404),
                                    Some(p) => {
                                        *verdicts += 1;
                                        match self.core.try_admit_at(PrincipalId(p), None, now) {
                                            Some(server) => match self.backend_prefix.get(&server)
                                            {
                                                Some(prefix) => fill_redirect(
                                                    &mut self.scratch,
                                                    prefix,
                                                    head.path.as_bytes(),
                                                ),
                                                None => fill_static(&mut self.scratch, RESP_503),
                                            },
                                            None => fill_redirect(
                                                &mut self.scratch,
                                                &self.self_prefix,
                                                head.path.as_bytes(),
                                            ),
                                        }
                                    }
                                }
                                Parse::Respond { consumed: end, close: head.close }
                            }
                            // Bodies are outside the redirector's protocol;
                            // parse failures poison framing. Both close.
                            Some(_) | None => Parse::Overflow,
                        },
                    }
                }
            };
            match step {
                Parse::Wait => {
                    if let Some(conn) = self.conns.get_mut(key) {
                        conn.scan = conn.recv.len();
                    }
                    return;
                }
                Parse::Overflow => {
                    if let Some(conn) = self.conns.get_mut(key) {
                        conn.send.push(RESP_400);
                        conn.close_after_flush = true;
                    }
                    return;
                }
                Parse::Respond { consumed, close } => {
                    let Some(conn) = self.conns.get_mut(key) else { return };
                    conn.send.push(&self.scratch);
                    conn.recv.consume(consumed);
                    conn.scan = 0;
                    if close {
                        conn.close_after_flush = true;
                        return;
                    }
                    // Backpressure: past the high-watermark stop answering
                    // until the peer drains responses.
                    if conn.send.len() >= HIGH_WATER {
                        return;
                    }
                }
            }
        }
    }

    /// Flushes opportunistically, then reconciles epoll interest with the
    /// connection's state; tears down once a closing connection drains.
    fn flush_and_update(&mut self, key: usize) {
        let mut gone = false;
        let mut want = Interest::NONE;
        let mut cur = Interest::NONE;
        match self.conns.get_mut(key) {
            None => return,
            Some(conn) => {
                if !conn.send.is_empty() && conn.send.flush_into(&mut conn.stream).is_err() {
                    gone = true;
                }
                if !gone {
                    let drained = conn.send.is_empty();
                    if (conn.close_after_flush || conn.read_closed) && drained {
                        gone = true;
                    } else {
                        let paused = conn.send.len() >= HIGH_WATER;
                        if !(conn.close_after_flush || conn.read_closed || paused) {
                            want = want | Interest::READ;
                        }
                        if !drained {
                            want = want | Interest::WRITE;
                        }
                        cur = conn.interest;
                    }
                }
            }
        }
        if gone {
            self.teardown(key);
            return;
        }
        if want != cur {
            if let Some(conn) = self.conns.get_mut(key) {
                if self.epoll.modify(&conn.stream, key as u64 + TOKEN_CONN_BASE, want).is_ok() {
                    conn.interest = want;
                } else {
                    gone = true;
                }
            }
            if gone {
                self.teardown(key);
            }
        }
    }

    fn teardown(&mut self, key: usize) {
        if let Some(conn) = self.conns.remove(key) {
            let _ = self.epoll.remove(&conn.stream);
        }
    }
}

/// A running sharded L7 redirector: N reactor threads behind one
/// `SO_REUSEPORT` address, enforcing one agreement graph through the
/// shared coordination tree (shard *i* publishes as tree node *i* — the
/// coordinator's topology must have at least `shards` nodes).
pub struct ShardedL7 {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    wakes: Vec<WakeHandle>,
    handles: Vec<JoinHandle<()>>,
    stats: Vec<Arc<ShardStats>>,
    shed: Arc<AtomicU64>,
}

impl ShardedL7 {
    /// Binds `shards` reuseport listeners on `bind` and starts one
    /// reactor thread per shard. Window rolls are driven inside each
    /// shard's event loop (no daemon thread).
    pub fn start(
        bind: &str,
        cfg: L7Config,
        shards: usize,
        levels: &AccessLevels,
        sched: SchedulerConfig,
        coordinator: Coordinator,
    ) -> io::Result<ShardedL7> {
        ShardedL7::start_at(bind, cfg, shards, levels, sched, coordinator, 0)
    }

    /// Like [`Self::start`], but shard *i* publishes as tree node
    /// `base_node + i` — multiple redirector instances (or cluster
    /// processes) can share one coordination tree without colliding on
    /// leaf ids.
    #[allow(clippy::too_many_arguments)]
    pub fn start_at(
        bind: &str,
        cfg: L7Config,
        shards: usize,
        levels: &AccessLevels,
        sched: SchedulerConfig,
        coordinator: Coordinator,
        base_node: usize,
    ) -> io::Result<ShardedL7> {
        let shards = shards.max(1);
        let requested: SocketAddr = bind
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        // Shard 0 resolves port 0; the rest must share the concrete port.
        let first = reuseport_listener(requested)?;
        let addr = first.local_addr()?;
        let mut listeners = vec![first];
        for _ in 1..shards {
            listeners.push(reuseport_listener(addr)?);
        }

        let names: HashMap<String, usize> = cfg
            .principal_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        let backend_prefix: HashMap<usize, Vec<u8>> = cfg
            .backends
            .iter()
            .map(|(&server, baddr)| {
                (server, format!("HTTP/1.1 302 Found\r\nlocation: http://{baddr}").into_bytes())
            })
            .collect();
        let self_prefix = format!("HTTP/1.1 302 Found\r\nlocation: http://{addr}").into_bytes();

        let stop = Arc::new(AtomicBool::new(false));
        let shed = Arc::new(AtomicU64::new(0));
        let mut wakes = Vec::new();
        let mut stats = Vec::new();
        let mut handles = Vec::new();
        let spawn_result: io::Result<()> = (|| {
            for (node, listener) in listeners.into_iter().enumerate() {
                let epoll = Epoll::new()?;
                let (wake, handle) = WakeFd::new()?;
                epoll.add(&wake, TOKEN_WAKE, Interest::READ)?;
                epoll.add(&listener, TOKEN_LISTEN, Interest::READ)?;
                let shard_stats = Arc::new(ShardStats::new());
                let runtime = ShardRuntime {
                    epoll,
                    wake,
                    listener,
                    conns: Slab::new(),
                    core: ShardCore::new(base_node + node, levels, sched.clone(), coordinator.clone()),
                    stats: Arc::clone(&shard_stats),
                    shed: Arc::clone(&shed),
                    stop: Arc::clone(&stop),
                    names: names.clone(),
                    backend_prefix: backend_prefix.clone(),
                    self_prefix: self_prefix.clone(),
                    scratch: Vec::new(),
                };
                let joiner = std::thread::Builder::new()
                    .name(format!("l7-shard-{node}"))
                    .spawn(move || runtime.run())?;
                wakes.push(handle);
                stats.push(shard_stats);
                handles.push(joiner);
            }
            Ok(())
        })();
        let mut this = ShardedL7 { addr, stop, wakes, handles, stats, shed };
        if let Err(e) = spawn_result {
            this.shutdown();
            return Err(e);
        }
        Ok(this)
    }

    /// The shared bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.stats.len()
    }

    /// Point-in-time per-shard snapshots (counters plus wake/batch
    /// telemetry), ordered by shard index — feed these to
    /// `live_counters_sharded_json`.
    pub fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        self.stats.iter().map(|s| s.snapshot()).collect()
    }

    /// Connections shed with RST at the per-shard cap.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Signals every shard and joins their threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        for w in &self.wakes {
            w.wake();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ShardedL7 {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covenant_agreements::AgreementGraph;
    use covenant_http::{HttpClient, StatusCode};
    use covenant_tree::Topology;
    use std::io::{Read, Write};
    use std::time::{Duration, Instant};

    fn shared_origin_levels(capacity: f64, share_a: f64, share_b: f64) -> AccessLevels {
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", capacity);
        let _a = g.add_principal("A", 0.0);
        let _b = g.add_principal("B", 0.0);
        g.add_agreement(s, PrincipalId(1), share_a, 1.0).unwrap();
        g.add_agreement(s, PrincipalId(2), share_b, 1.0).unwrap();
        g.access_levels()
    }

    fn cfg(backend: Option<SocketAddr>) -> L7Config {
        L7Config {
            principal_names: vec!["S".into(), "A".into(), "B".into()],
            backends: backend.map(|a| (0usize, a)).into_iter().collect(),
        }
    }

    /// The legacy end-to-end enforcement test, against two reactor shards:
    /// each `get_no_follow` is a fresh connection, so the kernel spreads
    /// the two flooding principals across both shards, and the aggregate
    /// admission ratio must still honor the 3:1 agreement.
    #[test]
    fn sharded_l7_enforces_shares_end_to_end() {
        let levels = shared_origin_levels(200.0, 0.25, 0.75);
        let coordinator = Coordinator::new(Topology::star(2, 0.0), 0.0);
        let backend: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let l7 = ShardedL7::start(
            "127.0.0.1:0",
            cfg(Some(backend)),
            2,
            &levels,
            SchedulerConfig::community_default(),
            coordinator,
        )
        .unwrap();
        let raddr = l7.addr();

        let deadline = Instant::now() + Duration::from_secs(3);
        let mut joiners = Vec::new();
        for name in ["A", "B"] {
            joiners.push(std::thread::spawn(move || {
                let client = HttpClient::new();
                let url = format!("http://{raddr}/org/{name}/page");
                let backend_str = backend.to_string();
                let mut admitted = 0u64;
                while Instant::now() < deadline {
                    if let Ok(resp) = client.get_no_follow(&url) {
                        if resp.status == StatusCode::FOUND {
                            let loc = resp.header_value("location").unwrap_or("");
                            if loc.contains(&backend_str) {
                                admitted += 1;
                            }
                        }
                    }
                }
                admitted
            }));
        }
        let got_a = joiners.remove(0).join().unwrap();
        let got_b = joiners.remove(0).join().unwrap();
        let ratio = got_b as f64 / got_a.max(1) as f64;
        assert!(
            (2.0..=4.5).contains(&ratio),
            "B/A admitted ratio {ratio:.2} (A={got_a}, B={got_b})"
        );
        let total = got_a + got_b;
        assert!(total <= 850, "admitted {total} > capacity budget");
        assert!(total >= 300, "admitted only {total}; scheduler stuck?");

        // Both shards saw traffic and counters aggregate coherently. Stats
        // land at the *end* of a wake, after the responses those verdicts
        // produced have already flushed — so poll briefly for the final
        // store instead of racing it.
        let stats_deadline = Instant::now() + Duration::from_secs(2);
        let snaps = loop {
            let snaps = l7.shard_snapshots();
            let admitted: u64 = snaps.iter().map(|s| s.counters.admitted).sum();
            if admitted >= total || Instant::now() >= stats_deadline {
                break snaps;
            }
            std::thread::yield_now();
        };
        assert_eq!(snaps.len(), 2);
        let verdicts: u64 = snaps.iter().map(|s| s.batched_verdicts).sum();
        let admitted: u64 = snaps.iter().map(|s| s.counters.admitted).sum();
        assert!(verdicts >= total, "verdicts {verdicts} < admissions {total}");
        assert!(admitted >= total, "counter admitted {admitted} < observed {total}");
        assert!(
            snaps.iter().all(|s| s.batched_verdicts > 0),
            "a shard saw no traffic: {snaps:?}"
        );
    }

    /// One keep-alive connection pipelines a burst of requests in a single
    /// write; the shard must answer every one (302 either way — backend or
    /// self-redirect) while coalescing the batch into far fewer wakes than
    /// verdicts. This is the mechanism behind the throughput headline.
    #[test]
    fn pipelined_burst_batches_verdicts_per_wake() {
        let levels = shared_origin_levels(1000.0, 0.5, 0.5);
        let coordinator = Coordinator::new(Topology::star(1, 0.0), 0.0);
        let backend: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let l7 = ShardedL7::start(
            "127.0.0.1:0",
            cfg(Some(backend)),
            1,
            &levels,
            SchedulerConfig::community_default(),
            coordinator,
        )
        .unwrap();

        const BURST: usize = 200;
        let mut sock = TcpStream::connect(l7.addr()).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let one = b"GET /org/A/page HTTP/1.1\r\nhost: x\r\n\r\n";
        let mut burst = Vec::new();
        for _ in 0..BURST {
            burst.extend_from_slice(one);
        }
        sock.write_all(&burst).unwrap();

        // Count response terminators (every response is header-only).
        let mut terminators = 0usize;
        let mut carry: Vec<u8> = Vec::new();
        let mut buf = [0u8; 16 * 1024];
        let mut total = Vec::new();
        while terminators < BURST {
            let n = sock.read(&mut buf).unwrap();
            assert!(n > 0, "server closed early after {terminators} responses");
            carry.extend_from_slice(&buf[..n]);
            total.extend_from_slice(&buf[..n]);
            terminators += carry.windows(4).filter(|w| w == b"\r\n\r\n").count();
            let keep = carry.len().min(3);
            carry = carry[carry.len() - keep..].to_vec();
        }
        assert_eq!(terminators, BURST);
        let text = String::from_utf8_lossy(&total);
        assert!(text.contains("HTTP/1.1 302 Found"), "no 302 in burst: {text}");
        assert!(!text.contains("404"), "unexpected 404: {text}");

        // Stats are stored at the end of the wake, after responses have
        // already flushed — poll briefly for the final store.
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut snap = l7.shard_snapshots().remove(0);
        while snap.batched_verdicts < BURST as u64 && Instant::now() < deadline {
            std::thread::yield_now();
            snap = l7.shard_snapshots().remove(0);
        }
        assert_eq!(snap.batched_verdicts, BURST as u64);
        assert!(
            snap.reactor_wakes <= BURST as u64 / 2,
            "no batching: {} wakes for {BURST} verdicts",
            snap.reactor_wakes
        );
    }

    /// Framing violations (a body, a garbage request line) answer 400 and
    /// close; unknown principals answer 404 but keep the connection alive.
    #[test]
    fn protocol_errors_and_unknown_principals() {
        let levels = shared_origin_levels(100.0, 0.5, 0.5);
        let coordinator = Coordinator::new(Topology::star(1, 0.0), 0.0);
        let l7 = ShardedL7::start(
            "127.0.0.1:0",
            cfg(None),
            1,
            &levels,
            SchedulerConfig::community_default(),
            coordinator,
        )
        .unwrap();

        // 404 twice on one keep-alive connection.
        let mut sock = TcpStream::connect(l7.addr()).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        for _ in 0..2 {
            sock.write_all(b"GET /other HTTP/1.1\r\nhost: x\r\n\r\n").unwrap();
            let mut buf = [0u8; 1024];
            let n = sock.read(&mut buf).unwrap();
            assert!(buf[..n].starts_with(b"HTTP/1.1 404"), "{:?}", &buf[..n]);
        }

        // A request with a body is rejected and the connection closed.
        let mut sock = TcpStream::connect(l7.addr()).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        sock.write_all(b"POST /org/A/x HTTP/1.1\r\ncontent-length: 3\r\n\r\nabc")
            .unwrap();
        let mut resp = Vec::new();
        sock.read_to_end(&mut resp).unwrap(); // EOF proves the close.
        assert!(resp.starts_with(b"HTTP/1.1 400"), "{resp:?}");
    }
}
