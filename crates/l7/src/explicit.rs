//! The paper's *first* L7 implementation: explicit per-principal queuing.
//!
//! Incoming requests are held (their handler threads block) until the next
//! window's scheduling decision releases them, at which point the waiting
//! client receives its `302` to the assigned backend. §4.1 describes why
//! the paper ultimately abandoned this scheme — releasing a whole window's
//! quota at once *bunches* requests at the servers — but it is preserved
//! here as a working prototype so the comparison can be reproduced over
//! real sockets, not just in the simulator.

use covenant_agreements::PrincipalId;
use covenant_coord::{AdmissionControl, DaemonHooks, WindowDaemon};
use covenant_enforce::reinject_fifo;
use covenant_http::{handler, HttpError, HttpResponse, HttpServer, StatusCode};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::net::SocketAddr;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use crate::redirector::parse_principal;

/// A waiting request: the channel its handler thread blocks on.
type Waiter = mpsc::SyncSender<usize>;

/// Shared queue state.
struct Queues {
    waiting: Mutex<Vec<VecDeque<Waiter>>>,
}

impl Queues {
    fn lengths(&self, n: usize) -> Vec<f64> {
        let w = self.waiting.lock();
        (0..n).map(|i| w[i].len() as f64).collect()
    }
}

/// A running explicit-queue Layer-7 redirector.
pub struct L7ExplicitRedirector {
    server: HttpServer,
    daemon: WindowDaemon,
    queues: Arc<Queues>,
}

impl L7ExplicitRedirector {
    /// Binds the redirector on `bind`. `principal_names` and `backends`
    /// have the same meaning as in [`crate::L7Config`]; `max_wait` bounds
    /// how long a request may sit queued before the client is told to
    /// retry (503).
    pub fn start(
        bind: &str,
        principal_names: Vec<String>,
        backends: HashMap<usize, SocketAddr>,
        ctrl: Arc<AdmissionControl>,
        max_wait: Duration,
    ) -> Result<Self, HttpError> {
        let n = principal_names.len();
        let queues = Arc::new(Queues {
            waiting: Mutex::new((0..n).map(|_| VecDeque::new()).collect()),
        });
        let name_to_id: HashMap<String, usize> = principal_names
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i))
            .collect();

        let q_handler = Arc::clone(&queues);
        let ctrl_handler = Arc::clone(&ctrl);
        let h = handler(move |req, _peer| {
            let Some(principal) = parse_principal(&req.path, &name_to_id) else {
                return HttpResponse::status(StatusCode::NOT_FOUND);
            };
            ctrl_handler.note_arrival(PrincipalId(principal));
            // Park: block this handler thread until the window drain
            // releases us with a server assignment.
            let (tx, rx) = mpsc::sync_channel(1);
            q_handler.waiting.lock()[principal].push_back(tx);
            match rx.recv_timeout(max_wait) {
                Ok(server) => match backends.get(&server) {
                    Some(addr) => HttpResponse::redirect(format!("http://{addr}{}", req.path)),
                    None => HttpResponse::status(StatusCode::SERVICE_UNAVAILABLE),
                },
                Err(_) => HttpResponse::status(StatusCode::SERVICE_UNAVAILABLE),
            }
        });
        let server = HttpServer::bind(bind, h)?;

        // Daemon: publish queue lengths as demand; after each roll, release
        // waiters against the fresh window quota.
        let q_backlog = Arc::clone(&queues);
        let q_drain = Arc::clone(&queues);
        let ctrl_drain = Arc::clone(&ctrl);
        let hooks = DaemonHooks {
            backlog: Some(Box::new(move || q_backlog.lengths(n))),
            after_roll: Some(Box::new(move || {
                // The shared FIFO reinjection loop: per principal, release
                // waiters while the gate admits, stop at the first defer.
                // `readmit` takes the admission lock while `waiting` is
                // held — declare the edge for the lock-order pass.
                // covenant: lock-order(waiting < inner)
                let mut waiting = q_drain.waiting.lock();
                reinject_fifo(
                    n,
                    &mut *waiting,
                    |i, _waiter: &Waiter| ctrl_drain.readmit(PrincipalId(i), None),
                    |waiter, server| {
                        // A dead waiter (client timed out) just drops the
                        // send; its quota is consumed, matching the
                        // paper's accounting.
                        let _ = waiter.send(server);
                    },
                );
            })),
        };
        let window = Duration::from_secs_f64(ctrl.window_secs());
        let daemon = WindowDaemon::start(ctrl, window, hooks)?;
        Ok(L7ExplicitRedirector { server, daemon, queues })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Currently queued (blocked) requests per principal.
    pub fn queue_lengths(&self) -> Vec<f64> {
        let n = self.queues.waiting.lock().len();
        self.queues.lengths(n)
    }

    /// Stops the daemon and the server.
    pub fn shutdown(&mut self) {
        self.daemon.shutdown();
        self.server.shutdown();
    }
}

impl Drop for L7ExplicitRedirector {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covenant_agreements::AgreementGraph;
    use covenant_coord::Coordinator;
    use covenant_http::{HttpClient, OriginServer};
    use covenant_sched::SchedulerConfig;
    use covenant_tree::Topology;
    use std::time::Instant;

    #[test]
    fn explicit_queue_releases_within_quota() {
        // Server 100 req/s; A entitled to half. Requests are *held* at the
        // redirector (never self-redirected) and released at window
        // boundaries.
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 100.0);
        let a = g.add_principal("A", 0.0);
        g.add_agreement(s, a, 0.5, 1.0).unwrap();
        let origin =
            OriginServer::bind("127.0.0.1:0", 1000.0, 32, Duration::from_secs(1)).unwrap();
        let ctrl = AdmissionControl::new(
            0,
            &g.access_levels(),
            SchedulerConfig::community_default(),
            Coordinator::new(Topology::star(1, 0.0), 0.0),
        );
        let redirector = L7ExplicitRedirector::start(
            "127.0.0.1:0",
            vec!["S".into(), "A".into()],
            [(0, origin.addr())].into(),
            ctrl,
            Duration::from_secs(3),
        )
        .unwrap();
        let addr = redirector.addr();

        // Sequential client: each fetch blocks inside the redirector until
        // released, then follows the 302 to the origin.
        let client = HttpClient::new();
        let mut completed = 0;
        let deadline = Instant::now() + Duration::from_secs(3);
        while Instant::now() < deadline {
            if let Ok(r) = client.get(&format!("http://{addr}/org/A/x")) {
                if r.response.status == StatusCode::OK {
                    assert_eq!(r.redirects, 1, "exactly one hop: redirector -> origin");
                    completed += 1;
                }
            }
        }
        // A sequential closed loop completes roughly one request per
        // window (released at the boundary): ~10/s at 100 ms windows.
        assert!(completed >= 15, "only {completed} completed");
        assert!(completed <= 45, "{completed} completed: queuing not explicit?");
    }

    #[test]
    fn unknown_principal_still_404s() {
        let mut g = AgreementGraph::new();
        let _s = g.add_principal("S", 10.0);
        let ctrl = AdmissionControl::new(
            0,
            &g.access_levels(),
            SchedulerConfig::community_default(),
            Coordinator::new(Topology::star(1, 0.0), 0.0),
        );
        let redirector = L7ExplicitRedirector::start(
            "127.0.0.1:0",
            vec!["S".into()],
            HashMap::new(),
            ctrl,
            Duration::from_millis(200),
        )
        .unwrap();
        let resp = HttpClient::new()
            .get_no_follow(&format!("http://{}/org/nobody/x", redirector.addr()))
            .unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn zero_quota_requests_time_out_with_503() {
        let mut g = AgreementGraph::new();
        let _s = g.add_principal("S", 100.0);
        let _a = g.add_principal("A", 0.0); // no agreement: zero quota
        let ctrl = AdmissionControl::new(
            0,
            &g.access_levels(),
            SchedulerConfig::community_default(),
            Coordinator::new(Topology::star(1, 0.0), 0.0),
        );
        let redirector = L7ExplicitRedirector::start(
            "127.0.0.1:0",
            vec!["S".into(), "A".into()],
            HashMap::new(),
            ctrl,
            Duration::from_millis(300),
        )
        .unwrap();
        let resp = HttpClient::new()
            .get_no_follow(&format!("http://{}/org/A/x", redirector.addr()))
            .unwrap();
        assert_eq!(resp.status, StatusCode::SERVICE_UNAVAILABLE);
    }
}
