//! Property tests for workload generation.

use covenant_agreements::PrincipalId;
use covenant_workload::{merge_streams, ClientMachine, PhasedLoad, ReplySizes};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn load_strategy() -> impl Strategy<Value = PhasedLoad> {
    proptest::collection::vec((0.1..20.0f64, 0.0..300.0f64), 1..5).prop_map(|phases| {
        phases
            .into_iter()
            .fold(PhasedLoad::new(), |l, (d, r)| l.then(d, r))
    })
}

proptest! {
    /// Uniform arrivals are strictly increasing, inside the schedule, and
    /// match the expected count within one request per phase.
    #[test]
    fn uniform_arrivals_match_schedule(load in load_strategy()) {
        let c = ClientMachine::uniform(0, PrincipalId(0), load.clone());
        let arr = c.arrivals();
        prop_assert!(arr.windows(2).all(|w| w[0].time < w[1].time));
        for a in &arr {
            prop_assert!(a.time >= 0.0 && a.time <= load.total_duration());
            prop_assert!(load.rate_at(a.time) > 0.0, "arrival in idle phase at {}", a.time);
        }
        let expected = load.expected_requests();
        let slack = load.phases().len() as f64 + 1.0;
        prop_assert!((arr.len() as f64 - expected).abs() <= slack,
            "count {} vs expected {expected}", arr.len());
    }

    /// Poisson arrivals stay inside active phases and land within 20% of
    /// the expected request count (for schedules with enough mass).
    #[test]
    fn poisson_arrivals_match_rate(load in load_strategy(), seed in 0u64..1000) {
        let c = ClientMachine::poisson(1, PrincipalId(0), load.clone(), seed);
        let arr = c.arrivals();
        for a in &arr {
            prop_assert!(load.rate_at(a.time) > 0.0);
        }
        let expected = load.expected_requests();
        if expected > 500.0 {
            prop_assert!((arr.len() as f64 - expected).abs() < expected * 0.2,
                "count {} vs expected {expected}", arr.len());
        }
    }

    /// The lazy stream and the materialized trace are the same sequence,
    /// for both arrival processes and arbitrary schedules.
    #[test]
    fn stream_equals_materialized(load in load_strategy(), seed in 0u64..1000) {
        for c in [
            ClientMachine::uniform(2, PrincipalId(0), load.clone()),
            ClientMachine::poisson(2, PrincipalId(0), load.clone(), seed),
        ] {
            let streamed: Vec<_> = c.stream().collect();
            prop_assert_eq!(&streamed, &c.arrivals());
        }
    }

    /// Merging preserves every arrival and produces global time order.
    #[test]
    fn merge_preserves_and_orders(loads in proptest::collection::vec(load_strategy(), 1..4)) {
        let streams: Vec<_> = loads
            .iter()
            .enumerate()
            .map(|(i, l)| ClientMachine::uniform(i, PrincipalId(i), l.clone()).arrivals())
            .collect();
        let total: usize = streams.iter().map(|s| s.len()).sum();
        let merged = merge_streams(streams);
        prop_assert_eq!(merged.len(), total);
        prop_assert!(merged.windows(2).all(|w| w[0].time <= w[1].time));
    }

    /// Capping a schedule caps every phase's realized rate.
    #[test]
    fn capped_schedule_respects_cap(load in load_strategy(), cap in 1.0..50.0f64) {
        let capped = load.capped(cap);
        for p in capped.phases() {
            prop_assert!(p.rate <= cap);
        }
        prop_assert!(capped.expected_requests() <= load.expected_requests() + 1e-9);
    }

    /// Reply sizes always honor the clamp bounds.
    #[test]
    fn reply_sizes_clamped(seed in any::<u64>()) {
        let d = ReplySizes::default();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..256 {
            let s = d.sample(&mut rng);
            prop_assert!((d.min_bytes..=d.max_bytes).contains(&s));
        }
    }
}
