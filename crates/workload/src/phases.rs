//! Piecewise-constant load schedules.

use serde::{Deserialize, Serialize};

/// One phase of a load schedule: a constant request rate for a duration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Length of the phase in seconds.
    pub duration: f64,
    /// Offered request rate during the phase, requests/second.
    pub rate: f64,
}

/// A piecewise-constant request-rate schedule (the experiment phases of the
/// paper's Figures 6–10).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PhasedLoad {
    phases: Vec<Phase>,
}

impl PhasedLoad {
    /// An empty (always-zero) schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// A single constant-rate phase.
    pub fn constant(rate: f64, duration: f64) -> Self {
        PhasedLoad::new().then(duration, rate)
    }

    /// Appends a phase; builder style.
    pub fn then(mut self, duration: f64, rate: f64) -> Self {
        assert!(duration >= 0.0 && duration.is_finite(), "bad duration {duration}");
        assert!(rate >= 0.0 && rate.is_finite(), "bad rate {rate}");
        self.phases.push(Phase { duration, rate });
        self
    }

    /// Appends an idle (zero-rate) phase.
    pub fn idle(self, duration: f64) -> Self {
        self.then(duration, 0.0)
    }

    /// The phases.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total schedule length in seconds.
    pub fn total_duration(&self) -> f64 {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// The offered rate at time `t` (0 beyond the schedule end).
    pub fn rate_at(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for p in &self.phases {
            if t < acc + p.duration {
                return p.rate;
            }
            acc += p.duration;
        }
        0.0
    }

    /// Index of the phase containing time `t`, if any.
    pub fn phase_at(&self, t: f64) -> Option<usize> {
        if t < 0.0 {
            return None;
        }
        let mut acc = 0.0;
        for (i, p) in self.phases.iter().enumerate() {
            if t < acc + p.duration {
                return Some(i);
            }
            acc += p.duration;
        }
        None
    }

    /// Expected total number of requests over the whole schedule.
    pub fn expected_requests(&self) -> f64 {
        self.phases.iter().map(|p| p.duration * p.rate).sum()
    }

    /// Caps every phase's rate at `cap` (the per-client machine limit: the
    /// paper's proxied WebBench clients top out at 135 req/s on L7 and
    /// 400 req/s on L4).
    pub fn capped(&self, cap: f64) -> PhasedLoad {
        PhasedLoad {
            phases: self
                .phases
                .iter()
                .map(|p| Phase { duration: p.duration, rate: p.rate.min(cap) })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_lookup_per_phase() {
        let l = PhasedLoad::new().then(10.0, 100.0).idle(5.0).then(10.0, 50.0);
        assert_eq!(l.rate_at(-1.0), 0.0);
        assert_eq!(l.rate_at(0.0), 100.0);
        assert_eq!(l.rate_at(9.999), 100.0);
        assert_eq!(l.rate_at(10.0), 0.0);
        assert_eq!(l.rate_at(15.0), 50.0);
        assert_eq!(l.rate_at(24.999), 50.0);
        assert_eq!(l.rate_at(25.0), 0.0);
        assert_eq!(l.total_duration(), 25.0);
    }

    #[test]
    fn phase_index() {
        let l = PhasedLoad::new().then(10.0, 1.0).then(10.0, 2.0);
        assert_eq!(l.phase_at(5.0), Some(0));
        assert_eq!(l.phase_at(15.0), Some(1));
        assert_eq!(l.phase_at(25.0), None);
        assert_eq!(l.phase_at(-0.1), None);
    }

    #[test]
    fn expected_request_count() {
        let l = PhasedLoad::new().then(10.0, 100.0).idle(100.0).then(2.0, 5.0);
        assert_eq!(l.expected_requests(), 1010.0);
    }

    #[test]
    fn capping_limits_rates() {
        let l = PhasedLoad::new().then(10.0, 400.0).then(10.0, 50.0);
        let c = l.capped(135.0);
        assert_eq!(c.rate_at(5.0), 135.0);
        assert_eq!(c.rate_at(15.0), 50.0);
    }

    #[test]
    fn constant_schedule() {
        let l = PhasedLoad::constant(320.0, 60.0);
        assert_eq!(l.rate_at(30.0), 320.0);
        assert_eq!(l.total_duration(), 60.0);
    }
}
