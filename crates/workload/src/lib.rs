//! Synthetic workload generation in the style of WebBench.
//!
//! The paper evaluates with WebBench 4.01: client machines generating
//! static/dynamic web requests with an average reply size of 6 KB
//! (individual responses 200 B – 500 KB), phased on and off to exercise the
//! schedulers' adaptivity. This crate reproduces that substrate:
//!
//! * [`PhasedLoad`] — a piecewise-constant request-rate schedule (the
//!   "phase 1 / phase 2 / phase 3" structures of Figures 6–10);
//! * [`ClientMachine`] — one load generator with a per-client rate cap
//!   (135 req/s for the L7 experiments' proxied WebBench clients, 400 req/s
//!   for L4) and a deterministic or Poisson arrival process;
//! * [`ReplySizes`] — the reply-size distribution (log-normal body clamped
//!   to [200 B, 500 KB], calibrated to a ~6 KB mean);
//! * [`merge_streams`] — a k-way merge of client arrival streams into one
//!   time-ordered request trace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod phases;
mod sizes;

pub use client::{merge_streams, Arrival, ArrivalProcess, ArrivalStream, ClientMachine};
pub use phases::{Phase, PhasedLoad};
pub use sizes::ReplySizes;
