//! Reply-size distribution: log-normal clamped to [200 B, 500 KB], with a
//! ~6 KB mean — matching the paper's WebBench configuration ("static and
//! dynamic web page requests with an average reply size of 6 KB; individual
//! responses range from 200 bytes to 500 KB").

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Reply-size sampler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplySizes {
    /// μ of the underlying normal (of ln size-in-bytes).
    pub mu: f64,
    /// σ of the underlying normal.
    pub sigma: f64,
    /// Lower clamp, bytes.
    pub min_bytes: u64,
    /// Upper clamp, bytes.
    pub max_bytes: u64,
}

impl Default for ReplySizes {
    /// Parameters calibrated so the clamped mean lands near 6 KB: web reply
    /// sizes are heavy-tailed, so the median (~e^μ ≈ 2.7 KB) sits well below
    /// the mean.
    fn default() -> Self {
        ReplySizes { mu: 7.9, sigma: 1.25, min_bytes: 200, max_bytes: 500 * 1024 }
    }
}

impl ReplySizes {
    /// Samples one reply size in bytes.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Box–Muller: two uniforms → one standard normal.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let size = (self.mu + self.sigma * z).exp();
        (size as u64).clamp(self.min_bytes, self.max_bytes)
    }

    /// Scheduling cost of a reply of `bytes`, in average-request units
    /// ("large requests are treated as multiple small ones"): 1 unit per
    /// average reply, rounded up in units of the mean.
    pub fn cost_units(&self, bytes: u64, mean_bytes: f64) -> f64 {
        (bytes as f64 / mean_bytes).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_respect_clamps() {
        let d = ReplySizes::default();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((200..=500 * 1024).contains(&s), "size {s} out of range");
        }
    }

    #[test]
    fn mean_is_near_six_kb() {
        let d = ReplySizes::default();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let total: u64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        // WebBench's configured mean is 6 KB = 6144 B; accept ±25%.
        assert!(
            (4600.0..=7700.0).contains(&mean),
            "sampled mean {mean:.0} B too far from 6 KB"
        );
    }

    #[test]
    fn sizes_are_heavy_tailed() {
        let d = ReplySizes::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut sizes: Vec<u64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2] as f64;
        let mean = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
        assert!(mean > 1.3 * median, "mean {mean:.0} vs median {median:.0}: not heavy-tailed");
    }

    #[test]
    fn cost_units_scale_with_size() {
        let d = ReplySizes::default();
        assert_eq!(d.cost_units(1000, 6144.0), 1.0); // small requests cost 1
        assert!((d.cost_units(61440, 6144.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_with_seed() {
        let d = ReplySizes::default();
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
