//! Client machines: arrival-process generators over phased schedules.

use crate::PhasedLoad;
use covenant_agreements::PrincipalId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How request inter-arrival times are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Evenly spaced arrivals at the phase rate (WebBench-style closed
    /// pacing; deterministic, ideal for figure reproduction).
    Uniform,
    /// Poisson arrivals with the phase rate as intensity.
    Poisson {
        /// RNG seed, so traces are reproducible.
        seed: u64,
    },
}

/// One generated request arrival.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arrival {
    /// Arrival time, seconds since run start.
    pub time: f64,
    /// The principal this client's requests are funded by.
    pub principal: PrincipalId,
    /// Index of the generating client machine.
    pub client: usize,
}

/// A synthetic client machine bound to one principal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientMachine {
    /// Client index (for tracing and affinity experiments).
    pub id: usize,
    /// Principal whose agreements fund these requests.
    pub principal: PrincipalId,
    /// Offered-load schedule (already capped at the machine's ability).
    pub load: PhasedLoad,
    /// Arrival process.
    pub process: ArrivalProcess,
}

impl ClientMachine {
    /// A uniformly pacing client.
    pub fn uniform(id: usize, principal: PrincipalId, load: PhasedLoad) -> Self {
        ClientMachine { id, principal, load, process: ArrivalProcess::Uniform }
    }

    /// A Poisson client with a per-client seed.
    pub fn poisson(id: usize, principal: PrincipalId, load: PhasedLoad, seed: u64) -> Self {
        ClientMachine { id, principal, load, process: ArrivalProcess::Poisson { seed } }
    }

    /// A lazy, arrival-at-a-time view of this client's trace.
    ///
    /// The stream generates exactly the sequence [`ClientMachine::arrivals`]
    /// materializes — same arithmetic, same RNG consumption order — so a
    /// consumer holding one pending arrival per client (the simulator's
    /// event heap) sees identical timestamps without ever allocating the
    /// full trace. Memory is O(1) per client instead of O(total requests).
    pub fn stream(&self) -> ArrivalStream {
        let state = match self.process {
            ArrivalProcess::Uniform => StreamState::Uniform {
                phases: self.load.phases().to_vec(),
                idx: 0,
                phase_start: 0.0,
                next_t: f64::NAN,
                entered: false,
            },
            ArrivalProcess::Poisson { seed } => {
                let rng = StdRng::seed_from_u64(
                    seed ^ (self.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                // Piecewise-homogeneous Poisson: sample within the current
                // phase; an exponential that crosses the phase boundary is
                // clipped there and resampled at the new rate (valid by
                // memorylessness). Naively letting it overshoot would
                // undersample high-rate phases that follow quiet ones.
                let boundaries: Vec<f64> = self
                    .load
                    .phases()
                    .iter()
                    .scan(0.0, |acc, p| {
                        *acc += p.duration;
                        Some(*acc)
                    })
                    .collect();
                StreamState::Poisson {
                    rng,
                    boundaries,
                    load: self.load.clone(),
                    t: 0.0,
                    end: self.load.total_duration(),
                }
            }
        };
        ArrivalStream { principal: self.principal, client: self.id, state }
    }

    /// Materializes the full arrival trace for this client.
    ///
    /// Collects [`ClientMachine::stream`]; kept for consumers that want the
    /// whole trace at once (tests, trace export).
    pub fn arrivals(&self) -> Vec<Arrival> {
        self.stream().collect()
    }
}

/// Lazy arrival generator state. See [`ClientMachine::stream`].
#[derive(Debug, Clone)]
enum StreamState {
    Uniform {
        phases: Vec<crate::Phase>,
        /// Current phase index.
        idx: usize,
        /// Absolute start time of the current phase.
        phase_start: f64,
        /// Next candidate arrival within the current phase (advanced by
        /// `t += gap`, replicating the materialized path's accumulation so
        /// timestamps are bitwise identical).
        next_t: f64,
        /// Whether `next_t` has been initialized for the current phase.
        entered: bool,
    },
    Poisson {
        rng: StdRng,
        /// Cumulative phase end times.
        boundaries: Vec<f64>,
        load: PhasedLoad,
        /// Current simulation time within the generation loop.
        t: f64,
        /// Total schedule length.
        end: f64,
    },
}

/// A lazy iterator over one client's arrivals, produced by
/// [`ClientMachine::stream`]. Yields times in non-decreasing order.
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    principal: PrincipalId,
    client: usize,
    state: StreamState,
}

impl Iterator for ArrivalStream {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        let (principal, client) = (self.principal, self.client);
        match &mut self.state {
            StreamState::Uniform { phases, idx, phase_start, next_t, entered } => {
                // Phase-aware even spacing, phase-local so rate changes take
                // effect exactly at phase boundaries.
                loop {
                    let p = *phases.get(*idx)?;
                    if p.rate > 0.0 {
                        let gap = 1.0 / p.rate;
                        if !*entered {
                            // First arrival half a gap in, to avoid boundary
                            // bunching across phases.
                            *next_t = *phase_start + gap * 0.5;
                            *entered = true;
                        }
                        if *next_t < *phase_start + p.duration {
                            let time = *next_t;
                            *next_t += gap;
                            return Some(Arrival { time, principal, client });
                        }
                    }
                    *phase_start += p.duration;
                    *idx += 1;
                    *entered = false;
                }
            }
            StreamState::Poisson { rng, boundaries, load, t, end } => {
                while *t < *end {
                    let phase_end = boundaries.iter().copied().find(|&b| b > *t).unwrap_or(*end);
                    let rate = load.rate_at(*t);
                    if rate <= 0.0 {
                        *t = phase_end;
                        continue;
                    }
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    let dt = -u.ln() / rate;
                    if *t + dt >= phase_end {
                        *t = phase_end;
                        continue;
                    }
                    *t += dt;
                    return Some(Arrival { time: *t, principal, client });
                }
                None
            }
        }
    }
}

/// Merges per-client arrival traces into one time-ordered trace (stable for
/// equal timestamps: lower client index first).
pub fn merge_streams(mut streams: Vec<Vec<Arrival>>) -> Vec<Arrival> {
    let mut merged: Vec<Arrival> = streams.drain(..).flatten().collect();
    merged.sort_by(|a, b| {
        a.time
            .partial_cmp(&b.time)
            .expect("finite times")
            .then(a.client.cmp(&b.client))
    });
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_client_hits_configured_rate() {
        let c = ClientMachine::uniform(0, PrincipalId(1), PhasedLoad::constant(135.0, 10.0));
        let arr = c.arrivals();
        assert_eq!(arr.len(), 1350);
        assert!(arr.windows(2).all(|w| w[0].time < w[1].time));
    }

    #[test]
    fn uniform_client_respects_phases() {
        let load = PhasedLoad::new().then(10.0, 100.0).idle(10.0).then(10.0, 100.0);
        let c = ClientMachine::uniform(0, PrincipalId(0), load);
        let arr = c.arrivals();
        assert_eq!(arr.len(), 2000);
        // Nothing arrives in the idle phase.
        assert!(!arr.iter().any(|a| (10.0..20.0).contains(&a.time)));
    }

    #[test]
    fn poisson_client_rate_is_approximately_right() {
        let c = ClientMachine::poisson(3, PrincipalId(0), PhasedLoad::constant(200.0, 50.0), 11);
        let arr = c.arrivals();
        let rate = arr.len() as f64 / 50.0;
        assert!((170.0..=230.0).contains(&rate), "rate {rate}");
    }

    #[test]
    fn poisson_skips_idle_phases() {
        let load = PhasedLoad::new().idle(5.0).then(5.0, 100.0);
        let c = ClientMachine::poisson(0, PrincipalId(0), load, 5);
        let arr = c.arrivals();
        assert!(arr.iter().all(|a| a.time >= 5.0));
        assert!(arr.len() > 300);
    }

    #[test]
    fn poisson_is_reproducible() {
        let mk = || {
            ClientMachine::poisson(1, PrincipalId(0), PhasedLoad::constant(50.0, 10.0), 99)
                .arrivals()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn merge_orders_globally() {
        let a = ClientMachine::uniform(0, PrincipalId(0), PhasedLoad::constant(10.0, 5.0));
        let b = ClientMachine::uniform(1, PrincipalId(1), PhasedLoad::constant(7.0, 5.0));
        let merged = merge_streams(vec![a.arrivals(), b.arrivals()]);
        assert_eq!(merged.len(), 50 + 35);
        assert!(merged.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn empty_schedule_generates_nothing() {
        let c = ClientMachine::uniform(0, PrincipalId(0), PhasedLoad::new());
        assert!(c.arrivals().is_empty());
        assert_eq!(c.stream().next(), None);
    }

    #[test]
    fn stream_matches_materialized_uniform() {
        let load = PhasedLoad::new().then(10.0, 137.0).idle(3.0).then(5.0, 41.0);
        let c = ClientMachine::uniform(7, PrincipalId(2), load);
        let streamed: Vec<Arrival> = c.stream().collect();
        assert_eq!(streamed, c.arrivals());
        assert!(!streamed.is_empty());
        // Bitwise-identical timestamps, not just approximately equal.
        assert!(streamed
            .iter()
            .zip(c.arrivals())
            .all(|(s, m)| s.time.to_bits() == m.time.to_bits()));
    }

    #[test]
    fn stream_matches_materialized_poisson() {
        let load = PhasedLoad::new().then(20.0, 80.0).idle(2.0).then(10.0, 150.0);
        let c = ClientMachine::poisson(3, PrincipalId(1), load, 424242);
        let streamed: Vec<Arrival> = c.stream().collect();
        assert_eq!(streamed, c.arrivals());
        assert!(streamed.len() > 1000);
        assert!(streamed
            .iter()
            .zip(c.arrivals())
            .all(|(s, m)| s.time.to_bits() == m.time.to_bits()));
    }

    #[test]
    fn stream_prefix_needs_no_materialization() {
        // A schedule whose full trace would be ~10^9 arrivals: the lazy
        // stream hands out the first few without building it.
        let c = ClientMachine::uniform(
            0,
            PrincipalId(0),
            PhasedLoad::constant(1_000_000.0, 1_000.0),
        );
        let first: Vec<Arrival> = c.stream().take(3).collect();
        assert_eq!(first.len(), 3);
        assert!((first[0].time - 0.5e-6).abs() < 1e-12);
        assert!(first.windows(2).all(|w| w[0].time < w[1].time));
    }
}
