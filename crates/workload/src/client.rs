//! Client machines: arrival-process generators over phased schedules.

use crate::PhasedLoad;
use covenant_agreements::PrincipalId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How request inter-arrival times are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Evenly spaced arrivals at the phase rate (WebBench-style closed
    /// pacing; deterministic, ideal for figure reproduction).
    Uniform,
    /// Poisson arrivals with the phase rate as intensity.
    Poisson {
        /// RNG seed, so traces are reproducible.
        seed: u64,
    },
}

/// One generated request arrival.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arrival {
    /// Arrival time, seconds since run start.
    pub time: f64,
    /// The principal this client's requests are funded by.
    pub principal: PrincipalId,
    /// Index of the generating client machine.
    pub client: usize,
}

/// A synthetic client machine bound to one principal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientMachine {
    /// Client index (for tracing and affinity experiments).
    pub id: usize,
    /// Principal whose agreements fund these requests.
    pub principal: PrincipalId,
    /// Offered-load schedule (already capped at the machine's ability).
    pub load: PhasedLoad,
    /// Arrival process.
    pub process: ArrivalProcess,
}

impl ClientMachine {
    /// A uniformly pacing client.
    pub fn uniform(id: usize, principal: PrincipalId, load: PhasedLoad) -> Self {
        ClientMachine { id, principal, load, process: ArrivalProcess::Uniform }
    }

    /// A Poisson client with a per-client seed.
    pub fn poisson(id: usize, principal: PrincipalId, load: PhasedLoad, seed: u64) -> Self {
        ClientMachine { id, principal, load, process: ArrivalProcess::Poisson { seed } }
    }

    /// Materializes the full arrival trace for this client.
    pub fn arrivals(&self) -> Vec<Arrival> {
        let mut out = Vec::new();
        let end = self.load.total_duration();
        match self.process {
            ArrivalProcess::Uniform => {
                // Phase-aware even spacing, phase-local so rate changes take
                // effect exactly at phase boundaries.
                let mut phase_start = 0.0;
                for p in self.load.phases() {
                    if p.rate > 0.0 {
                        let gap = 1.0 / p.rate;
                        // First arrival half a gap in, to avoid boundary
                        // bunching across phases.
                        let mut t = phase_start + gap * 0.5;
                        while t < phase_start + p.duration {
                            out.push(Arrival { time: t, principal: self.principal, client: self.id });
                            t += gap;
                        }
                    }
                    phase_start += p.duration;
                }
            }
            ArrivalProcess::Poisson { seed } => {
                let mut rng = StdRng::seed_from_u64(seed ^ (self.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                // Piecewise-homogeneous Poisson: sample within the current
                // phase; an exponential that crosses the phase boundary is
                // clipped there and resampled at the new rate (valid by
                // memorylessness). Naively letting it overshoot would
                // undersample high-rate phases that follow quiet ones.
                let boundaries: Vec<f64> = self
                    .load
                    .phases()
                    .iter()
                    .scan(0.0, |acc, p| {
                        *acc += p.duration;
                        Some(*acc)
                    })
                    .collect();
                let mut t = 0.0;
                while t < end {
                    let phase_end = boundaries.iter().copied().find(|&b| b > t).unwrap_or(end);
                    let rate = self.load.rate_at(t);
                    if rate <= 0.0 {
                        t = phase_end;
                        continue;
                    }
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    let dt = -u.ln() / rate;
                    if t + dt >= phase_end {
                        t = phase_end;
                        continue;
                    }
                    t += dt;
                    out.push(Arrival { time: t, principal: self.principal, client: self.id });
                }
            }
        }
        out
    }
}

/// Merges per-client arrival traces into one time-ordered trace (stable for
/// equal timestamps: lower client index first).
pub fn merge_streams(mut streams: Vec<Vec<Arrival>>) -> Vec<Arrival> {
    let mut merged: Vec<Arrival> = streams.drain(..).flatten().collect();
    merged.sort_by(|a, b| {
        a.time
            .partial_cmp(&b.time)
            .expect("finite times")
            .then(a.client.cmp(&b.client))
    });
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_client_hits_configured_rate() {
        let c = ClientMachine::uniform(0, PrincipalId(1), PhasedLoad::constant(135.0, 10.0));
        let arr = c.arrivals();
        assert_eq!(arr.len(), 1350);
        assert!(arr.windows(2).all(|w| w[0].time < w[1].time));
    }

    #[test]
    fn uniform_client_respects_phases() {
        let load = PhasedLoad::new().then(10.0, 100.0).idle(10.0).then(10.0, 100.0);
        let c = ClientMachine::uniform(0, PrincipalId(0), load);
        let arr = c.arrivals();
        assert_eq!(arr.len(), 2000);
        // Nothing arrives in the idle phase.
        assert!(!arr.iter().any(|a| (10.0..20.0).contains(&a.time)));
    }

    #[test]
    fn poisson_client_rate_is_approximately_right() {
        let c = ClientMachine::poisson(3, PrincipalId(0), PhasedLoad::constant(200.0, 50.0), 11);
        let arr = c.arrivals();
        let rate = arr.len() as f64 / 50.0;
        assert!((170.0..=230.0).contains(&rate), "rate {rate}");
    }

    #[test]
    fn poisson_skips_idle_phases() {
        let load = PhasedLoad::new().idle(5.0).then(5.0, 100.0);
        let c = ClientMachine::poisson(0, PrincipalId(0), load, 5);
        let arr = c.arrivals();
        assert!(arr.iter().all(|a| a.time >= 5.0));
        assert!(arr.len() > 300);
    }

    #[test]
    fn poisson_is_reproducible() {
        let mk = || {
            ClientMachine::poisson(1, PrincipalId(0), PhasedLoad::constant(50.0, 10.0), 99)
                .arrivals()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn merge_orders_globally() {
        let a = ClientMachine::uniform(0, PrincipalId(0), PhasedLoad::constant(10.0, 5.0));
        let b = ClientMachine::uniform(1, PrincipalId(1), PhasedLoad::constant(7.0, 5.0));
        let merged = merge_streams(vec![a.arrivals(), b.arrivals()]);
        assert_eq!(merged.len(), 50 + 35);
        assert!(merged.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn empty_schedule_generates_nothing() {
        let c = ClientMachine::uniform(0, PrincipalId(0), PhasedLoad::new());
        assert!(c.arrivals().is_empty());
    }
}
