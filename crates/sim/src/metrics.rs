//! Measurement collection: the per-second rate series the paper plots,
//! plus response-time and loss statistics.

use covenant_agreements::PrincipalId;
use serde::{Deserialize, Serialize};

/// Per-principal, per-bucket completed-request rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateSeries {
    bucket_secs: f64,
    /// `counts[principal][bucket]` = completions in that bucket.
    counts: Vec<Vec<f64>>,
}

impl RateSeries {
    /// Creates a series for `n` principals with the given bucket width
    /// (1 s to match the paper's figures).
    pub fn new(n: usize, bucket_secs: f64) -> Self {
        assert!(bucket_secs > 0.0);
        RateSeries { bucket_secs, counts: vec![Vec::new(); n] }
    }

    /// Records one completion of `cost` units for `principal` at `time`.
    pub fn record(&mut self, principal: PrincipalId, time: f64, cost: f64) {
        let bucket = (time / self.bucket_secs).floor() as usize;
        let row = &mut self.counts[principal.0];
        if row.len() <= bucket {
            row.resize(bucket + 1, 0.0);
        }
        row[bucket] += cost;
    }

    /// Bucket width in seconds.
    pub fn bucket_secs(&self) -> f64 {
        self.bucket_secs
    }

    /// Number of principals.
    pub fn n_principals(&self) -> usize {
        self.counts.len()
    }

    /// The rate (units/second) of `principal` in bucket `b`.
    pub fn rate(&self, principal: PrincipalId, b: usize) -> f64 {
        self.counts[principal.0].get(b).copied().unwrap_or(0.0) / self.bucket_secs
    }

    /// Number of buckets recorded for the busiest principal.
    pub fn n_buckets(&self) -> usize {
        self.counts.iter().map(|r| r.len()).max().unwrap_or(0)
    }

    /// Mean rate of `principal` over the bucket range `[from, to)` —
    /// the per-phase averages quoted in the paper's prose.
    pub fn mean_rate(&self, principal: PrincipalId, from: usize, to: usize) -> f64 {
        if to <= from {
            return 0.0;
        }
        let row = &self.counts[principal.0];
        let total: f64 = (from..to).map(|b| row.get(b).copied().unwrap_or(0.0)).sum();
        total / ((to - from) as f64 * self.bucket_secs)
    }

    /// Mean rate over a time range in seconds.
    pub fn mean_rate_secs(&self, principal: PrincipalId, from_s: f64, to_s: f64) -> f64 {
        let from = (from_s / self.bucket_secs).round() as usize;
        let to = (to_s / self.bucket_secs).round() as usize;
        self.mean_rate(principal, from, to)
    }

    /// The full series of one principal as (bucket start seconds, rate).
    pub fn series(&self, principal: PrincipalId) -> Vec<(f64, f64)> {
        self.counts[principal.0]
            .iter()
            .enumerate()
            .map(|(b, c)| (b as f64 * self.bucket_secs, c / self.bucket_secs))
            .collect()
    }
}

impl RateSeries {
    /// Realized provider income over the run: for every bucket,
    /// `Σ_i price_i × max(0, served_i − MC_i·bucket)` — revenue for service
    /// beyond the mandatory level, matching the provider LP's objective
    /// (`p_i (x_i − min(MC_i, n_i))`: a principal demanding less than its
    /// mandatory level earns nothing extra, and `max(0, ·)` reproduces
    /// that case because its service then stays below `MC_i`).
    pub fn provider_income(&self, prices: &[f64], mandatory_rates: &[f64]) -> f64 {
        assert_eq!(prices.len(), self.counts.len());
        assert_eq!(mandatory_rates.len(), self.counts.len());
        let mut income = 0.0;
        for (i, row) in self.counts.iter().enumerate() {
            let floor = mandatory_rates[i] * self.bucket_secs;
            for &served in row {
                income += prices[i] * (served - floor).max(0.0);
            }
        }
        income
    }
}

/// Accumulated response-time statistics for one principal.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ResponseStats {
    /// Completed request count.
    pub count: u64,
    /// Sum of response times (arrival at redirector → completion).
    pub total: f64,
    /// Maximum observed response time.
    pub max: f64,
}

impl ResponseStats {
    /// Records one completed request's response time.
    pub fn record(&mut self, response_time: f64) {
        self.count += 1;
        self.total += response_time;
        if response_time > self.max {
            self.max = response_time;
        }
    }

    /// Mean response time, `None` if nothing completed.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.total / self.count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_buckets() {
        let mut s = RateSeries::new(2, 1.0);
        s.record(PrincipalId(0), 0.25, 1.0);
        s.record(PrincipalId(0), 0.75, 1.0);
        s.record(PrincipalId(0), 1.5, 1.0);
        s.record(PrincipalId(1), 2.9, 2.0);
        assert_eq!(s.rate(PrincipalId(0), 0), 2.0);
        assert_eq!(s.rate(PrincipalId(0), 1), 1.0);
        assert_eq!(s.rate(PrincipalId(1), 2), 2.0);
        assert_eq!(s.rate(PrincipalId(1), 0), 0.0);
        assert_eq!(s.n_buckets(), 3);
    }

    #[test]
    fn mean_rate_over_phase() {
        let mut s = RateSeries::new(1, 1.0);
        for b in 0..10 {
            s.record(PrincipalId(0), b as f64 + 0.5, 100.0);
        }
        assert_eq!(s.mean_rate(PrincipalId(0), 0, 10), 100.0);
        assert_eq!(s.mean_rate(PrincipalId(0), 5, 10), 100.0);
        assert_eq!(s.mean_rate(PrincipalId(0), 10, 20), 0.0);
        assert_eq!(s.mean_rate_secs(PrincipalId(0), 0.0, 10.0), 100.0);
    }

    #[test]
    fn sub_second_buckets() {
        let mut s = RateSeries::new(1, 0.1);
        s.record(PrincipalId(0), 0.05, 1.0);
        assert!((s.rate(PrincipalId(0), 0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn series_export() {
        let mut s = RateSeries::new(1, 1.0);
        s.record(PrincipalId(0), 0.5, 5.0);
        s.record(PrincipalId(0), 1.5, 7.0);
        assert_eq!(s.series(PrincipalId(0)), vec![(0.0, 5.0), (1.0, 7.0)]);
    }

    #[test]
    fn response_stats() {
        let mut r = ResponseStats::default();
        assert_eq!(r.mean(), None);
        r.record(0.1);
        r.record(0.3);
        assert_eq!(r.count, 2);
        assert!((r.mean().unwrap() - 0.2).abs() < 1e-12);
        assert_eq!(r.max, 0.3);
    }
}
