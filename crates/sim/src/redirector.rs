//! The simulated redirector: a thin deterministic wrapper around the
//! shared [`EnforcementCore`].
//!
//! All admission/window logic lives in `covenant-enforce` — the same state
//! machine the live L7/L4 prototypes run. This wrapper only adapts the
//! engine's calling convention: it exposes the published demand vector for
//! the engine's centralized once-per-tick tree aggregation, and accepts
//! the delivered aggregate back into the core's [`DelayedCoordination`]
//! view.

use crate::config::QueueMode;
use covenant_agreements::AccessLevels;
pub use covenant_enforce::ArrivalOutcome;
use covenant_enforce::{DelayedCoordination, EnforcementCore};
use covenant_sched::{Request, SchedulerConfig};
use std::rc::Rc;

/// One simulated redirector node.
#[derive(Debug)]
pub struct SimRedirector {
    /// Node index in the combining tree.
    pub id: usize,
    core: EnforcementCore<DelayedCoordination>,
}

impl SimRedirector {
    /// Builds a redirector for the principals in `levels`, with a
    /// `view_lag`-second delayed view of the aggregated demand.
    pub fn new(
        id: usize,
        levels: &AccessLevels,
        sched_cfg: SchedulerConfig,
        mode: QueueMode,
        view_lag: f64,
    ) -> Self {
        SimRedirector {
            id,
            core: EnforcementCore::new(levels, sched_cfg, mode, DelayedCoordination::new(view_lag)),
        }
    }

    /// Installs new access levels after a capacity or agreement change
    /// (agreements are interpreted dynamically, §2.2).
    pub fn update_levels(&mut self, levels: &AccessLevels) {
        self.core.update_levels(levels);
    }

    /// `(hits, misses)` of the scheduler's plan cache since construction.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.core.cache_stats()
    }

    /// Plan-cache entries pushed out by the LRU cap since construction.
    pub fn cache_evictions(&self) -> u64 {
        self.core.cache_evictions()
    }

    /// `(solves, pivots)` across the scheduler's LP engines.
    pub fn lp_stats(&self) -> (u64, u64) {
        self.core.lp_stats()
    }

    /// `(warm_hits, cold_fallbacks)` of the warm-started revised solver.
    pub fn warm_stats(&self) -> (u64, u64) {
        self.core.warm_stats()
    }

    /// Requests admitted (forwarded) by this redirector.
    pub fn admitted(&self) -> u64 {
        self.core.admitted()
    }

    /// Requests deferred (self-redirected) by this redirector.
    pub fn deferred(&self) -> u64 {
        self.core.deferred()
    }

    /// Handles an arriving request.
    pub fn on_arrival(&mut self, req: Request) -> ArrivalOutcome {
        self.core.on_arrival(req)
    }

    /// Rolls the scheduling window at time `now`. Fills `released` with the
    /// requests released from queues (with their target servers) and
    /// `demand` with the vector this node publishes into the combining
    /// tree; both buffers are cleared first and may be reused across ticks
    /// (steady state allocates nothing).
    pub fn on_window_tick(
        &mut self,
        now: f64,
        released: &mut Vec<(Request, usize)>,
        demand: &mut Vec<f64>,
    ) {
        self.core.on_window_tick(now, None, released);
        demand.clear();
        demand.extend_from_slice(self.core.coordination_mut().outbox());
    }

    /// Delivers the centrally-aggregated demand into this node's delayed
    /// view (visible after the node's information lag).
    pub fn deliver_aggregate(&mut self, now: f64, aggregate: Rc<Vec<f64>>) {
        self.core.coordination_mut().deliver(now, aggregate);
    }
}
