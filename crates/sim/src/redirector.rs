//! Redirector state machine shared by all queuing modes.

use crate::config::QueueMode;
use covenant_agreements::AccessLevels;
use covenant_sched::{
    Admission, CreditGate, Plan, PrincipalQueues, RateEstimator, Request, SchedulerConfig,
    WindowScheduler,
};
use covenant_tree::DelayedView;
use std::rc::Rc;

/// What happened to a request when it reached the redirector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalOutcome {
    /// Admitted and forwarded to server `server` immediately.
    Forward {
        /// Target server index (principal id of the owner).
        server: usize,
    },
    /// Out of quota: tell the client to retry (L7 self-redirect).
    Defer,
    /// Held at the redirector (explicit queue or L4 parking queue).
    Queued,
}

/// One simulated redirector: a window scheduler plus mode-specific queuing
/// state and the delayed view of global demand.
#[derive(Debug)]
pub struct SimRedirector {
    /// Node index in the combining tree.
    pub id: usize,
    scheduler: WindowScheduler,
    mode: QueueMode,
    /// Explicit / parking queues (unused in pure credit-retry mode).
    queues: PrincipalQueues,
    /// Credit gate (unused in explicit mode).
    gate: CreditGate,
    estimator: RateEstimator,
    /// Cost-weighted arrivals since the last tick.
    arrivals_this_window: Vec<f64>,
    /// What the combining tree has delivered to this node. The aggregate is
    /// shared (`Rc`) across redirectors instead of cloned per node.
    pub global_view: DelayedView<Rc<Vec<f64>>>,
    /// Requests admitted (forwarded) by this redirector.
    pub admitted: u64,
    /// Requests deferred (self-redirected).
    pub deferred: u64,
}

impl SimRedirector {
    /// Builds a redirector for `n` principals.
    pub fn new(
        id: usize,
        levels: &AccessLevels,
        sched_cfg: SchedulerConfig,
        mode: QueueMode,
        view_lag: f64,
    ) -> Self {
        let n = levels.len();
        SimRedirector {
            id,
            scheduler: WindowScheduler::new(levels, sched_cfg),
            mode,
            queues: PrincipalQueues::new(n),
            gate: CreditGate::new(n, n),
            estimator: RateEstimator::new(n, 0.5),
            arrivals_this_window: vec![0.0; n],
            global_view: DelayedView::new(view_lag),
            admitted: 0,
            deferred: 0,
        }
    }

    /// Installs new access levels after a capacity or agreement change
    /// (agreements are interpreted dynamically, §2.2).
    pub fn update_levels(&mut self, levels: &AccessLevels) {
        self.scheduler.update_levels(levels);
    }

    /// `(hits, misses)` of the scheduler's plan cache since construction.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.scheduler.cache_stats()
    }

    /// Handles an arriving request.
    pub fn on_arrival(&mut self, req: Request) -> ArrivalOutcome {
        self.arrivals_this_window[req.principal.0] += req.cost;
        match self.mode {
            QueueMode::Explicit => {
                self.queues.push(req);
                ArrivalOutcome::Queued
            }
            QueueMode::CreditRetry { .. } => match self.gate.admit(&req) {
                Admission::Admit { server } => {
                    self.admitted += 1;
                    ArrivalOutcome::Forward { server }
                }
                Admission::Defer => {
                    self.deferred += 1;
                    ArrivalOutcome::Defer
                }
            },
            QueueMode::CreditPark => match self.gate.admit(&req) {
                Admission::Admit { server } => {
                    self.admitted += 1;
                    ArrivalOutcome::Forward { server }
                }
                Admission::Defer => {
                    self.queues.push(req);
                    ArrivalOutcome::Queued
                }
            },
        }
    }

    /// Rolls the scheduling window at time `now`. Fills `released` with the
    /// requests released from queues (with their target servers) and
    /// `demand` with the vector this node publishes into the combining
    /// tree; both buffers are cleared first and may be reused across ticks
    /// (steady state allocates nothing).
    pub fn on_window_tick(
        &mut self,
        now: f64,
        released: &mut Vec<(Request, usize)>,
        demand: &mut Vec<f64>,
    ) {
        released.clear();
        // Fold the finished window's arrivals into the estimator.
        self.estimator.observe(&self.arrivals_this_window);
        for a in &mut self.arrivals_this_window {
            *a = 0.0;
        }

        // Local demand for the coming window.
        match self.mode {
            QueueMode::Explicit => self.queues.lengths_into(demand),
            QueueMode::CreditRetry { .. } => {
                demand.clear();
                demand.extend_from_slice(self.estimator.estimates());
            }
            QueueMode::CreditPark => {
                // Parked backlog plus expected fresh arrivals.
                self.queues.lengths_into(demand);
                for (d, e) in demand.iter_mut().zip(self.estimator.estimates()) {
                    *d += e;
                }
            }
        }

        let view = self.global_view.read(now).map(|v| v.as_slice());
        let plan: Plan = self.scheduler.plan_window_shared(view, demand);

        match self.mode {
            QueueMode::Explicit => {
                let dispatches = self.queues.release(&plan);
                self.admitted += dispatches.len() as u64;
                released.extend(dispatches.into_iter().map(|d| (d.request, d.server)));
            }
            QueueMode::CreditRetry { .. } => {
                self.gate.roll_window(&plan);
            }
            QueueMode::CreditPark => {
                self.gate.roll_window(&plan);
                // Reinject parked requests through the fresh credit, FIFO
                // per principal, stopping at the first the gate defers.
                for i in 0..self.queues.n_principals() {
                    while let Some(head) = self.queues.release_one(i) {
                        match self.gate.admit(&head) {
                            Admission::Admit { server } => {
                                self.admitted += 1;
                                released.push((head, server));
                            }
                            Admission::Defer => {
                                self.queues.push_front(head);
                                break;
                            }
                        }
                    }
                }
            }
        }
    }
}
