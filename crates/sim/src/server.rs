//! Capacity-limited server model.
//!
//! A server processes requests sequentially at a fixed rate (its capacity,
//! in average-request units per second) from a finite accept backlog —
//! the analogue of Apache's listen queue on the paper's testbed. Requests
//! arriving to a full backlog are dropped (counted), which is what makes
//! request *bunching* observable: a burst that overflows the backlog loses
//! work even though average load is below capacity.

use covenant_sched::Request;
use std::collections::VecDeque;

/// One simulated server.
#[derive(Debug, Clone)]
pub struct Server {
    /// Capacity in average-request units per second.
    capacity: f64,
    /// Maximum queued-but-unserved requests.
    backlog_limit: usize,
    /// Time the server becomes free of all currently accepted work.
    busy_until: f64,
    /// Accepted, not yet completed.
    queue: VecDeque<Request>,
    /// Requests dropped on full backlog.
    pub dropped: u64,
    /// Requests completed.
    pub completed: u64,
}

/// Result of offering a request to a server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Accept {
    /// Accepted; the request will complete at this absolute time.
    CompletesAt(f64),
    /// Backlog full; request dropped.
    Dropped,
}

impl Server {
    /// Creates a server with the given rate capacity and backlog limit.
    pub fn new(capacity: f64, backlog_limit: usize) -> Self {
        assert!(capacity >= 0.0 && capacity.is_finite());
        Server {
            capacity,
            backlog_limit,
            busy_until: 0.0,
            queue: VecDeque::new(),
            dropped: 0,
            completed: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Changes the service rate from now on (already-accepted work keeps
    /// its scheduled completion times; only new work sees the new rate).
    pub fn set_capacity(&mut self, capacity: f64) {
        assert!(capacity >= 0.0 && capacity.is_finite());
        self.capacity = capacity;
    }

    /// Currently accepted-but-unfinished requests.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Offers `req` at time `now`; on acceptance returns the completion
    /// time (the caller schedules the completion event).
    pub fn offer(&mut self, now: f64, req: Request) -> Accept {
        if self.capacity <= 0.0 || self.queue.len() >= self.backlog_limit {
            self.dropped += 1;
            return Accept::Dropped;
        }
        let start = self.busy_until.max(now);
        let done = start + req.cost / self.capacity;
        self.busy_until = done;
        self.queue.push_back(req);
        Accept::CompletesAt(done)
    }

    /// Marks the oldest accepted request complete, returning it.
    pub fn complete(&mut self) -> Request {
        self.completed += 1;
        self.queue.pop_front().expect("completion without accepted request")
    }

    /// Utilization over `[0, now]`: busy time divided by elapsed time.
    pub fn utilization(&self, now: f64) -> f64 {
        if now <= 0.0 || self.capacity <= 0.0 {
            return 0.0;
        }
        (self.completed as f64 / self.capacity / now).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covenant_agreements::PrincipalId;

    fn req(id: u64) -> Request {
        Request::unit(id, PrincipalId(0), 0.0)
    }

    #[test]
    fn sequential_service_at_capacity() {
        let mut s = Server::new(10.0, 100);
        // Three unit requests at t=0: complete at 0.1, 0.2, 0.3.
        assert_eq!(s.offer(0.0, req(1)), Accept::CompletesAt(0.1));
        assert_eq!(s.offer(0.0, req(2)), Accept::CompletesAt(0.2));
        assert_eq!(s.offer(0.0, req(3)), Accept::CompletesAt(0.30000000000000004));
    }

    #[test]
    fn idle_gap_resets_start_time() {
        let mut s = Server::new(10.0, 100);
        s.offer(0.0, req(1));
        s.complete();
        // Next request arrives at t=5 to an idle server.
        assert_eq!(s.offer(5.0, req(2)), Accept::CompletesAt(5.1));
    }

    #[test]
    fn backlog_overflow_drops() {
        let mut s = Server::new(1.0, 2);
        assert!(matches!(s.offer(0.0, req(1)), Accept::CompletesAt(_)));
        assert!(matches!(s.offer(0.0, req(2)), Accept::CompletesAt(_)));
        assert_eq!(s.offer(0.0, req(3)), Accept::Dropped);
        assert_eq!(s.dropped, 1);
        // Completion frees a slot.
        s.complete();
        assert!(matches!(s.offer(0.0, req(4)), Accept::CompletesAt(_)));
    }

    #[test]
    fn costly_requests_take_longer() {
        let mut s = Server::new(10.0, 10);
        let big = Request { id: covenant_sched::RequestId(9), principal: PrincipalId(0), arrival: 0.0, cost: 5.0 };
        assert_eq!(s.offer(0.0, big), Accept::CompletesAt(0.5));
    }

    #[test]
    fn zero_capacity_server_drops_everything() {
        let mut s = Server::new(0.0, 10);
        assert_eq!(s.offer(0.0, req(1)), Accept::Dropped);
    }

    #[test]
    fn utilization_tracks_completions() {
        let mut s = Server::new(10.0, 100);
        for id in 0..50 {
            s.offer(0.0, req(id));
        }
        for _ in 0..50 {
            s.complete();
        }
        // 50 completions at capacity 10 = 5 busy seconds over 10 elapsed.
        assert!((s.utilization(10.0) - 0.5).abs() < 1e-9);
    }
}
