//! Shared-rate bottleneck links on the reply path.
//!
//! When a [`crate::SimConfig`] declares a network model, each redirector
//! owns one link that every reply to its clients must cross. Reply bytes
//! contend for the link's rate, so transfer times *emerge from congestion*
//! instead of being a fixed two-hop delay. Two disciplines:
//!
//! * [`LinkDiscipline::Fifo`] — transfers serialize at the full link rate,
//!   exactly the `busy_until` model the servers use: the completion time is
//!   known the moment the transfer starts.
//! * [`LinkDiscipline::FairShare`] — egalitarian processor sharing: `n`
//!   concurrent transfers each progress at `rate / n` (an idealized
//!   fair-queueing bottleneck, the same abstraction minim's bottleneck
//!   entity uses). Completion times shift as flows come and go, so the
//!   link runs a *virtual-service clock*: `S(t)` advances at `rate / n`
//!   bytes per second, a flow arriving at `t` with `b` bytes departs when
//!   `S` reaches `S(t) + b`, and the next real departure is re-scheduled
//!   through version-guarded wake events — any wake carrying a stale
//!   version is ignored, so at most one wake per state change is live.
//!
//! Everything here is plain deterministic float arithmetic driven by the
//! event queue, so both engine paths (streaming and reference) replay the
//! identical transfer schedule.

use covenant_sched::Request;

/// Queueing discipline of a shared link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDiscipline {
    /// Transfers serialize: one reply at a time at the full link rate.
    Fifo,
    /// Egalitarian processor sharing among concurrent transfers.
    FairShare,
}

/// Configuration of one redirector's reply-path link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkCfg {
    /// Link capacity, bytes per second. Must be finite and positive.
    pub rate_bytes_per_sec: f64,
    /// Queueing discipline.
    pub discipline: LinkDiscipline,
}

/// The network model: one link per redirector plus the byte scale for
/// requests whose cost model carries no explicit size.
#[derive(Debug, Clone, PartialEq)]
pub struct NetModelCfg {
    /// One link per redirector, indexed like the tree.
    pub links: Vec<LinkCfg>,
    /// Reply bytes per cost unit for `Unit`/`Fixed` cost models (sized
    /// clients carry their sampled bytes instead). Default 6144, the
    /// paper's 6 KB average reply.
    pub unit_bytes: f64,
}

impl NetModelCfg {
    /// A model with the same link on every redirector.
    pub fn uniform(n: usize, rate_bytes_per_sec: f64, discipline: LinkDiscipline) -> Self {
        NetModelCfg {
            links: vec![LinkCfg { rate_bytes_per_sec, discipline }; n],
            unit_bytes: 6144.0,
        }
    }
}

/// What starting a transfer asks the engine to schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkStart {
    /// FIFO: the reply (carried by the event) lands at the given time.
    Deliver(f64),
    /// Fair share: wake the link at the given time with the given version
    /// (the link holds the reply until its flow drains).
    Wake(f64, u64),
}

/// One in-progress fair-share transfer.
#[derive(Debug, Clone)]
struct Flow {
    /// Virtual-service reading at which this flow completes.
    finish: f64,
    /// Arrival order among equal finish tags.
    seq: u64,
    /// Real time the transfer started (for transfer-time stats).
    entered: f64,
    request: Request,
}

/// Runtime state of one link.
#[derive(Debug)]
pub(crate) struct Link {
    rate: f64,
    discipline: LinkDiscipline,
    /// FIFO: when the link drains the last queued byte.
    busy_until: f64,
    /// Fair share: accumulated virtual service (bytes every concurrent
    /// flow has received), and the real time it was last advanced.
    virt: f64,
    virt_at: f64,
    flows: Vec<Flow>,
    /// Bumped on every state change; wake events carrying an older
    /// version are stale and ignored.
    version: u64,
    next_seq: u64,
    /// Transfers currently on the link (both disciplines).
    in_flight: usize,
    /// Stats.
    pub transfers: u64,
    pub bytes: f64,
    pub active_peak: usize,
}

impl Link {
    pub fn new(cfg: &LinkCfg) -> Self {
        assert!(
            cfg.rate_bytes_per_sec.is_finite() && cfg.rate_bytes_per_sec > 0.0,
            "link rate must be finite and positive"
        );
        Link {
            rate: cfg.rate_bytes_per_sec,
            discipline: cfg.discipline,
            busy_until: 0.0,
            virt: 0.0,
            virt_at: 0.0,
            flows: Vec::new(),
            version: 0,
            next_seq: 0,
            in_flight: 0,
            transfers: 0,
            bytes: 0.0,
            active_peak: 0,
        }
    }

    /// Advances the virtual-service clock to `now` (the concurrency level
    /// has been constant since the last advance, by construction).
    fn advance(&mut self, now: f64) {
        if !self.flows.is_empty() {
            self.virt += (now - self.virt_at) * self.rate / self.flows.len() as f64;
        }
        self.virt_at = now;
    }

    /// Real time at which the earliest-finishing flow departs, given no
    /// further state changes, with the version that guards it.
    fn next_wake(&self, now: f64) -> Option<(f64, u64)> {
        let min = self.flows.iter().map(|f| f.finish).fold(f64::INFINITY, f64::min);
        if min.is_finite() {
            let dt = (min - self.virt).max(0.0) * self.flows.len() as f64 / self.rate;
            Some((now + dt, self.version))
        } else {
            None
        }
    }

    /// Begins transferring `bytes` of reply for `request` at `now`.
    pub fn start(&mut self, now: f64, bytes: f64, request: Request) -> LinkStart {
        self.transfers += 1;
        self.bytes += bytes;
        self.in_flight += 1;
        if self.in_flight > self.active_peak {
            self.active_peak = self.in_flight;
        }
        match self.discipline {
            LinkDiscipline::Fifo => {
                let begin = if self.busy_until > now { self.busy_until } else { now };
                let done = begin + bytes / self.rate;
                self.busy_until = done;
                LinkStart::Deliver(done)
            }
            LinkDiscipline::FairShare => {
                self.advance(now);
                let seq = self.next_seq;
                self.next_seq += 1;
                self.flows.push(Flow { finish: self.virt + bytes, seq, entered: now, request });
                self.version += 1;
                let (at, v) = self.next_wake(now).expect("just pushed a flow");
                LinkStart::Wake(at, v)
            }
        }
    }

    /// A FIFO reply left the link (fair-share departures are accounted in
    /// [`Link::on_wake`]).
    pub fn note_delivered(&mut self) {
        self.in_flight -= 1;
    }

    /// Handles a fair-share wake: stale versions are no-ops; a live one
    /// delivers the earliest-finishing flow (plus exact ties, in arrival
    /// order) into `out` as `(request, entered)` and returns the next wake
    /// to schedule, if any flows remain.
    pub fn on_wake(
        &mut self,
        now: f64,
        version: u64,
        out: &mut Vec<(Request, f64)>,
    ) -> Option<(f64, u64)> {
        if version != self.version {
            return None;
        }
        self.advance(now);
        // The wake was scheduled for the current minimum finish tag, so
        // that flow is due even if float rounding left `virt` a hair
        // short; ties departed together and drain in arrival order.
        let min = self.flows.iter().map(|f| f.finish).fold(f64::INFINITY, f64::min);
        debug_assert!(min.is_finite(), "live wake on an idle link");
        let mut drained: Vec<Flow> = Vec::new();
        let mut keep: Vec<Flow> = Vec::with_capacity(self.flows.len());
        for f in self.flows.drain(..) {
            if f.finish <= min {
                drained.push(f);
            } else {
                keep.push(f);
            }
        }
        self.flows = keep;
        drained.sort_by_key(|f| f.seq);
        self.in_flight -= drained.len();
        for f in drained {
            out.push((f.request, f.entered));
        }
        if self.virt < min {
            self.virt = min;
        }
        self.version += 1;
        self.next_wake(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covenant_agreements::PrincipalId;
    use covenant_sched::RequestId;

    fn req(id: u64) -> Request {
        Request { id: RequestId(id), principal: PrincipalId(0), arrival: 0.0, cost: 1.0 }
    }

    fn fifo(rate: f64) -> Link {
        Link::new(&LinkCfg { rate_bytes_per_sec: rate, discipline: LinkDiscipline::Fifo })
    }

    fn fair(rate: f64) -> Link {
        Link::new(&LinkCfg { rate_bytes_per_sec: rate, discipline: LinkDiscipline::FairShare })
    }

    #[test]
    fn fifo_serializes_transfers() {
        let mut l = fifo(1000.0);
        // 500 bytes at t=0 finishes at 0.5; a second transfer starting at
        // t=0.1 queues behind it and finishes at 1.0.
        assert_eq!(l.start(0.0, 500.0, req(0)), LinkStart::Deliver(0.5));
        assert_eq!(l.start(0.1, 500.0, req(1)), LinkStart::Deliver(1.0));
        assert_eq!(l.active_peak, 2);
        l.note_delivered();
        l.note_delivered();
        // Idle gap: a transfer at t=5 starts immediately.
        assert_eq!(l.start(5.0, 100.0, req(2)), LinkStart::Deliver(5.1));
    }

    #[test]
    fn fair_share_splits_rate() {
        let mut l = fair(1000.0);
        // Flow A: 1000 bytes alone would finish at t=1.
        let LinkStart::Wake(at, v0) = l.start(0.0, 1000.0, req(0)) else { panic!() };
        assert!((at - 1.0).abs() < 1e-12);
        // Flow B joins at t=0.5 with 250 bytes. A has 500 bytes left; both
        // now progress at 500 B/s. B finishes first at t=1.0, then A alone
        // drains its remaining 250 bytes at full rate: done at t=1.25.
        let LinkStart::Wake(at, v1) = l.start(0.5, 250.0, req(1)) else { panic!() };
        assert!((at - 1.0).abs() < 1e-12, "B finish {at}");
        let mut out = Vec::new();
        // The t=1.0 wake scheduled for A alone is stale now.
        assert_eq!(l.on_wake(1.0, v0, &mut out), None);
        assert!(out.is_empty());
        let next = l.on_wake(1.0, v1, &mut out).expect("A still draining");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0.id.0, 1);
        assert!((next.0 - 1.25).abs() < 1e-9, "A finish {}", next.0);
        out.clear();
        assert_eq!(l.on_wake(next.0, next.1, &mut out), None);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0.id.0, 0);
        assert_eq!(l.active_peak, 2);
        assert_eq!(l.in_flight, 0);
    }

    #[test]
    fn fair_share_ties_drain_in_arrival_order() {
        let mut l = fair(100.0);
        let _ = l.start(0.0, 100.0, req(7));
        let LinkStart::Wake(at, v) = l.start(0.0, 100.0, req(8)) else { panic!() };
        // Two equal flows sharing 100 B/s: both finish at t=2.
        assert!((at - 2.0).abs() < 1e-12);
        let mut out = Vec::new();
        assert_eq!(l.on_wake(at, v, &mut out), None);
        let ids: Vec<u64> = out.iter().map(|(r, _)| r.id.0).collect();
        assert_eq!(ids, vec![7, 8]);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_nonpositive_rate() {
        let _ = fifo(0.0);
    }
}
