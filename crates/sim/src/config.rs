//! Simulation configuration.

use covenant_agreements::{AgreementGraph, PrincipalId};
use covenant_sched::Policy;
use covenant_tree::Topology;
use covenant_workload::{ClientMachine, ReplySizes};

// The queuing mode is shared with the live prototypes through the
// enforcement core; re-exported here so simulator users keep one import.
pub use covenant_enforce::QueueMode;

/// How much server work one request costs, in average-request units
/// ("large requests are treated as multiple small ones").
#[derive(Debug, Clone, PartialEq)]
pub enum RequestCost {
    /// Every request costs 1 unit.
    Unit,
    /// Every request costs a fixed amount.
    Fixed(f64),
    /// Costs follow the WebBench reply-size distribution: each request
    /// costs `sampled_bytes / mean_bytes`, floored at 1.
    SizeDistributed {
        /// The size sampler.
        sizes: ReplySizes,
        /// The "average request" the capacities are scaled in (6 KB for
        /// the paper's WebBench mix).
        mean_bytes: f64,
        /// RNG seed for reproducibility.
        seed: u64,
    },
}

/// One client machine attached to a redirector.
#[derive(Debug, Clone, PartialEq)]
pub struct SimClient {
    /// The load generator.
    pub machine: ClientMachine,
    /// Which redirector this client sends to.
    pub redirector: usize,
    /// Closed-loop limit: maximum requests in flight (admitted or deferred)
    /// before the client skips scheduled sends. `None` = open loop.
    pub max_outstanding: Option<usize>,
    /// Per-request cost model.
    pub cost: RequestCost,
}

/// A scheduled mid-run capacity change ("agreements are interpreted
/// dynamically: changes in a principal's resource levels affect the amount
/// available to others", §2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityChange {
    /// Simulation time at which the change takes effect (applied at the
    /// next window boundary).
    pub at: f64,
    /// The principal whose capacity changes.
    pub principal: PrincipalId,
    /// New capacity, units/second.
    pub capacity: f64,
}

/// A scheduled mid-run agreement renegotiation: the `[lb, ub]` bounds of
/// an existing issuer→holder agreement change at a window boundary and the
/// graph re-flows (the same dynamic-reinterpretation hook capacity changes
/// use, §2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct AgreementChange {
    /// Simulation time at which the change takes effect (applied at the
    /// next window boundary).
    pub at: f64,
    /// Issuer of the renegotiated agreement.
    pub issuer: PrincipalId,
    /// Holder of the renegotiated agreement.
    pub holder: PrincipalId,
    /// New mandatory fraction.
    pub lb: f64,
    /// New upper bound.
    pub ub: f64,
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Principals, capacities, agreements.
    pub graph: AgreementGraph,
    /// Scheduling policy (community θ or provider income).
    pub policy: Policy,
    /// Scheduling window, seconds (paper: 0.1).
    pub window_secs: f64,
    /// Queuing mode.
    pub mode: QueueMode,
    /// Combining tree over the redirectors.
    pub tree: Topology,
    /// Additional information lag injected on top of the tree's own
    /// propagation delay (Figure 8 uses 10 s).
    pub extra_tree_lag: f64,
    /// Client machines.
    pub clients: Vec<SimClient>,
    /// Run length, seconds.
    pub duration: f64,
    /// Server accept-backlog limit.
    pub server_backlog: usize,
    /// Maximum retries before a deferred request is abandoned (client gives
    /// up); `u32::MAX` to retry forever.
    pub max_retries: u32,
    /// Fraction of the mandatory share admitted while the tree has not yet
    /// delivered any global information (paper: half).
    pub conservative_fraction: f64,
    /// Rate-series bucket width for reporting, seconds.
    pub bucket_secs: f64,
    /// Mid-run capacity changes, applied at window boundaries.
    pub capacity_changes: Vec<CapacityChange>,
    /// Mid-run agreement renegotiations, applied at window boundaries.
    pub agreement_changes: Vec<AgreementChange>,
    /// Failure injection: at each `(time, redirector)` the redirector
    /// crashes and restarts with empty state — credits, demand estimates,
    /// parked queues, and its delayed view of the tree are all lost.
    pub redirector_restarts: Vec<(f64, usize)>,
    /// Per-redirector locality caps (requests per window a redirector may
    /// push to each server), modelling forwarding cost. `None` entries (or
    /// a `None` table) mean uncapped. Only meaningful with the community
    /// policy.
    pub redirector_locality: Option<Vec<Option<covenant_sched::LocalityCaps>>>,
    /// One-way network latency per hop (client→redirector and
    /// redirector→server), seconds. Deferred retries pay a full extra
    /// round trip on top of `retry_delay`.
    pub network_latency: f64,
    /// Shared-rate reply-path links, one per redirector. `None` keeps the
    /// degenerate fixed-delay model (replies land `2 × network_latency`
    /// after server completion, no contention).
    pub net: Option<crate::link::NetModelCfg>,
    /// Let redirectors memoize the last solved window (see
    /// `covenant_sched::SchedulerConfig::plan_cache`). On by default; turn
    /// off to force an LP solve every window (plans are identical either
    /// way — the cache only replays exact repeats).
    pub plan_cache: bool,
    /// Record every per-arrival admission decision into
    /// [`crate::SimReport::decisions`] (time, redirector, principal, cost,
    /// outcome — retries included). Off by default: the trace grows with
    /// total arrivals. Used by the sim-vs-live differential tests to
    /// replay the exact arrival sequence against the live control plane.
    pub record_decisions: bool,
}

impl SimConfig {
    /// A baseline configuration: community policy, 100 ms windows, credit +
    /// retry mode, single redirector, no extra lag.
    pub fn new(graph: AgreementGraph, duration: f64) -> Self {
        SimConfig {
            graph,
            policy: Policy::Community { locality: None },
            window_secs: 0.1,
            mode: QueueMode::CreditRetry { retry_delay: 0.05 },
            tree: Topology::star(1, 0.0),
            extra_tree_lag: 0.0,
            clients: Vec::new(),
            duration,
            server_backlog: 4096,
            max_retries: u32::MAX,
            conservative_fraction: 0.5,
            bucket_secs: 1.0,
            capacity_changes: Vec::new(),
            agreement_changes: Vec::new(),
            redirector_restarts: Vec::new(),
            redirector_locality: None,
            network_latency: 0.0,
            net: None,
            plan_cache: true,
            record_decisions: false,
        }
    }

    /// Number of redirectors (tree nodes).
    pub fn n_redirectors(&self) -> usize {
        self.tree.len()
    }

    /// Adds a client machine.
    pub fn client(mut self, machine: ClientMachine, redirector: usize) -> Self {
        assert!(redirector < self.n_redirectors(), "redirector index out of range");
        self.clients.push(SimClient {
            machine,
            redirector,
            max_outstanding: None,
            cost: RequestCost::Unit,
        });
        self
    }

    /// Adds a closed-loop client machine with an outstanding-request limit.
    pub fn closed_loop_client(
        mut self,
        machine: ClientMachine,
        redirector: usize,
        max_outstanding: usize,
    ) -> Self {
        assert!(redirector < self.n_redirectors(), "redirector index out of range");
        self.clients.push(SimClient {
            machine,
            redirector,
            max_outstanding: Some(max_outstanding),
            cost: RequestCost::Unit,
        });
        self
    }

    /// Adds a client whose requests carry WebBench-style size-distributed
    /// costs.
    pub fn sized_client(
        mut self,
        machine: ClientMachine,
        redirector: usize,
        sizes: ReplySizes,
        mean_bytes: f64,
        seed: u64,
    ) -> Self {
        assert!(redirector < self.n_redirectors(), "redirector index out of range");
        self.clients.push(SimClient {
            machine,
            redirector,
            max_outstanding: None,
            cost: RequestCost::SizeDistributed { sizes, mean_bytes, seed },
        });
        self
    }

    /// Schedules a mid-run capacity change.
    pub fn with_capacity_change(mut self, at: f64, principal: PrincipalId, capacity: f64) -> Self {
        self.capacity_changes.push(CapacityChange { at, principal, capacity });
        self
    }

    /// Schedules a mid-run agreement renegotiation.
    pub fn with_agreement_change(
        mut self,
        at: f64,
        issuer: PrincipalId,
        holder: PrincipalId,
        lb: f64,
        ub: f64,
    ) -> Self {
        self.agreement_changes.push(AgreementChange { at, issuer, holder, lb, ub });
        self
    }

    /// Installs the shared-rate reply-path network model.
    pub fn with_net(mut self, net: crate::link::NetModelCfg) -> Self {
        assert_eq!(net.links.len(), self.n_redirectors(), "one link per redirector");
        self.net = Some(net);
        self
    }

    /// Schedules a redirector crash-and-restart (state loss) at `at`.
    pub fn with_redirector_restart(mut self, at: f64, redirector: usize) -> Self {
        assert!(redirector < self.n_redirectors(), "redirector index out of range");
        self.redirector_restarts.push((at, redirector));
        self
    }

    /// Sets one redirector's locality caps (requests/window per server).
    pub fn with_redirector_locality(
        mut self,
        redirector: usize,
        caps: covenant_sched::LocalityCaps,
    ) -> Self {
        assert!(redirector < self.n_redirectors(), "redirector index out of range");
        let table = self
            .redirector_locality
            .get_or_insert_with(|| vec![None; self.tree.len()]);
        table[redirector] = Some(caps);
        self
    }

    /// Sets the queuing mode.
    pub fn with_mode(mut self, mode: QueueMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the scheduling policy.
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the redirector tree and optional extra lag.
    pub fn with_tree(mut self, tree: Topology, extra_lag: f64) -> Self {
        self.tree = tree;
        self.extra_tree_lag = extra_lag;
        self
    }

    /// Sets the one-way per-hop network latency.
    pub fn with_network_latency(mut self, latency: f64) -> Self {
        assert!(latency >= 0.0 && latency.is_finite());
        self.network_latency = latency;
        self
    }

    /// Records every per-arrival admission decision into the report (see
    /// [`SimConfig::record_decisions`]).
    pub fn with_decision_recording(mut self) -> Self {
        self.record_decisions = true;
        self
    }
}
