//! Discrete-event simulation of the full enforcement architecture.
//!
//! The paper evaluates on a physical testbed (WebBench clients, Apache
//! servers, two redirector machines). This crate is the deterministic
//! substitute: an event-driven simulator wiring together
//!
//! * [`covenant_workload`] client machines (phased loads, rate caps,
//!   optional closed-loop outstanding-request limits),
//! * redirectors running the [`covenant_sched`] window schedulers in any of
//!   three queuing modes (explicit queues, credit + client retry — the L7
//!   self-redirect scheme — or credit + parking — the L4 kernel-queue
//!   scheme),
//! * a [`covenant_tree`] combining tree with per-node information lag (plus
//!   an optional extra lag, reproducing Figure 8's deliberate 10 s delay),
//! * capacity-limited servers with finite accept backlogs.
//!
//! The output is a per-principal, per-second processing-rate series — the
//! exact quantity plotted in the paper's Figures 6–10 — plus response-time
//! and drop statistics.
//!
//! Time is `f64` seconds from run start; the event queue breaks timestamp
//! ties by event class (window ticks, then original arrivals, then runtime
//! events FIFO — see [`events`]), so runs are fully deterministic for a
//! given seed whether arrivals are streamed lazily ([`Simulation::run`]) or
//! materialized up front ([`Simulation::run_reference`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
pub mod events;
mod link;
mod metrics;
mod redirector;
mod server;

pub use config::{AgreementChange, CapacityChange, QueueMode, RequestCost, SimClient, SimConfig};
pub use events::{Event, EventQueue};
pub use engine::{ArrivalDecision, SimReport, Simulation};
pub use link::{LinkCfg, LinkDiscipline, NetModelCfg};
pub use metrics::{RateSeries, ResponseStats};
pub use redirector::{ArrivalOutcome, SimRedirector};
pub use server::Server;
