//! The event queue: a deterministic min-heap of timestamped events.
//!
//! Events are totally ordered by `(time, key)`. The key encodes the event's
//! *class* so that lazily streamed events reproduce the exact tie-breaking
//! of an engine that pushes everything up front:
//!
//! 1. window ticks (ordered by tick index),
//! 2. original client arrivals (ordered by client index, then per-client
//!    arrival index — the order a client-by-client pre-materialization
//!    would have inserted them),
//! 3. runtime events — completions, retries — in push order (FIFO among
//!    equal timestamps).
//!
//! The legacy engine pushed all ticks first, then every client's arrivals
//! in client order, then scheduled runtime events while running; insertion
//! sequence therefore produced exactly this order. Encoding it in the key
//! lets the streaming engine hold one pending arrival per client and still
//! pop the identical event sequence.

use covenant_sched::Request;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation events.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A client request reaches a redirector.
    Arrival {
        /// The request (arrival field = this event's time).
        request: Request,
        /// Redirector receiving it.
        redirector: usize,
        /// Generating client machine (for closed-loop accounting);
        /// `usize::MAX` for retries that lost their slot.
        client: usize,
        /// How many times this request has been retried already.
        retries: u32,
        /// Reply bytes this request will put on the link (0.0 = derive
        /// from cost × the net model's `unit_bytes`; only read under a
        /// network model).
        bytes: f64,
    },
    /// A redirector's scheduling window rolls over.
    WindowTick {
        /// The redirector whose window ticks.
        redirector: usize,
    },
    /// A server finishes one request.
    Completion {
        /// Server index (principal id of the owner).
        server: usize,
    },
    /// A FIFO link finished transferring one reply (scheduled the moment
    /// the transfer started — FIFO completion times never move).
    ReplyDelivered {
        /// The request whose reply landed.
        request: Request,
        /// The link it crossed.
        link: usize,
        /// When the transfer entered the link (for transfer-time stats).
        entered: f64,
    },
    /// A fair-share link's earliest departure may be due. Carries the link
    /// state version it was scheduled against; the link ignores stale
    /// versions (a newer arrival or departure re-scheduled the wake).
    LinkWake {
        /// The link to wake.
        link: usize,
        /// State version at scheduling time.
        version: u64,
    },
}

/// Tie-break key among equal timestamps; see the module docs for why the
/// variant order (ticks < arrivals < runtime) is load-bearing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKey {
    /// Initial window ticks, by tick index.
    Tick(u64),
    /// Original client arrivals, by (client, per-client arrival index).
    Arrival {
        /// Generating client machine.
        client: u64,
        /// Per-client arrival sequence number.
        index: u64,
    },
    /// Everything scheduled while the simulation runs, in push order.
    Runtime(u64),
}

/// Heap entry ordered by time, then key.
#[derive(Debug, Clone)]
struct Scheduled {
    time: f64,
    key: EventKey,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("finite event times")
            .then(other.key.cmp(&self.key))
    }
}

/// Deterministic event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
    peak: usize,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a runtime `event` at absolute time `time` (FIFO among
    /// equal timestamps, after any tick or original arrival at the same
    /// time).
    pub fn push(&mut self, time: f64, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_keyed(time, EventKey::Runtime(seq), event);
    }

    /// Schedules window tick number `index` (ticks sort before everything
    /// else at the same timestamp).
    pub fn push_tick(&mut self, time: f64, index: u64, event: Event) {
        self.push_keyed(time, EventKey::Tick(index), event);
    }

    /// Schedules client `client`'s `index`-th original arrival (arrivals
    /// sort after ticks and before runtime events at the same timestamp,
    /// by client then per-client index).
    pub fn push_arrival(&mut self, time: f64, client: usize, index: u64, event: Event) {
        self.push_keyed(time, EventKey::Arrival { client: client as u64, index }, event);
    }

    fn push_keyed(&mut self, time: f64, key: EventKey, event: Event) {
        assert!(time.is_finite(), "event time must be finite");
        self.heap.push(Scheduled { time, key, event });
        if self.heap.len() > self.peak {
            self.peak = self.heap.len();
        }
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Largest number of events ever pending at once.
    pub fn peak_len(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, Event::WindowTick { redirector: 3 });
        q.push(1.0, Event::WindowTick { redirector: 1 });
        q.push(2.0, Event::WindowTick { redirector: 2 });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for r in 0..5 {
            q.push(1.0, Event::WindowTick { redirector: r });
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::WindowTick { redirector } => redirector,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn classes_order_ticks_arrivals_runtime_at_equal_time() {
        use covenant_agreements::PrincipalId;
        let mut q = EventQueue::new();
        // Pushed in deliberately scrambled order; all at t = 1.0.
        q.push(1.0, Event::Completion { server: 9 });
        q.push_arrival(
            1.0,
            2,
            0,
            Event::Arrival {
                request: Request::unit(0, PrincipalId(0), 1.0),
                redirector: 0,
                client: 2,
                retries: 0,
                bytes: 0.0,
            },
        );
        q.push_tick(1.0, 5, Event::WindowTick { redirector: 0 });
        q.push_arrival(
            1.0,
            1,
            3,
            Event::Arrival {
                request: Request::unit(1, PrincipalId(0), 1.0),
                redirector: 0,
                client: 1,
                retries: 0,
                bytes: 0.0,
            },
        );
        let order: Vec<&'static str> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::WindowTick { .. } => "tick",
                Event::Arrival { client: 1, .. } => "arrival-c1",
                Event::Arrival { .. } => "arrival-c2",
                _ => "runtime",
            })
            .collect();
        assert_eq!(order, vec!["tick", "arrival-c1", "arrival-c2", "runtime"]);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        q.push(1.0, Event::Completion { server: 0 });
        q.push(2.0, Event::Completion { server: 1 });
        q.push(3.0, Event::Completion { server: 2 });
        q.pop();
        q.pop();
        q.push(4.0, Event::Completion { server: 3 });
        assert_eq!(q.peak_len(), 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1.0, Event::Completion { server: 0 });
        q.push(2.0, Event::Completion { server: 1 });
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, Event::Completion { server: 0 });
    }
}
