//! The event queue: a deterministic min-heap of timestamped events.

use covenant_sched::Request;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation events.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A client request reaches a redirector.
    Arrival {
        /// The request (arrival field = this event's time).
        request: Request,
        /// Redirector receiving it.
        redirector: usize,
        /// Generating client machine (for closed-loop accounting);
        /// `usize::MAX` for retries that lost their slot.
        client: usize,
        /// How many times this request has been retried already.
        retries: u32,
    },
    /// A redirector's scheduling window rolls over.
    WindowTick {
        /// The redirector whose window ticks.
        redirector: usize,
    },
    /// A server finishes one request.
    Completion {
        /// Server index (principal id of the owner).
        server: usize,
    },
}

/// Heap entry ordered by time, then insertion sequence (FIFO among equal
/// timestamps, making runs deterministic).
#[derive(Debug, Clone)]
struct Scheduled {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("finite event times")
            .then(other.seq.cmp(&self.seq))
    }
}

/// Deterministic event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: f64, event: Event) {
        assert!(time.is_finite(), "event time must be finite");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, Event::WindowTick { redirector: 3 });
        q.push(1.0, Event::WindowTick { redirector: 1 });
        q.push(2.0, Event::WindowTick { redirector: 2 });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for r in 0..5 {
            q.push(1.0, Event::WindowTick { redirector: r });
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::WindowTick { redirector } => redirector,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1.0, Event::Completion { server: 0 });
        q.push(2.0, Event::Completion { server: 1 });
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, Event::Completion { server: 0 });
    }
}
