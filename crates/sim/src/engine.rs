//! The simulation main loop.

use crate::config::{QueueMode, RequestCost, SimConfig};
use crate::events::{Event, EventQueue};
use crate::metrics::{RateSeries, ResponseStats};
use crate::redirector::{ArrivalOutcome, SimRedirector};
use crate::server::{Accept, Server};
use covenant_sched::{Request, RequestId, SchedulerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Per-request bookkeeping for response times and closed-loop accounting.
#[derive(Debug, Clone, Copy)]
struct RequestMeta {
    client: usize,
    first_arrival: f64,
}

/// Aggregated results of one run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-principal completed-request rates (the paper's plotted series).
    pub rates: RateSeries,
    /// Per-principal response-time statistics.
    pub response: Vec<ResponseStats>,
    /// Requests offered per principal (original arrivals, not retries).
    pub offered: Vec<u64>,
    /// Requests forwarded to servers, per principal.
    pub admitted: Vec<u64>,
    /// Self-redirect deferrals issued, per principal.
    pub deferred: Vec<u64>,
    /// Requests dropped at server backlogs.
    pub dropped_server: u64,
    /// Deferred requests abandoned after exhausting retries.
    pub abandoned: u64,
    /// Scheduled sends skipped because a closed-loop client was at its
    /// outstanding limit.
    pub skipped_closed_loop: u64,
    /// Per-server utilization over the run.
    pub server_utilization: Vec<f64>,
    /// Total coordination messages exchanged over the combining tree.
    pub tree_messages: u64,
    /// Coordination messages a pairwise scheme would have needed.
    pub pairwise_messages_equivalent: u64,
    /// Plan-cache hits summed over all redirectors (windows that replayed
    /// the previous solve instead of running the LP).
    pub plan_cache_hits: u64,
    /// Plan-cache misses summed over all redirectors (windows that ran the
    /// LP).
    pub plan_cache_misses: u64,
}

impl SimReport {
    /// Total completed requests for principal `i`.
    pub fn completed(&self, i: usize) -> u64 {
        self.response[i].count
    }
}

/// A configured simulation, ready to run.
pub struct Simulation {
    cfg: SimConfig,
}

impl Simulation {
    /// Wraps a configuration.
    pub fn new(cfg: SimConfig) -> Self {
        Simulation { cfg }
    }

    /// Runs to completion and reports.
    pub fn run(self) -> SimReport {
        let cfg = self.cfg;
        let n = cfg.graph.len();
        let n_redirectors = cfg.n_redirectors();
        let levels = cfg.graph.access_levels();

        // Per-redirector scheduler configuration: the policy is shared,
        // but locality caps (forwarding-cost limits) are per node.
        let sched_cfg_for = |id: usize| -> SchedulerConfig {
            let mut policy = cfg.policy.clone();
            if let (covenant_sched::Policy::Community { locality }, Some(table)) =
                (&mut policy, &cfg.redirector_locality)
            {
                if let Some(caps) = table.get(id).and_then(|c| c.clone()) {
                    *locality = Some(caps);
                }
            }
            SchedulerConfig {
                window_secs: cfg.window_secs,
                policy,
                conservative_fraction: cfg.conservative_fraction,
                plan_cache: cfg.plan_cache,
            }
        };
        let mut redirectors: Vec<SimRedirector> = (0..n_redirectors)
            .map(|id| {
                let lag = cfg.tree.information_lag(id) + cfg.extra_tree_lag;
                SimRedirector::new(id, &levels, sched_cfg_for(id), cfg.mode.clone(), lag)
            })
            .collect();

        let mut servers: Vec<Server> = cfg
            .graph
            .capacities()
            .iter()
            .map(|&c| Server::new(c, cfg.server_backlog))
            .collect();

        let mut events = EventQueue::new();
        // Window ticks: one event per boundary drives every redirector in
        // lock-step (the paper's redirectors share the 100 ms cadence).
        let mut t = 0.0;
        while t <= cfg.duration {
            events.push(t, Event::WindowTick { redirector: 0 });
            t += cfg.window_secs;
        }

        // Client arrivals, with per-client request-cost models.
        let mut offered = vec![0u64; n];
        let mut next_id: u64 = 0;
        let mut client_redirector = Vec::with_capacity(cfg.clients.len());
        let mut client_limit = Vec::with_capacity(cfg.clients.len());
        for (ci, c) in cfg.clients.iter().enumerate() {
            client_redirector.push(c.redirector);
            client_limit.push(c.max_outstanding);
            let mut size_rng = match &c.cost {
                RequestCost::SizeDistributed { seed, .. } => {
                    Some(StdRng::seed_from_u64(*seed ^ ci as u64))
                }
                _ => None,
            };
            for a in c.machine.arrivals() {
                if a.time > cfg.duration {
                    continue;
                }
                let cost = match &c.cost {
                    RequestCost::Unit => 1.0,
                    RequestCost::Fixed(x) => *x,
                    RequestCost::SizeDistributed { sizes, mean_bytes, .. } => {
                        let rng = size_rng.as_mut().expect("rng for sized client");
                        let bytes = sizes.sample(rng);
                        sizes.cost_units(bytes, *mean_bytes)
                    }
                };
                let req = Request { id: RequestId(next_id), principal: a.principal, arrival: a.time, cost };
                next_id += 1;
                // The request reaches the redirector one hop later.
                events.push(
                    a.time + cfg.network_latency,
                    Event::Arrival { request: req, redirector: c.redirector, client: ci, retries: 0 },
                );
            }
        }

        // Capacity-change schedule, applied at window boundaries.
        let mut pending_changes = cfg.capacity_changes.clone();
        pending_changes.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite times"));
        let mut live_graph = cfg.graph.clone();
        let mut pending_restarts = cfg.redirector_restarts.clone();
        pending_restarts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));

        let mut rates = RateSeries::new(n, cfg.bucket_secs);
        let mut response: Vec<ResponseStats> = vec![ResponseStats::default(); n];
        let mut admitted = vec![0u64; n];
        let mut deferred = vec![0u64; n];
        let mut dropped_server = 0u64;
        let mut abandoned = 0u64;
        let mut skipped = 0u64;
        let mut tree_messages = 0u64;
        let mut outstanding: Vec<usize> = vec![0; cfg.clients.len()];
        let mut meta: HashMap<u64, RequestMeta> = HashMap::new();

        // A self-redirect costs the client one full round trip on top of
        // its think/retry delay.
        let retry_delay = match cfg.mode {
            QueueMode::CreditRetry { retry_delay } => retry_delay + 2.0 * cfg.network_latency,
            _ => 0.0,
        };
        let hop = cfg.network_latency;

        while let Some((now, event)) = events.pop() {
            if now > cfg.duration + 1e-9 {
                break;
            }
            match event {
                Event::Arrival { request, redirector, client, retries } => {
                    if retries == 0 {
                        // Closed-loop gate on original sends only.
                        if let Some(limit) = client_limit[client] {
                            if outstanding[client] >= limit {
                                skipped += 1;
                                continue;
                            }
                        }
                        offered[request.principal.0] += 1;
                        outstanding[client] += 1;
                        meta.insert(
                            request.id.0,
                            RequestMeta { client, first_arrival: request.arrival },
                        );
                    }
                    match redirectors[redirector].on_arrival(request) {
                        ArrivalOutcome::Forward { server } => {
                            admitted[request.principal.0] += 1;
                            match servers[server].offer(now + hop, request) {
                                Accept::CompletesAt(done) => {
                                    events.push(done, Event::Completion { server });
                                }
                                Accept::Dropped => {
                                    dropped_server += 1;
                                    if let Some(m) = meta.remove(&request.id.0) {
                                        outstanding[m.client] =
                                            outstanding[m.client].saturating_sub(1);
                                    }
                                }
                            }
                        }
                        ArrivalOutcome::Defer => {
                            deferred[request.principal.0] += 1;
                            if retries < cfg.max_retries {
                                events.push(
                                    now + retry_delay,
                                    Event::Arrival {
                                        request,
                                        redirector,
                                        client,
                                        retries: retries + 1,
                                    },
                                );
                            } else {
                                abandoned += 1;
                                if let Some(m) = meta.remove(&request.id.0) {
                                    outstanding[m.client] =
                                        outstanding[m.client].saturating_sub(1);
                                }
                            }
                        }
                        ArrivalOutcome::Queued => {}
                    }
                }
                Event::WindowTick { .. } => {
                    // Apply any due capacity changes: re-flow the agreement
                    // graph and install fresh levels everywhere.
                    let mut changed = false;
                    while pending_changes.first().is_some_and(|c| c.at <= now) {
                        let c = pending_changes.remove(0);
                        live_graph
                            .set_capacity(c.principal, c.capacity)
                            .expect("valid capacity change");
                        servers[c.principal.0].set_capacity(c.capacity);
                        changed = true;
                    }
                    if changed {
                        let fresh = live_graph.access_levels();
                        for r in redirectors.iter_mut() {
                            r.update_levels(&fresh);
                        }
                    }
                    // Crash-and-restart injection: replace the redirector
                    // with a fresh instance; queued/parked requests and all
                    // learned state are lost, exactly like a process crash.
                    while pending_restarts.first().is_some_and(|r| r.0 <= now) {
                        let (_, id) = pending_restarts.remove(0);
                        let lag = cfg.tree.information_lag(id) + cfg.extra_tree_lag;
                        redirectors[id] = SimRedirector::new(
                            id,
                            &live_graph.access_levels(),
                            sched_cfg_for(id),
                            cfg.mode.clone(),
                            lag,
                        );
                    }
                    // Every redirector rolls its window; collect published
                    // demand vectors, aggregate over the tree, and deliver
                    // (with per-node lag) via each node's DelayedView.
                    let mut demands: Vec<Vec<f64>> = Vec::with_capacity(n_redirectors);
                    for redirector in redirectors.iter_mut() {
                        let (released, demand) = redirector.on_window_tick(now);
                        demands.push(demand);
                        for (req, server) in released {
                            admitted[req.principal.0] += 1;
                            match servers[server].offer(now + hop, req) {
                                Accept::CompletesAt(done) => {
                                    events.push(done, Event::Completion { server });
                                }
                                Accept::Dropped => {
                                    dropped_server += 1;
                                    if let Some(m) = meta.remove(&req.id.0) {
                                        outstanding[m.client] =
                                            outstanding[m.client].saturating_sub(1);
                                    }
                                }
                            }
                        }
                    }
                    let round = cfg.tree.aggregate(&demands);
                    tree_messages += round.messages() as u64;
                    for r in redirectors.iter_mut() {
                        r.global_view.publish(now, round.total.clone());
                    }
                }
                Event::Completion { server } => {
                    let req = servers[server].complete();
                    rates.record(req.principal, now, req.cost);
                    if let Some(m) = meta.remove(&req.id.0) {
                        // The response crosses two hops back to the client.
                        response[req.principal.0].record(now + 2.0 * hop - m.first_arrival);
                        outstanding[m.client] = outstanding[m.client].saturating_sub(1);
                    }
                }
            }
        }

        let windows = (cfg.duration / cfg.window_secs).ceil() as u64 + 1;
        SimReport {
            rates,
            response,
            offered,
            admitted,
            deferred,
            dropped_server,
            abandoned,
            skipped_closed_loop: skipped,
            server_utilization: servers
                .iter()
                .map(|s| s.utilization(cfg.duration))
                .collect(),
            tree_messages,
            pairwise_messages_equivalent: windows * cfg.tree.pairwise_messages() as u64,
            plan_cache_hits: redirectors.iter().map(|r| r.cache_stats().0).sum(),
            plan_cache_misses: redirectors.iter().map(|r| r.cache_stats().1).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covenant_agreements::{AgreementGraph, PrincipalId};
    use covenant_sched::Policy;
    use covenant_tree::Topology;
    use covenant_workload::{ClientMachine, PhasedLoad};

    /// Single server 100 req/s shared [0.2,1]/[0.8,1] between A and B.
    fn small_system() -> AgreementGraph {
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 100.0);
        let a = g.add_principal("A", 0.0);
        let b = g.add_principal("B", 0.0);
        g.add_agreement(s, a, 0.2, 1.0).unwrap();
        g.add_agreement(s, b, 0.8, 1.0).unwrap();
        g
    }

    #[test]
    fn underload_serves_everything() {
        let g = small_system();
        let a = PrincipalId(1);
        let cfg = SimConfig::new(g, 20.0).client(
            ClientMachine::uniform(0, a, PhasedLoad::constant(30.0, 20.0)),
            0,
        );
        let report = Simulation::new(cfg).run();
        // 30 req/s for 20 s = 600 offered; nearly all should complete
        // (minus the cold-start window and in-flight tail).
        assert_eq!(report.offered[1], 600);
        assert!(report.completed(1) > 550, "completed {}", report.completed(1));
        // Steady-state rate ≈ 30 req/s.
        let mid = report.rates.mean_rate_secs(a, 5.0, 18.0);
        assert!((mid - 30.0).abs() < 3.0, "rate {mid}");
    }

    #[test]
    fn overload_respects_mandatory_shares() {
        let g = small_system();
        let a = PrincipalId(1);
        let b = PrincipalId(2);
        let cfg = SimConfig::new(g, 30.0)
            .client(ClientMachine::uniform(0, a, PhasedLoad::constant(200.0, 30.0)), 0)
            .client(ClientMachine::uniform(1, b, PhasedLoad::constant(200.0, 30.0)), 0);
        let report = Simulation::new(cfg).run();
        let rate_a = report.rates.mean_rate_secs(a, 10.0, 28.0);
        let rate_b = report.rates.mean_rate_secs(b, 10.0, 28.0);
        // B guaranteed 80 req/s, A 20 req/s under overload.
        assert!((rate_b - 80.0).abs() < 8.0, "B rate {rate_b}");
        assert!((rate_a - 20.0).abs() < 8.0, "A rate {rate_a}");
    }

    #[test]
    fn idle_partner_capacity_flows_to_active() {
        let g = small_system();
        let a = PrincipalId(1);
        let cfg = SimConfig::new(g, 20.0).client(
            ClientMachine::uniform(0, a, PhasedLoad::constant(200.0, 20.0)),
            0,
        );
        let report = Simulation::new(cfg).run();
        // A alone can burst to the full 100 req/s.
        let rate_a = report.rates.mean_rate_secs(a, 5.0, 18.0);
        assert!((rate_a - 100.0).abs() < 10.0, "A rate {rate_a}");
    }

    #[test]
    fn explicit_mode_also_enforces() {
        let g = small_system();
        let a = PrincipalId(1);
        let b = PrincipalId(2);
        let cfg = SimConfig::new(g, 30.0)
            .with_mode(QueueMode::Explicit)
            .client(ClientMachine::uniform(0, a, PhasedLoad::constant(200.0, 30.0)), 0)
            .client(ClientMachine::uniform(1, b, PhasedLoad::constant(200.0, 30.0)), 0);
        let report = Simulation::new(cfg).run();
        let rate_b = report.rates.mean_rate_secs(b, 10.0, 28.0);
        assert!((rate_b - 80.0).abs() < 10.0, "B rate {rate_b}");
    }

    #[test]
    fn park_mode_also_enforces() {
        let g = small_system();
        let a = PrincipalId(1);
        let b = PrincipalId(2);
        let cfg = SimConfig::new(g, 30.0)
            .with_mode(QueueMode::CreditPark)
            .client(ClientMachine::uniform(0, a, PhasedLoad::constant(200.0, 30.0)), 0)
            .client(ClientMachine::uniform(1, b, PhasedLoad::constant(200.0, 30.0)), 0);
        let report = Simulation::new(cfg).run();
        let rate_b = report.rates.mean_rate_secs(b, 10.0, 28.0);
        assert!((rate_b - 80.0).abs() < 10.0, "B rate {rate_b}");
    }

    #[test]
    fn two_redirectors_coordinate() {
        let g = small_system();
        let a = PrincipalId(1);
        let b = PrincipalId(2);
        let cfg = SimConfig::new(g, 30.0)
            .with_tree(Topology::star(2, 0.0), 0.0)
            .client(ClientMachine::uniform(0, a, PhasedLoad::constant(200.0, 30.0)), 0)
            .client(ClientMachine::uniform(1, b, PhasedLoad::constant(200.0, 30.0)), 1);
        let report = Simulation::new(cfg).run();
        let rate_a = report.rates.mean_rate_secs(a, 10.0, 28.0);
        let rate_b = report.rates.mean_rate_secs(b, 10.0, 28.0);
        assert!((rate_b - 80.0).abs() < 10.0, "B rate {rate_b}");
        assert!((rate_a - 20.0).abs() < 10.0, "A rate {rate_a}");
        assert!(report.tree_messages > 0);
        assert!(report.pairwise_messages_equivalent > report.tree_messages);
    }

    #[test]
    fn deterministic_runs() {
        let g = small_system();
        let a = PrincipalId(1);
        let mk = || {
            let cfg = SimConfig::new(small_system(), 10.0).client(
                ClientMachine::uniform(0, a, PhasedLoad::constant(50.0, 10.0)),
                0,
            );
            let r = Simulation::new(cfg).run();
            (r.offered.clone(), r.admitted.clone(), r.completed(1))
        };
        assert_eq!(mk(), mk());
        drop(g);
    }

    #[test]
    fn closed_loop_limits_outstanding() {
        let g = small_system();
        let a = PrincipalId(1);
        // Offered 1000 req/s into a 100 req/s system with only 2 slots:
        // most scheduled sends are skipped.
        let cfg = SimConfig::new(g, 10.0).closed_loop_client(
            ClientMachine::uniform(0, a, PhasedLoad::constant(1000.0, 10.0)),
            0,
            2,
        );
        let report = Simulation::new(cfg).run();
        assert!(report.skipped_closed_loop > 5000, "skipped {}", report.skipped_closed_loop);
        assert!(report.completed(1) < 1100);
    }

    #[test]
    fn network_latency_raises_response_time_not_rates() {
        let run = |lat: f64| {
            let g = small_system();
            let a = PrincipalId(1);
            let cfg = SimConfig::new(g, 20.0)
                .with_network_latency(lat)
                .client(ClientMachine::uniform(0, a, PhasedLoad::constant(50.0, 20.0)), 0);
            let r = Simulation::new(cfg).run();
            (
                r.rates.mean_rate_secs(a, 5.0, 18.0),
                r.response[1].mean().unwrap_or(0.0),
            )
        };
        let (rate0, resp0) = run(0.0);
        let (rate1, resp1) = run(0.04);
        // Throughput unaffected by latency (open loop, within quota).
        assert!((rate0 - rate1).abs() < 3.0, "{rate0} vs {rate1}");
        // Response time grows by at least the 3 extra hops (120 ms).
        assert!(
            resp1 - resp0 > 0.10,
            "latency not reflected: {resp0:.3} -> {resp1:.3}"
        );
    }

    #[test]
    fn per_redirector_locality_caps_bind() {
        // Two redirectors front a 100 req/s server; R1's locality cap
        // limits it to 3 requests/window (30 req/s) toward the server,
        // while R0 is uncapped. A's clients on R1 are throttled by
        // locality; B's on R0 are not.
        use covenant_sched::LocalityCaps;
        let g = small_system();
        let a = PrincipalId(1);
        let b = PrincipalId(2);
        let cfg = SimConfig::new(g, 30.0)
            .with_tree(Topology::star(2, 0.0), 0.0)
            .client(ClientMachine::uniform(0, a, PhasedLoad::constant(100.0, 30.0)), 1)
            .client(ClientMachine::uniform(1, b, PhasedLoad::constant(40.0, 30.0)), 0)
            .with_redirector_locality(1, LocalityCaps(vec![3.0, 0.0, 0.0]));
        let report = Simulation::new(cfg).run();
        let rate_a = report.rates.mean_rate_secs(a, 10.0, 28.0);
        let rate_b = report.rates.mean_rate_secs(b, 10.0, 28.0);
        assert!(rate_a <= 33.0, "A exceeded its redirector's locality cap: {rate_a}");
        assert!((rate_b - 40.0).abs() < 5.0, "B throttled unexpectedly: {rate_b}");
    }

    #[test]
    fn redirector_restart_recovers_enforcement() {
        let g = small_system();
        let a = PrincipalId(1);
        let b = PrincipalId(2);
        let cfg = SimConfig::new(g, 40.0)
            .client(ClientMachine::uniform(0, a, PhasedLoad::constant(200.0, 40.0)), 0)
            .client(ClientMachine::uniform(1, b, PhasedLoad::constant(200.0, 40.0)), 0)
            .with_redirector_restart(20.0, 0);
        let report = Simulation::new(cfg).run();
        // Steady enforcement before the crash and after recovery.
        let b_before = report.rates.mean_rate_secs(b, 10.0, 19.0);
        let b_after = report.rates.mean_rate_secs(b, 25.0, 39.0);
        assert!((b_before - 80.0).abs() < 8.0, "before {b_before}");
        assert!((b_after - 80.0).abs() < 8.0, "after {b_after}");
        // The restart causes at most a brief dip, never an over-admission:
        // B's rate in the crash window must not exceed its share by much.
        let crash_bucket = report.rates.mean_rate_secs(b, 20.0, 22.0);
        assert!(crash_bucket <= 100.0 + 1.0, "crash bucket {crash_bucket}");
    }

    #[test]
    fn provider_income_accounting() {
        // Provider 100 req/s; A [0.5,1] pays 2, B [0.1,1] pays 1. A idle,
        // B floods: B beyond mandatory earns income; when both flood, A is
        // preferred and neither goes far beyond mandatory+leftover.
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 100.0);
        let a = g.add_principal("A", 0.0);
        let b = g.add_principal("B", 0.0);
        g.add_agreement(s, a, 0.5, 1.0).unwrap();
        g.add_agreement(s, b, 0.1, 1.0).unwrap();
        let prices = [0.0, 2.0, 1.0];
        let mandatory = [0.0, 50.0, 10.0];
        let cfg = SimConfig::new(g, 30.0)
            .with_policy(Policy::Provider { prices: prices.to_vec() })
            .client(ClientMachine::uniform(0, PrincipalId(2), PhasedLoad::constant(200.0, 30.0)), 0);
        let report = Simulation::new(cfg).run();
        // B alone: served ~100, beyond mandatory 10 → ~90/s × price 1.
        let income = report.rates.provider_income(&prices, &mandatory);
        assert!(income > 80.0 * 25.0, "income {income}");
        assert!(income < 95.0 * 31.0, "income {income}");
    }

    #[test]
    fn capacity_change_reflows_agreements() {
        // Server 100 → 200 at t=15: B's [0.8,1] share doubles from 80 to
        // 160 req/s mid-run without reconfiguring the redirector.
        let g = small_system();
        let b = PrincipalId(2);
        let cfg = SimConfig::new(g, 30.0)
            .client(ClientMachine::uniform(0, b, PhasedLoad::constant(300.0, 30.0)), 0)
            .client(
                ClientMachine::uniform(1, PrincipalId(1), PhasedLoad::constant(300.0, 30.0)),
                0,
            )
            .with_capacity_change(15.0, PrincipalId(0), 200.0);
        let report = Simulation::new(cfg).run();
        let before = report.rates.mean_rate_secs(b, 5.0, 14.0);
        let after = report.rates.mean_rate_secs(b, 20.0, 29.0);
        assert!((before - 80.0).abs() < 8.0, "before {before}");
        assert!((after - 160.0).abs() < 12.0, "after {after}");
    }

    #[test]
    fn sized_requests_enforced_in_cost_units() {
        // A sends 5-unit requests, B unit requests; both hold [0.5, 0.5] of
        // a 100-unit/s server. Under overload each gets 50 *units*/s: A
        // completes ~10 requests/s (50 units), B ~50.
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 100.0);
        let a = g.add_principal("A", 0.0);
        let b = g.add_principal("B", 0.0);
        g.add_agreement(s, a, 0.5, 0.5).unwrap();
        g.add_agreement(s, b, 0.5, 0.5).unwrap();
        let mut cfg = SimConfig::new(g, 30.0)
            .client(ClientMachine::uniform(1, b, PhasedLoad::constant(100.0, 30.0)), 0);
        cfg.clients.push(crate::SimClient {
            machine: ClientMachine::uniform(0, a, PhasedLoad::constant(40.0, 30.0)),
            redirector: 0,
            max_outstanding: None,
            cost: crate::RequestCost::Fixed(5.0),
        });
        let report = Simulation::new(cfg).run();
        // Rates are recorded in cost units: both near 50 units/s.
        let units_a = report.rates.mean_rate_secs(a, 10.0, 28.0);
        let units_b = report.rates.mean_rate_secs(b, 10.0, 28.0);
        assert!((units_a - 50.0).abs() < 10.0, "A units {units_a}");
        assert!((units_b - 50.0).abs() < 10.0, "B units {units_b}");
        // Request counts differ 5:1.
        let req_a = report.completed(1) as f64 / 30.0;
        assert!((req_a - 10.0).abs() < 2.5, "A req/s {req_a}");
    }

    #[test]
    fn provider_policy_runs_in_sim() {
        let g = small_system();
        let a = PrincipalId(1);
        let b = PrincipalId(2);
        let cfg = SimConfig::new(g, 20.0)
            .with_policy(Policy::Provider { prices: vec![0.0, 1.0, 3.0] })
            .client(ClientMachine::uniform(0, a, PhasedLoad::constant(200.0, 20.0)), 0)
            .client(ClientMachine::uniform(1, b, PhasedLoad::constant(200.0, 20.0)), 0);
        let report = Simulation::new(cfg).run();
        // B pays more: under overload B gets its upper bound beyond A's
        // mandatory floor. A holds its mandatory 20; B gets 80.
        let rate_a = report.rates.mean_rate_secs(a, 8.0, 18.0);
        let rate_b = report.rates.mean_rate_secs(b, 8.0, 18.0);
        assert!((rate_a - 20.0).abs() < 8.0, "A rate {rate_a}");
        assert!((rate_b - 80.0).abs() < 8.0, "B rate {rate_b}");
    }
}
