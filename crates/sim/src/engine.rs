//! The simulation main loop.
//!
//! Two execution paths share the same event semantics:
//!
//! * [`Simulation::run`] — the production engine. Client arrivals are
//!   *streamed*: the event heap holds at most one pending arrival per
//!   client (plus in-flight completions/retries and the next window tick),
//!   so memory is bounded by concurrency, not run length. Per-request
//!   metadata lives in a dense free-list slab keyed by the sequential
//!   [`RequestId`]s the engine itself assigns.
//! * [`Simulation::run_reference`] — the pre-optimization engine, retained
//!   as a correctness oracle and benchmark baseline (the same role
//!   `solve_reference` plays for the LP). It materializes every arrival up
//!   front, pushes all of them into the heap before the clock starts, and
//!   tracks metadata in a `HashMap` — the seed's O(total requests) cost
//!   profile.
//!
//! The [`EventQueue`](crate::events::EventQueue)'s class-keyed ordering
//! guarantees both paths pop the identical event sequence, so their
//! reports agree on every behavioral observable (see
//! [`SimReport::outcome_eq`] and the `streaming_matches_reference_*`
//! tests).

use crate::config::{QueueMode, RequestCost, SimConfig};
use crate::events::{Event, EventQueue};
use crate::link::{Link, LinkStart};
use crate::metrics::{RateSeries, ResponseStats};
use crate::redirector::{ArrivalOutcome, SimRedirector};
use crate::server::{Accept, Server};
use covenant_agreements::PrincipalId;
use covenant_sched::{Request, RequestId, SchedulerConfig};
use covenant_workload::ArrivalStream;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

/// Per-request bookkeeping for response times and closed-loop accounting.
#[derive(Debug, Clone, Copy)]
struct RequestMeta {
    client: usize,
    first_arrival: f64,
    /// Reply bytes this request puts on its redirector's link (only read
    /// under a network model; 0.0 otherwise).
    bytes: f64,
}

/// Dense free-list slab for in-flight request metadata.
///
/// Request IDs are slot indices: allocated when the engine first sees a
/// request, recycled when it completes, drops, or is abandoned. Lookup is
/// an array index instead of a hash, and occupancy never exceeds the number
/// of requests simultaneously in flight.
#[derive(Debug, Default)]
struct MetaSlab {
    slots: Vec<Option<RequestMeta>>,
    free: Vec<usize>,
}

impl MetaSlab {
    fn insert(&mut self, meta: RequestMeta) -> u64 {
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot].is_none());
                self.slots[slot] = Some(meta);
                slot as u64
            }
            None => {
                self.slots.push(Some(meta));
                (self.slots.len() - 1) as u64
            }
        }
    }

    fn remove(&mut self, id: u64) -> Option<RequestMeta> {
        let slot = id as usize;
        let meta = self.slots.get_mut(slot)?.take();
        if meta.is_some() {
            self.free.push(slot);
        }
        meta
    }

    fn get(&self, id: u64) -> Option<RequestMeta> {
        self.slots.get(id as usize).copied().flatten()
    }
}

/// One client's lazy request source: the arrival stream plus the cost
/// model, consumed in generation order so sampled costs match a
/// pre-materialized trace exactly.
struct ClientGen {
    stream: ArrivalStream,
    cost: RequestCost,
    size_rng: Option<StdRng>,
    /// Per-client arrival sequence number (the event queue's tie-break).
    next_index: u64,
    /// Target redirector (cached from the config).
    redirector: usize,
    done: bool,
}

impl ClientGen {
    fn new(ci: usize, client: &crate::config::SimClient) -> Self {
        let size_rng = match &client.cost {
            RequestCost::SizeDistributed { seed, .. } => {
                Some(StdRng::seed_from_u64(*seed ^ ci as u64))
            }
            _ => None,
        };
        ClientGen {
            stream: client.machine.stream(),
            cost: client.cost.clone(),
            size_rng,
            next_index: 0,
            redirector: client.redirector,
            done: false,
        }
    }

    /// Pushes this client's next arrival (if any remains within the run)
    /// into the event queue. Arrival times are monotone per client, so the
    /// first one past `duration` ends the stream.
    fn refill(&mut self, ci: usize, duration: f64, latency: f64, events: &mut EventQueue) {
        if self.done {
            return;
        }
        match self.stream.next() {
            Some(a) if a.time <= duration => {
                // Sized clients carry their sampled reply bytes so the
                // link model transfers the exact 200 B–500 KB draw, not
                // the unit-floored cost; other cost models leave 0.0 and
                // the engine derives bytes from cost × unit_bytes.
                let (cost, bytes) = match &self.cost {
                    RequestCost::Unit => (1.0, 0.0),
                    RequestCost::Fixed(x) => (*x, 0.0),
                    RequestCost::SizeDistributed { sizes, mean_bytes, .. } => {
                        let rng = self.size_rng.as_mut().expect("rng for sized client");
                        let bytes = sizes.sample(rng);
                        (sizes.cost_units(bytes, *mean_bytes), bytes as f64)
                    }
                };
                // The id is assigned from the slab when the event pops.
                let req = Request {
                    id: RequestId(u64::MAX),
                    principal: a.principal,
                    arrival: a.time,
                    cost,
                };
                let index = self.next_index;
                self.next_index += 1;
                // The request reaches the redirector one hop later.
                events.push_arrival(
                    a.time + latency,
                    ci,
                    index,
                    Event::Arrival {
                        request: req,
                        redirector: self.redirector,
                        client: ci,
                        retries: 0,
                        bytes,
                    },
                );
            }
            _ => self.done = true,
        }
    }
}

/// One recorded admission decision (see
/// [`SimConfig::record_decisions`]): what the enforcement core decided for
/// a single arrival event, retries included.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalDecision {
    /// Simulation time the decision was made: the arrival time plus one
    /// network hop for originals, the re-presentation time for retries.
    pub time: f64,
    /// Redirector that decided.
    pub redirector: usize,
    /// The request's principal.
    pub principal: PrincipalId,
    /// The request's cost in average-request units.
    pub cost: f64,
    /// The decision.
    pub outcome: ArrivalOutcome,
}

/// Aggregated results of one run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-principal completed-request rates (the paper's plotted series).
    pub rates: RateSeries,
    /// Per-principal response-time statistics.
    pub response: Vec<ResponseStats>,
    /// Requests offered per principal (original arrivals, not retries).
    pub offered: Vec<u64>,
    /// Requests forwarded to servers, per principal.
    pub admitted: Vec<u64>,
    /// Self-redirect deferrals issued, per principal.
    pub deferred: Vec<u64>,
    /// Requests dropped at server backlogs.
    pub dropped_server: u64,
    /// Deferred requests abandoned after exhausting retries.
    pub abandoned: u64,
    /// Scheduled sends skipped because a closed-loop client was at its
    /// outstanding limit.
    pub skipped_closed_loop: u64,
    /// Per-server utilization over the run.
    pub server_utilization: Vec<f64>,
    /// Total coordination messages exchanged over the combining tree.
    pub tree_messages: u64,
    /// Coordination messages a pairwise scheme would have needed.
    pub pairwise_messages_equivalent: u64,
    /// Plan-cache hits summed over all redirectors (windows that replayed
    /// the previous solve instead of running the LP).
    pub plan_cache_hits: u64,
    /// Plan-cache misses summed over all redirectors (windows that ran the
    /// LP).
    pub plan_cache_misses: u64,
    /// Plan-cache entries pushed out by the LRU cap, summed over all
    /// redirectors.
    pub plan_cache_evictions: u64,
    /// Simplex solves summed over all redirectors (warm revised plus dense
    /// tableau).
    pub lp_solves: u64,
    /// Simplex pivots summed over all redirectors.
    pub lp_pivots: u64,
    /// Windows solved by reusing the previous window's optimal basis,
    /// summed over all redirectors.
    pub lp_warm_hits: u64,
    /// Windows the warm solver restarted cold or handed to the dense
    /// tableau, summed over all redirectors.
    pub lp_cold_fallbacks: u64,
    /// Per-link reply transfer-time statistics (seconds a reply spent
    /// crossing its redirector's link). Empty without a network model.
    pub transfer: Vec<ResponseStats>,
    /// Total reply bytes each link carried. Empty without a network model.
    pub link_bytes: Vec<f64>,
    /// Peak concurrent transfers per link. Empty without a network model.
    pub link_active_peak: Vec<usize>,
    /// Discrete events the engine processed (arrivals, ticks, completions,
    /// retries) — identical for both execution paths.
    pub events_processed: u64,
    /// High-water mark of the pending-event queue: O(clients + in-flight)
    /// for the streaming engine, O(total requests) for the reference path.
    pub peak_event_queue: usize,
    /// Wall-clock seconds the run took (machine-dependent; excluded from
    /// [`SimReport::outcome_eq`]).
    pub wall_secs: f64,
    /// Per-arrival decision trace; empty unless
    /// [`SimConfig::record_decisions`] is set.
    pub decisions: Vec<ArrivalDecision>,
}

impl SimReport {
    /// Total completed requests for principal `i`.
    pub fn completed(&self, i: usize) -> u64 {
        self.response[i].count
    }

    /// Engine throughput: events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events_processed as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// True when two reports describe the same simulated behavior: every
    /// observable is compared except the performance profile
    /// (`peak_event_queue`, `wall_secs`, and the solver-internal
    /// `plan_cache_evictions`/`lp_*` counters), which legitimately differs
    /// between the streaming and reference paths.
    pub fn outcome_eq(&self, other: &SimReport) -> bool {
        self.rates == other.rates
            && self.response == other.response
            && self.offered == other.offered
            && self.admitted == other.admitted
            && self.deferred == other.deferred
            && self.dropped_server == other.dropped_server
            && self.abandoned == other.abandoned
            && self.skipped_closed_loop == other.skipped_closed_loop
            && self.server_utilization == other.server_utilization
            && self.tree_messages == other.tree_messages
            && self.pairwise_messages_equivalent == other.pairwise_messages_equivalent
            && self.plan_cache_hits == other.plan_cache_hits
            && self.plan_cache_misses == other.plan_cache_misses
            && self.transfer == other.transfer
            && self.link_bytes == other.link_bytes
            && self.link_active_peak == other.link_active_peak
            && self.events_processed == other.events_processed
            && self.decisions == other.decisions
    }
}

/// A configured simulation, ready to run.
pub struct Simulation {
    cfg: SimConfig,
}

/// Shared per-run state that is identical between the two execution paths.
struct RunState {
    redirectors: Vec<SimRedirector>,
    servers: Vec<Server>,
    /// Capacity changes sorted by time; consumed via `change_cursor`.
    changes: Vec<crate::config::CapacityChange>,
    change_cursor: usize,
    /// Redirector restarts sorted by time; consumed via `restart_cursor`.
    restarts: Vec<(f64, usize)>,
    restart_cursor: usize,
    /// Agreement renegotiations sorted by time; consumed via `agmt_cursor`.
    agmt_changes: Vec<crate::config::AgreementChange>,
    agmt_cursor: usize,
    /// Reply-path links, one per redirector; empty without a net model.
    links: Vec<Link>,
    /// Bytes one cost unit puts on a link when the request carries no
    /// sampled size.
    unit_bytes: f64,
    /// Per-link transfer-time stats.
    transfer: Vec<ResponseStats>,
    /// Reused fair-share delivery buffer.
    wake_buf: Vec<(Request, f64)>,
    live_graph: covenant_agreements::AgreementGraph,
    rates: RateSeries,
    response: Vec<ResponseStats>,
    offered: Vec<u64>,
    admitted: Vec<u64>,
    deferred: Vec<u64>,
    dropped_server: u64,
    abandoned: u64,
    skipped: u64,
    tree_messages: u64,
    outstanding: Vec<usize>,
    client_limit: Vec<Option<usize>>,
    retry_delay: f64,
    hop: f64,
    /// `Some` when the config asked for a per-arrival decision trace.
    decisions: Option<Vec<ArrivalDecision>>,
}

impl Simulation {
    /// Wraps a configuration.
    pub fn new(cfg: SimConfig) -> Self {
        Simulation { cfg }
    }

    fn sched_cfg_for(cfg: &SimConfig, id: usize) -> SchedulerConfig {
        // Per-redirector scheduler configuration: the policy is shared,
        // but locality caps (forwarding-cost limits) are per node.
        let mut policy = cfg.policy.clone();
        if let (covenant_sched::Policy::Community { locality }, Some(table)) =
            (&mut policy, &cfg.redirector_locality)
        {
            if let Some(caps) = table.get(id).and_then(|c| c.clone()) {
                *locality = Some(caps);
            }
        }
        SchedulerConfig {
            window_secs: cfg.window_secs,
            policy,
            conservative_fraction: cfg.conservative_fraction,
            plan_cache: cfg.plan_cache,
        }
    }

    fn init_state(cfg: &SimConfig) -> RunState {
        let n = cfg.graph.len();
        let n_redirectors = cfg.n_redirectors();
        let levels = cfg.graph.access_levels();
        let redirectors: Vec<SimRedirector> = (0..n_redirectors)
            .map(|id| {
                let lag = cfg.tree.information_lag(id) + cfg.extra_tree_lag;
                SimRedirector::new(id, &levels, Self::sched_cfg_for(cfg, id), cfg.mode.clone(), lag)
            })
            .collect();
        let servers: Vec<Server> = cfg
            .graph
            .capacities()
            .iter()
            .map(|&c| Server::new(c, cfg.server_backlog))
            .collect();

        // Capacity-change / restart schedules, applied at window boundaries
        // by advancing a cursor over the pre-sorted lists.
        let mut changes = cfg.capacity_changes.clone();
        changes.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite times"));
        let mut restarts = cfg.redirector_restarts.clone();
        restarts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        let mut agmt_changes = cfg.agreement_changes.clone();
        agmt_changes.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite times"));

        let (links, unit_bytes) = match &cfg.net {
            Some(net) => {
                assert_eq!(net.links.len(), n_redirectors, "one link per redirector");
                assert!(net.unit_bytes.is_finite() && net.unit_bytes > 0.0);
                (net.links.iter().map(Link::new).collect(), net.unit_bytes)
            }
            None => (Vec::new(), 0.0),
        };
        let n_links = links.len();

        // A self-redirect costs the client one full round trip on top of
        // its think/retry delay.
        let retry_delay = match cfg.mode {
            QueueMode::CreditRetry { retry_delay } => retry_delay + 2.0 * cfg.network_latency,
            _ => 0.0,
        };

        RunState {
            redirectors,
            servers,
            changes,
            change_cursor: 0,
            restarts,
            restart_cursor: 0,
            agmt_changes,
            agmt_cursor: 0,
            links,
            unit_bytes,
            transfer: vec![ResponseStats::default(); n_links],
            wake_buf: Vec::new(),
            live_graph: cfg.graph.clone(),
            rates: RateSeries::new(n, cfg.bucket_secs),
            response: vec![ResponseStats::default(); n],
            offered: vec![0u64; n],
            admitted: vec![0u64; n],
            deferred: vec![0u64; n],
            dropped_server: 0,
            abandoned: 0,
            skipped: 0,
            tree_messages: 0,
            outstanding: vec![0; cfg.clients.len()],
            client_limit: cfg.clients.iter().map(|c| c.max_outstanding).collect(),
            retry_delay,
            hop: cfg.network_latency,
            decisions: cfg.record_decisions.then(Vec::new),
        }
    }

    /// Applies any due capacity changes and redirector restarts at a window
    /// boundary (cursor walk over the pre-sorted schedules).
    fn apply_boundary_schedules(cfg: &SimConfig, st: &mut RunState, now: f64) {
        // Apply any due capacity changes: re-flow the agreement graph and
        // install fresh levels everywhere.
        let mut changed = false;
        while st.change_cursor < st.changes.len() && st.changes[st.change_cursor].at <= now {
            let c = &st.changes[st.change_cursor];
            st.change_cursor += 1;
            st.live_graph
                .set_capacity(c.principal, c.capacity)
                .expect("valid capacity change");
            st.servers[c.principal.0].set_capacity(c.capacity);
            changed = true;
        }
        // Agreement renegotiations ride the same dynamic-reinterpretation
        // hook: rewrite the live graph's bounds, then re-flow once below.
        while st.agmt_cursor < st.agmt_changes.len() && st.agmt_changes[st.agmt_cursor].at <= now {
            let c = &st.agmt_changes[st.agmt_cursor];
            st.agmt_cursor += 1;
            st.live_graph
                .set_agreement(c.issuer, c.holder, c.lb, c.ub)
                .expect("valid agreement renegotiation");
            changed = true;
        }
        if changed {
            let fresh = st.live_graph.access_levels();
            for r in st.redirectors.iter_mut() {
                r.update_levels(&fresh);
            }
        }
        // Crash-and-restart injection: replace the redirector with a fresh
        // instance; queued/parked requests and all learned state are lost,
        // exactly like a process crash.
        while st.restart_cursor < st.restarts.len() && st.restarts[st.restart_cursor].0 <= now {
            let (_, id) = st.restarts[st.restart_cursor];
            st.restart_cursor += 1;
            let lag = cfg.tree.information_lag(id) + cfg.extra_tree_lag;
            st.redirectors[id] = SimRedirector::new(
                id,
                &st.live_graph.access_levels(),
                Self::sched_cfg_for(cfg, id),
                cfg.mode.clone(),
                lag,
            );
        }
    }

    fn finish(
        cfg: &SimConfig,
        st: RunState,
        events_processed: u64,
        peak_event_queue: usize,
        wall_secs: f64,
    ) -> SimReport {
        let windows = (cfg.duration / cfg.window_secs).ceil() as u64 + 1;
        SimReport {
            rates: st.rates,
            response: st.response,
            offered: st.offered,
            admitted: st.admitted,
            deferred: st.deferred,
            dropped_server: st.dropped_server,
            abandoned: st.abandoned,
            skipped_closed_loop: st.skipped,
            server_utilization: st
                .servers
                .iter()
                .map(|s| s.utilization(cfg.duration))
                .collect(),
            tree_messages: st.tree_messages,
            pairwise_messages_equivalent: windows * cfg.tree.pairwise_messages() as u64,
            plan_cache_hits: st.redirectors.iter().map(|r| r.cache_stats().0).sum(),
            plan_cache_misses: st.redirectors.iter().map(|r| r.cache_stats().1).sum(),
            plan_cache_evictions: st.redirectors.iter().map(|r| r.cache_evictions()).sum(),
            lp_solves: st.redirectors.iter().map(|r| r.lp_stats().0).sum(),
            lp_pivots: st.redirectors.iter().map(|r| r.lp_stats().1).sum(),
            lp_warm_hits: st.redirectors.iter().map(|r| r.warm_stats().0).sum(),
            lp_cold_fallbacks: st.redirectors.iter().map(|r| r.warm_stats().1).sum(),
            transfer: st.transfer,
            link_bytes: st.links.iter().map(|l| l.bytes).collect(),
            link_active_peak: st.links.iter().map(|l| l.active_peak).collect(),
            events_processed,
            peak_event_queue,
            wall_secs,
            decisions: st.decisions.unwrap_or_default(),
        }
    }

    /// Runs to completion and reports (streaming engine).
    pub fn run(self) -> SimReport {
        let start = Instant::now();
        let cfg = self.cfg;
        let n_redirectors = cfg.n_redirectors();
        let n = cfg.graph.len();
        let mut st = Self::init_state(&cfg);

        let mut events = EventQueue::new();
        // Window ticks stream one at a time: tick `i` lands exactly at
        // `i * window_secs` (integer-index multiplication — no float-drift
        // accumulation), and pushing tick `i+1` is part of handling tick
        // `i`. One event per boundary drives every redirector in lock-step
        // (the paper's redirectors share the 100 ms cadence).
        let mut tick_index: u64 = 0;
        events.push_tick(0.0, 0, Event::WindowTick { redirector: 0 });

        // One lazy arrival source per client; the heap holds at most one
        // pending original arrival per client at any time.
        let mut clients: Vec<ClientGen> = cfg
            .clients
            .iter()
            .enumerate()
            .map(|(ci, c)| ClientGen::new(ci, c))
            .collect();
        for (ci, c) in clients.iter_mut().enumerate() {
            c.refill(ci, cfg.duration, cfg.network_latency, &mut events);
        }

        let mut meta = MetaSlab::default();
        // Reused per-tick buffers: one demand vector per redirector (also
        // the combining tree's input layout) and one release list.
        let mut demand_bufs: Vec<Vec<f64>> = vec![vec![0.0; n]; n_redirectors];
        let mut released: Vec<(Request, usize)> = Vec::new();
        let mut events_processed: u64 = 0;

        while let Some((now, event)) = events.pop() {
            if now > cfg.duration + 1e-9 {
                break;
            }
            events_processed += 1;
            match event {
                Event::Arrival { mut request, redirector, client, retries, bytes } => {
                    if retries == 0 {
                        // This client's next arrival takes the vacated
                        // pending slot (before any early-out below).
                        clients[client].refill(
                            client,
                            cfg.duration,
                            cfg.network_latency,
                            &mut events,
                        );
                        // Closed-loop gate on original sends only.
                        if let Some(limit) = st.client_limit[client] {
                            if st.outstanding[client] >= limit {
                                st.skipped += 1;
                                continue;
                            }
                        }
                        st.offered[request.principal.0] += 1;
                        st.outstanding[client] += 1;
                        let bytes =
                            if bytes > 0.0 { bytes } else { request.cost * st.unit_bytes };
                        request.id = RequestId(meta.insert(RequestMeta {
                            client,
                            first_arrival: request.arrival,
                            bytes,
                        }));
                    }
                    let outcome = st.redirectors[redirector].on_arrival(request);
                    if let Some(trace) = st.decisions.as_mut() {
                        trace.push(ArrivalDecision {
                            time: now,
                            redirector,
                            principal: request.principal,
                            cost: request.cost,
                            outcome,
                        });
                    }
                    match outcome {
                        ArrivalOutcome::Forward { server } => {
                            st.admitted[request.principal.0] += 1;
                            match st.servers[server].offer(now + st.hop, request) {
                                Accept::CompletesAt(done) => {
                                    events.push(done, Event::Completion { server });
                                }
                                Accept::Dropped => {
                                    st.dropped_server += 1;
                                    if let Some(m) = meta.remove(request.id.0) {
                                        st.outstanding[m.client] =
                                            st.outstanding[m.client].saturating_sub(1);
                                    }
                                }
                            }
                        }
                        ArrivalOutcome::Defer => {
                            st.deferred[request.principal.0] += 1;
                            if retries < cfg.max_retries {
                                events.push(
                                    now + st.retry_delay,
                                    Event::Arrival {
                                        request,
                                        redirector,
                                        client,
                                        retries: retries + 1,
                                        bytes,
                                    },
                                );
                            } else {
                                st.abandoned += 1;
                                if let Some(m) = meta.remove(request.id.0) {
                                    st.outstanding[m.client] =
                                        st.outstanding[m.client].saturating_sub(1);
                                }
                            }
                        }
                        ArrivalOutcome::Queued => {}
                    }
                }
                Event::WindowTick { .. } => {
                    tick_index += 1;
                    let next_t = tick_index as f64 * cfg.window_secs;
                    if next_t <= cfg.duration {
                        events.push_tick(next_t, tick_index, Event::WindowTick { redirector: 0 });
                    }
                    Self::apply_boundary_schedules(&cfg, &mut st, now);
                    // Every redirector rolls its window; collect published
                    // demand vectors, aggregate over the tree, and deliver
                    // (with per-node lag) via each node's DelayedView.
                    for (ri, demand) in demand_bufs.iter_mut().enumerate() {
                        st.redirectors[ri].on_window_tick(now, &mut released, demand);
                        for (req, server) in released.drain(..) {
                            st.admitted[req.principal.0] += 1;
                            match st.servers[server].offer(now + st.hop, req) {
                                Accept::CompletesAt(done) => {
                                    events.push(done, Event::Completion { server });
                                }
                                Accept::Dropped => {
                                    st.dropped_server += 1;
                                    if let Some(m) = meta.remove(req.id.0) {
                                        st.outstanding[m.client] =
                                            st.outstanding[m.client].saturating_sub(1);
                                    }
                                }
                            }
                        }
                    }
                    let round = cfg.tree.aggregate(&demand_bufs);
                    st.tree_messages += round.messages() as u64;
                    // One shared aggregate; each node's DelayedView holds a
                    // cheap reference instead of its own copy.
                    let total = Rc::new(round.total);
                    for r in st.redirectors.iter_mut() {
                        r.deliver_aggregate(now, Rc::clone(&total));
                    }
                }
                Event::Completion { server } => {
                    let req = st.servers[server].complete();
                    st.rates.record(req.principal, now, req.cost);
                    if st.links.is_empty() {
                        if let Some(m) = meta.remove(req.id.0) {
                            // The response crosses two hops back to the client.
                            st.response[req.principal.0]
                                .record(now + 2.0 * st.hop - m.first_arrival);
                            st.outstanding[m.client] = st.outstanding[m.client].saturating_sub(1);
                        }
                    } else if let Some(m) = meta.get(req.id.0) {
                        // The reply now contends for the client's
                        // redirector link; metadata is retained until the
                        // transfer delivers.
                        let link = cfg.clients[m.client].redirector;
                        match st.links[link].start(now, m.bytes, req) {
                            LinkStart::Deliver(at) => events
                                .push(at, Event::ReplyDelivered { request: req, link, entered: now }),
                            LinkStart::Wake(at, version) => {
                                events.push(at, Event::LinkWake { link, version });
                            }
                        }
                    }
                }
                Event::ReplyDelivered { request, link, entered } => {
                    st.transfer[link].record(now - entered);
                    st.links[link].note_delivered();
                    if let Some(m) = meta.remove(request.id.0) {
                        st.response[request.principal.0]
                            .record(now + 2.0 * st.hop - m.first_arrival);
                        st.outstanding[m.client] = st.outstanding[m.client].saturating_sub(1);
                    }
                }
                Event::LinkWake { link, version } => {
                    let mut buf = std::mem::take(&mut st.wake_buf);
                    if let Some((at, v)) = st.links[link].on_wake(now, version, &mut buf) {
                        events.push(at, Event::LinkWake { link, version: v });
                    }
                    for (req, entered) in buf.drain(..) {
                        st.transfer[link].record(now - entered);
                        if let Some(m) = meta.remove(req.id.0) {
                            st.response[req.principal.0]
                                .record(now + 2.0 * st.hop - m.first_arrival);
                            st.outstanding[m.client] = st.outstanding[m.client].saturating_sub(1);
                        }
                    }
                    st.wake_buf = buf;
                }
            }
        }

        let peak = events.peak_len();
        let wall = start.elapsed().as_secs_f64();
        Self::finish(&cfg, st, events_processed, peak, wall)
    }

    /// Runs to completion on the pre-optimization path: every arrival is
    /// materialized and heap-scheduled up front and request metadata lives
    /// in a `HashMap` — the seed engine's O(total requests) memory and
    /// cost profile.
    ///
    /// Retained as (a) the oracle the determinism tests compare
    /// [`Simulation::run`] against, and (b) the baseline `benches/sim.rs`
    /// measures speedups over. Not for production use.
    #[doc(hidden)]
    pub fn run_reference(self) -> SimReport {
        let start = Instant::now();
        let cfg = self.cfg;
        let n = cfg.graph.len();
        let n_redirectors = cfg.n_redirectors();
        let mut st = Self::init_state(&cfg);

        let mut events = EventQueue::new();
        // All window ticks up front (same drift-free boundary times as the
        // streaming path: tick i at exactly i * window_secs).
        let mut i: u64 = 0;
        loop {
            let t = i as f64 * cfg.window_secs;
            if t > cfg.duration {
                break;
            }
            events.push(t, Event::WindowTick { redirector: 0 });
            i += 1;
        }

        // Client arrivals, fully materialized with per-client cost models.
        let mut next_id: u64 = 0;
        for (ci, c) in cfg.clients.iter().enumerate() {
            let mut size_rng = match &c.cost {
                RequestCost::SizeDistributed { seed, .. } => {
                    Some(StdRng::seed_from_u64(*seed ^ ci as u64))
                }
                _ => None,
            };
            for a in c.machine.arrivals() {
                if a.time > cfg.duration {
                    continue;
                }
                let (cost, bytes) = match &c.cost {
                    RequestCost::Unit => (1.0, 0.0),
                    RequestCost::Fixed(x) => (*x, 0.0),
                    RequestCost::SizeDistributed { sizes, mean_bytes, .. } => {
                        let rng = size_rng.as_mut().expect("rng for sized client");
                        let bytes = sizes.sample(rng);
                        (sizes.cost_units(bytes, *mean_bytes), bytes as f64)
                    }
                };
                let req =
                    Request { id: RequestId(next_id), principal: a.principal, arrival: a.time, cost };
                next_id += 1;
                events.push(
                    a.time + cfg.network_latency,
                    Event::Arrival {
                        request: req,
                        redirector: c.redirector,
                        client: ci,
                        retries: 0,
                        bytes,
                    },
                );
            }
        }

        let mut meta: HashMap<u64, RequestMeta> = HashMap::new();
        let mut events_processed: u64 = 0;

        while let Some((now, event)) = events.pop() {
            if now > cfg.duration + 1e-9 {
                break;
            }
            events_processed += 1;
            match event {
                Event::Arrival { request, redirector, client, retries, bytes } => {
                    if retries == 0 {
                        if let Some(limit) = st.client_limit[client] {
                            if st.outstanding[client] >= limit {
                                st.skipped += 1;
                                continue;
                            }
                        }
                        st.offered[request.principal.0] += 1;
                        st.outstanding[client] += 1;
                        let bytes =
                            if bytes > 0.0 { bytes } else { request.cost * st.unit_bytes };
                        meta.insert(
                            request.id.0,
                            RequestMeta { client, first_arrival: request.arrival, bytes },
                        );
                    }
                    let outcome = st.redirectors[redirector].on_arrival(request);
                    if let Some(trace) = st.decisions.as_mut() {
                        trace.push(ArrivalDecision {
                            time: now,
                            redirector,
                            principal: request.principal,
                            cost: request.cost,
                            outcome,
                        });
                    }
                    match outcome {
                        ArrivalOutcome::Forward { server } => {
                            st.admitted[request.principal.0] += 1;
                            match st.servers[server].offer(now + st.hop, request) {
                                Accept::CompletesAt(done) => {
                                    events.push(done, Event::Completion { server });
                                }
                                Accept::Dropped => {
                                    st.dropped_server += 1;
                                    if let Some(m) = meta.remove(&request.id.0) {
                                        st.outstanding[m.client] =
                                            st.outstanding[m.client].saturating_sub(1);
                                    }
                                }
                            }
                        }
                        ArrivalOutcome::Defer => {
                            st.deferred[request.principal.0] += 1;
                            if retries < cfg.max_retries {
                                events.push(
                                    now + st.retry_delay,
                                    Event::Arrival {
                                        request,
                                        redirector,
                                        client,
                                        retries: retries + 1,
                                        bytes,
                                    },
                                );
                            } else {
                                st.abandoned += 1;
                                if let Some(m) = meta.remove(&request.id.0) {
                                    st.outstanding[m.client] =
                                        st.outstanding[m.client].saturating_sub(1);
                                }
                            }
                        }
                        ArrivalOutcome::Queued => {}
                    }
                }
                Event::WindowTick { .. } => {
                    Self::apply_boundary_schedules(&cfg, &mut st, now);
                    // Fresh per-tick allocations, as the seed engine made.
                    let mut demands: Vec<Vec<f64>> = Vec::with_capacity(n_redirectors);
                    for ri in 0..n_redirectors {
                        let mut released = Vec::new();
                        let mut demand = vec![0.0; n];
                        st.redirectors[ri].on_window_tick(now, &mut released, &mut demand);
                        demands.push(demand);
                        for (req, server) in released {
                            st.admitted[req.principal.0] += 1;
                            match st.servers[server].offer(now + st.hop, req) {
                                Accept::CompletesAt(done) => {
                                    events.push(done, Event::Completion { server });
                                }
                                Accept::Dropped => {
                                    st.dropped_server += 1;
                                    if let Some(m) = meta.remove(&req.id.0) {
                                        st.outstanding[m.client] =
                                            st.outstanding[m.client].saturating_sub(1);
                                    }
                                }
                            }
                        }
                    }
                    let round = cfg.tree.aggregate(&demands);
                    st.tree_messages += round.messages() as u64;
                    for r in st.redirectors.iter_mut() {
                        r.deliver_aggregate(now, Rc::new(round.total.clone()));
                    }
                }
                Event::Completion { server } => {
                    let req = st.servers[server].complete();
                    st.rates.record(req.principal, now, req.cost);
                    if st.links.is_empty() {
                        if let Some(m) = meta.remove(&req.id.0) {
                            st.response[req.principal.0]
                                .record(now + 2.0 * st.hop - m.first_arrival);
                            st.outstanding[m.client] = st.outstanding[m.client].saturating_sub(1);
                        }
                    } else if let Some(m) = meta.get(&req.id.0).copied() {
                        let link = cfg.clients[m.client].redirector;
                        match st.links[link].start(now, m.bytes, req) {
                            LinkStart::Deliver(at) => events
                                .push(at, Event::ReplyDelivered { request: req, link, entered: now }),
                            LinkStart::Wake(at, version) => {
                                events.push(at, Event::LinkWake { link, version });
                            }
                        }
                    }
                }
                Event::ReplyDelivered { request, link, entered } => {
                    st.transfer[link].record(now - entered);
                    st.links[link].note_delivered();
                    if let Some(m) = meta.remove(&request.id.0) {
                        st.response[request.principal.0]
                            .record(now + 2.0 * st.hop - m.first_arrival);
                        st.outstanding[m.client] = st.outstanding[m.client].saturating_sub(1);
                    }
                }
                Event::LinkWake { link, version } => {
                    let mut buf = Vec::new();
                    if let Some((at, v)) = st.links[link].on_wake(now, version, &mut buf) {
                        events.push(at, Event::LinkWake { link, version: v });
                    }
                    for (req, entered) in buf {
                        st.transfer[link].record(now - entered);
                        if let Some(m) = meta.remove(&req.id.0) {
                            st.response[req.principal.0]
                                .record(now + 2.0 * st.hop - m.first_arrival);
                            st.outstanding[m.client] = st.outstanding[m.client].saturating_sub(1);
                        }
                    }
                }
            }
        }

        let peak = events.peak_len();
        let wall = start.elapsed().as_secs_f64();
        Self::finish(&cfg, st, events_processed, peak, wall)
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use covenant_agreements::{AgreementGraph, PrincipalId};
    use covenant_sched::Policy;
    use covenant_tree::Topology;
    use covenant_workload::{ClientMachine, PhasedLoad};

    /// Single server 100 req/s shared [0.2,1]/[0.8,1] between A and B.
    fn small_system() -> AgreementGraph {
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 100.0);
        let a = g.add_principal("A", 0.0);
        let b = g.add_principal("B", 0.0);
        g.add_agreement(s, a, 0.2, 1.0).unwrap();
        g.add_agreement(s, b, 0.8, 1.0).unwrap();
        g
    }

    #[test]
    fn underload_serves_everything() {
        let g = small_system();
        let a = PrincipalId(1);
        let cfg = SimConfig::new(g, 20.0).client(
            ClientMachine::uniform(0, a, PhasedLoad::constant(30.0, 20.0)),
            0,
        );
        let report = Simulation::new(cfg).run();
        // 30 req/s for 20 s = 600 offered; nearly all should complete
        // (minus the cold-start window and in-flight tail).
        assert_eq!(report.offered[1], 600);
        assert!(report.completed(1) > 550, "completed {}", report.completed(1));
        // Steady-state rate ≈ 30 req/s.
        let mid = report.rates.mean_rate_secs(a, 5.0, 18.0);
        assert!((mid - 30.0).abs() < 3.0, "rate {mid}");
    }

    #[test]
    fn overload_respects_mandatory_shares() {
        let g = small_system();
        let a = PrincipalId(1);
        let b = PrincipalId(2);
        let cfg = SimConfig::new(g, 30.0)
            .client(ClientMachine::uniform(0, a, PhasedLoad::constant(200.0, 30.0)), 0)
            .client(ClientMachine::uniform(1, b, PhasedLoad::constant(200.0, 30.0)), 0);
        let report = Simulation::new(cfg).run();
        let rate_a = report.rates.mean_rate_secs(a, 10.0, 28.0);
        let rate_b = report.rates.mean_rate_secs(b, 10.0, 28.0);
        // B guaranteed 80 req/s, A 20 req/s under overload.
        assert!((rate_b - 80.0).abs() < 8.0, "B rate {rate_b}");
        assert!((rate_a - 20.0).abs() < 8.0, "A rate {rate_a}");
    }

    #[test]
    fn idle_partner_capacity_flows_to_active() {
        let g = small_system();
        let a = PrincipalId(1);
        let cfg = SimConfig::new(g, 20.0).client(
            ClientMachine::uniform(0, a, PhasedLoad::constant(200.0, 20.0)),
            0,
        );
        let report = Simulation::new(cfg).run();
        // A alone can burst to the full 100 req/s.
        let rate_a = report.rates.mean_rate_secs(a, 5.0, 18.0);
        assert!((rate_a - 100.0).abs() < 10.0, "A rate {rate_a}");
    }

    #[test]
    fn explicit_mode_also_enforces() {
        let g = small_system();
        let a = PrincipalId(1);
        let b = PrincipalId(2);
        let cfg = SimConfig::new(g, 30.0)
            .with_mode(QueueMode::Explicit)
            .client(ClientMachine::uniform(0, a, PhasedLoad::constant(200.0, 30.0)), 0)
            .client(ClientMachine::uniform(1, b, PhasedLoad::constant(200.0, 30.0)), 0);
        let report = Simulation::new(cfg).run();
        let rate_b = report.rates.mean_rate_secs(b, 10.0, 28.0);
        assert!((rate_b - 80.0).abs() < 10.0, "B rate {rate_b}");
    }

    #[test]
    fn park_mode_also_enforces() {
        let g = small_system();
        let a = PrincipalId(1);
        let b = PrincipalId(2);
        let cfg = SimConfig::new(g, 30.0)
            .with_mode(QueueMode::CreditPark)
            .client(ClientMachine::uniform(0, a, PhasedLoad::constant(200.0, 30.0)), 0)
            .client(ClientMachine::uniform(1, b, PhasedLoad::constant(200.0, 30.0)), 0);
        let report = Simulation::new(cfg).run();
        let rate_b = report.rates.mean_rate_secs(b, 10.0, 28.0);
        assert!((rate_b - 80.0).abs() < 10.0, "B rate {rate_b}");
    }

    #[test]
    fn two_redirectors_coordinate() {
        let g = small_system();
        let a = PrincipalId(1);
        let b = PrincipalId(2);
        let cfg = SimConfig::new(g, 30.0)
            .with_tree(Topology::star(2, 0.0), 0.0)
            .client(ClientMachine::uniform(0, a, PhasedLoad::constant(200.0, 30.0)), 0)
            .client(ClientMachine::uniform(1, b, PhasedLoad::constant(200.0, 30.0)), 1);
        let report = Simulation::new(cfg).run();
        let rate_a = report.rates.mean_rate_secs(a, 10.0, 28.0);
        let rate_b = report.rates.mean_rate_secs(b, 10.0, 28.0);
        assert!((rate_b - 80.0).abs() < 10.0, "B rate {rate_b}");
        assert!((rate_a - 20.0).abs() < 10.0, "A rate {rate_a}");
        assert!(report.tree_messages > 0);
        // With n = 2, per-round tree messages 2(n−1) equal pairwise n(n−1);
        // the tree's saving only appears for n > 2 (next assertion block).
        assert!(report.pairwise_messages_equivalent >= report.tree_messages);
        let cfg3 = SimConfig::new(small_system(), 10.0)
            .with_tree(Topology::star(3, 0.0), 0.0)
            .client(ClientMachine::uniform(0, a, PhasedLoad::constant(100.0, 10.0)), 0);
        let report3 = Simulation::new(cfg3).run();
        assert!(report3.pairwise_messages_equivalent > report3.tree_messages);
    }

    #[test]
    fn deterministic_runs() {
        let g = small_system();
        let a = PrincipalId(1);
        let mk = || {
            let cfg = SimConfig::new(small_system(), 10.0).client(
                ClientMachine::uniform(0, a, PhasedLoad::constant(50.0, 10.0)),
                0,
            );
            let r = Simulation::new(cfg).run();
            (r.offered.clone(), r.admitted.clone(), r.completed(1))
        };
        assert_eq!(mk(), mk());
        drop(g);
    }

    #[test]
    fn closed_loop_limits_outstanding() {
        let g = small_system();
        let a = PrincipalId(1);
        // Offered 1000 req/s into a 100 req/s system with only 2 slots:
        // most scheduled sends are skipped.
        let cfg = SimConfig::new(g, 10.0).closed_loop_client(
            ClientMachine::uniform(0, a, PhasedLoad::constant(1000.0, 10.0)),
            0,
            2,
        );
        let report = Simulation::new(cfg).run();
        assert!(report.skipped_closed_loop > 5000, "skipped {}", report.skipped_closed_loop);
        assert!(report.completed(1) < 1100);
    }

    #[test]
    fn network_latency_raises_response_time_not_rates() {
        let run = |lat: f64| {
            let g = small_system();
            let a = PrincipalId(1);
            let cfg = SimConfig::new(g, 20.0)
                .with_network_latency(lat)
                .client(ClientMachine::uniform(0, a, PhasedLoad::constant(50.0, 20.0)), 0);
            let r = Simulation::new(cfg).run();
            (
                r.rates.mean_rate_secs(a, 5.0, 18.0),
                r.response[1].mean().unwrap_or(0.0),
            )
        };
        let (rate0, resp0) = run(0.0);
        let (rate1, resp1) = run(0.04);
        // Throughput unaffected by latency (open loop, within quota).
        assert!((rate0 - rate1).abs() < 3.0, "{rate0} vs {rate1}");
        // Response time grows by at least the 3 extra hops (120 ms).
        assert!(
            resp1 - resp0 > 0.10,
            "latency not reflected: {resp0:.3} -> {resp1:.3}"
        );
    }

    #[test]
    fn per_redirector_locality_caps_bind() {
        // Two redirectors front a 100 req/s server; R1's locality cap
        // limits it to 3 requests/window (30 req/s) toward the server,
        // while R0 is uncapped. A's clients on R1 are throttled by
        // locality; B's on R0 are not.
        use covenant_sched::LocalityCaps;
        let g = small_system();
        let a = PrincipalId(1);
        let b = PrincipalId(2);
        let cfg = SimConfig::new(g, 30.0)
            .with_tree(Topology::star(2, 0.0), 0.0)
            .client(ClientMachine::uniform(0, a, PhasedLoad::constant(100.0, 30.0)), 1)
            .client(ClientMachine::uniform(1, b, PhasedLoad::constant(40.0, 30.0)), 0)
            .with_redirector_locality(1, LocalityCaps(vec![3.0, 0.0, 0.0]));
        let report = Simulation::new(cfg).run();
        let rate_a = report.rates.mean_rate_secs(a, 10.0, 28.0);
        let rate_b = report.rates.mean_rate_secs(b, 10.0, 28.0);
        assert!(rate_a <= 33.0, "A exceeded its redirector's locality cap: {rate_a}");
        assert!((rate_b - 40.0).abs() < 5.0, "B throttled unexpectedly: {rate_b}");
    }

    #[test]
    fn redirector_restart_recovers_enforcement() {
        let g = small_system();
        let a = PrincipalId(1);
        let b = PrincipalId(2);
        let cfg = SimConfig::new(g, 40.0)
            .client(ClientMachine::uniform(0, a, PhasedLoad::constant(200.0, 40.0)), 0)
            .client(ClientMachine::uniform(1, b, PhasedLoad::constant(200.0, 40.0)), 0)
            .with_redirector_restart(20.0, 0);
        let report = Simulation::new(cfg).run();
        // Steady enforcement before the crash and after recovery.
        let b_before = report.rates.mean_rate_secs(b, 10.0, 19.0);
        let b_after = report.rates.mean_rate_secs(b, 25.0, 39.0);
        assert!((b_before - 80.0).abs() < 8.0, "before {b_before}");
        assert!((b_after - 80.0).abs() < 8.0, "after {b_after}");
        // The restart causes at most a brief dip, never an over-admission:
        // B's rate in the crash window must not exceed its share by much.
        let crash_bucket = report.rates.mean_rate_secs(b, 20.0, 22.0);
        assert!(crash_bucket <= 100.0 + 1.0, "crash bucket {crash_bucket}");
    }

    #[test]
    fn provider_income_accounting() {
        // Provider 100 req/s; A [0.5,1] pays 2, B [0.1,1] pays 1. A idle,
        // B floods: B beyond mandatory earns income; when both flood, A is
        // preferred and neither goes far beyond mandatory+leftover.
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 100.0);
        let a = g.add_principal("A", 0.0);
        let b = g.add_principal("B", 0.0);
        g.add_agreement(s, a, 0.5, 1.0).unwrap();
        g.add_agreement(s, b, 0.1, 1.0).unwrap();
        let prices = [0.0, 2.0, 1.0];
        let mandatory = [0.0, 50.0, 10.0];
        let cfg = SimConfig::new(g, 30.0)
            .with_policy(Policy::Provider { prices: prices.to_vec() })
            .client(ClientMachine::uniform(0, PrincipalId(2), PhasedLoad::constant(200.0, 30.0)), 0);
        let report = Simulation::new(cfg).run();
        // B alone: served ~100, beyond mandatory 10 → ~90/s × price 1.
        let income = report.rates.provider_income(&prices, &mandatory);
        assert!(income > 80.0 * 25.0, "income {income}");
        assert!(income < 95.0 * 31.0, "income {income}");
    }

    #[test]
    fn capacity_change_reflows_agreements() {
        // Server 100 → 200 at t=15: B's [0.8,1] share doubles from 80 to
        // 160 req/s mid-run without reconfiguring the redirector.
        let g = small_system();
        let b = PrincipalId(2);
        let cfg = SimConfig::new(g, 30.0)
            .client(ClientMachine::uniform(0, b, PhasedLoad::constant(300.0, 30.0)), 0)
            .client(
                ClientMachine::uniform(1, PrincipalId(1), PhasedLoad::constant(300.0, 30.0)),
                0,
            )
            .with_capacity_change(15.0, PrincipalId(0), 200.0);
        let report = Simulation::new(cfg).run();
        let before = report.rates.mean_rate_secs(b, 5.0, 14.0);
        let after = report.rates.mean_rate_secs(b, 20.0, 29.0);
        assert!((before - 80.0).abs() < 8.0, "before {before}");
        assert!((after - 160.0).abs() < 12.0, "after {after}");
    }

    #[test]
    fn sized_requests_enforced_in_cost_units() {
        // A sends 5-unit requests, B unit requests; both hold [0.5, 0.5] of
        // a 100-unit/s server. Under overload each gets 50 *units*/s: A
        // completes ~10 requests/s (50 units), B ~50.
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 100.0);
        let a = g.add_principal("A", 0.0);
        let b = g.add_principal("B", 0.0);
        g.add_agreement(s, a, 0.5, 0.5).unwrap();
        g.add_agreement(s, b, 0.5, 0.5).unwrap();
        let mut cfg = SimConfig::new(g, 30.0)
            .client(ClientMachine::uniform(1, b, PhasedLoad::constant(100.0, 30.0)), 0);
        cfg.clients.push(crate::SimClient {
            machine: ClientMachine::uniform(0, a, PhasedLoad::constant(40.0, 30.0)),
            redirector: 0,
            max_outstanding: None,
            cost: crate::RequestCost::Fixed(5.0),
        });
        let report = Simulation::new(cfg).run();
        // Rates are recorded in cost units: both near 50 units/s.
        let units_a = report.rates.mean_rate_secs(a, 10.0, 28.0);
        let units_b = report.rates.mean_rate_secs(b, 10.0, 28.0);
        assert!((units_a - 50.0).abs() < 10.0, "A units {units_a}");
        assert!((units_b - 50.0).abs() < 10.0, "B units {units_b}");
        // Request counts differ 5:1.
        let req_a = report.completed(1) as f64 / 30.0;
        assert!((req_a - 10.0).abs() < 2.5, "A req/s {req_a}");
    }

    #[test]
    fn provider_policy_runs_in_sim() {
        let g = small_system();
        let a = PrincipalId(1);
        let b = PrincipalId(2);
        let cfg = SimConfig::new(g, 20.0)
            .with_policy(Policy::Provider { prices: vec![0.0, 1.0, 3.0] })
            .client(ClientMachine::uniform(0, a, PhasedLoad::constant(200.0, 20.0)), 0)
            .client(ClientMachine::uniform(1, b, PhasedLoad::constant(200.0, 20.0)), 0);
        let report = Simulation::new(cfg).run();
        // B pays more: under overload B gets its upper bound beyond A's
        // mandatory floor. A holds its mandatory 20; B gets 80.
        let rate_a = report.rates.mean_rate_secs(a, 8.0, 18.0);
        let rate_b = report.rates.mean_rate_secs(b, 8.0, 18.0);
        assert!((rate_a - 20.0).abs() < 8.0, "A rate {rate_a}");
        assert!((rate_b - 80.0).abs() < 8.0, "B rate {rate_b}");
    }

    /// The streaming engine and the pre-optimization reference path must
    /// agree on every behavioral observable for a Figure-6-style
    /// two-redirector contention run that exercises every event class:
    /// Poisson + uniform + size-distributed clients, phased loads, network
    /// latency, retries, a capacity change, and a redirector restart.
    #[test]
    fn streaming_matches_reference_two_redirectors() {
        let a = PrincipalId(1);
        let b = PrincipalId(2);
        let mk = || {
            SimConfig::new(small_system(), 30.0)
                .with_tree(Topology::star(2, 0.0), 0.0)
                .with_network_latency(0.005)
                .client(
                    ClientMachine::poisson(
                        0,
                        a,
                        PhasedLoad::new().then(10.0, 120.0).idle(5.0).then(15.0, 180.0),
                        7,
                    ),
                    0,
                )
                .client(ClientMachine::uniform(1, b, PhasedLoad::constant(150.0, 30.0)), 1)
                .sized_client(
                    ClientMachine::uniform(2, b, PhasedLoad::constant(20.0, 30.0)),
                    1,
                    covenant_workload::ReplySizes::default(),
                    6000.0,
                    9,
                )
                .with_capacity_change(15.0, PrincipalId(0), 150.0)
                .with_redirector_restart(20.0, 1)
        };
        let streamed = Simulation::new(mk()).run();
        let reference = Simulation::new(mk()).run_reference();
        assert!(
            streamed.outcome_eq(&reference),
            "streamed {streamed:?}\nreference {reference:?}"
        );
        assert!(streamed.events_processed > 5_000);
        // The reference heap holds the whole materialized trace; the
        // streaming heap never does.
        assert!(
            streamed.peak_event_queue < reference.peak_event_queue,
            "peak {} vs {}",
            streamed.peak_event_queue,
            reference.peak_event_queue
        );
    }

    /// Streaming/reference agreement holds in all three queuing modes.
    #[test]
    fn streaming_matches_reference_all_modes() {
        for mode in [
            QueueMode::Explicit,
            QueueMode::CreditRetry { retry_delay: 0.05 },
            QueueMode::CreditPark,
        ] {
            let mk = |mode: QueueMode| {
                SimConfig::new(small_system(), 15.0)
                    .with_mode(mode)
                    .client(
                        ClientMachine::uniform(0, PrincipalId(1), PhasedLoad::constant(150.0, 15.0)),
                        0,
                    )
                    .client(
                        ClientMachine::uniform(1, PrincipalId(2), PhasedLoad::constant(150.0, 15.0)),
                        0,
                    )
            };
            let s = Simulation::new(mk(mode.clone())).run();
            let r = Simulation::new(mk(mode.clone())).run_reference();
            assert!(s.outcome_eq(&r), "mode {mode:?}: {s:?}\nvs {r:?}");
        }
    }

    /// The streaming heap is bounded by concurrency (clients + in-flight +
    /// next tick), not run length: a 12k-request closed-loop run keeps a
    /// single-digit pending-event count.
    #[test]
    fn streaming_heap_bounded_by_concurrency() {
        let a = PrincipalId(1);
        let cfg = SimConfig::new(small_system(), 20.0).closed_loop_client(
            ClientMachine::uniform(0, a, PhasedLoad::constant(600.0, 20.0)),
            0,
            4,
        );
        let report = Simulation::new(cfg).run();
        assert!(report.events_processed > 12_000, "events {}", report.events_processed);
        assert!(
            report.peak_event_queue < 32,
            "peak queue {} not bounded by concurrency",
            report.peak_event_queue
        );
    }

    /// A congested FIFO bottleneck queues replies: transfer times blow up
    /// relative to an uncongested link carrying the same traffic.
    #[test]
    fn link_congestion_raises_transfer_times() {
        use crate::link::{LinkDiscipline, NetModelCfg};
        let run = |rate: f64| {
            let a = PrincipalId(1);
            let cfg = SimConfig::new(small_system(), 20.0)
                .client(ClientMachine::uniform(0, a, PhasedLoad::constant(50.0, 20.0)), 0)
                .with_net(NetModelCfg::uniform(1, rate, LinkDiscipline::Fifo));
            Simulation::new(cfg).run()
        };
        // 50 req/s × 6144 B = 307 KB/s of reply traffic.
        let fast = run(2.0e6); // 15% utilized: no queueing
        let slow = run(3.4e5); // 90% utilized: heavy queueing
        let fast_mean = fast.transfer[0].mean().expect("transfers recorded");
        let slow_mean = slow.transfer[0].mean().expect("transfers recorded");
        assert!(fast_mean < 0.01, "uncongested transfer {fast_mean}");
        assert!(
            slow_mean > 3.0 * fast_mean,
            "congestion not visible: {fast_mean} vs {slow_mean}"
        );
        // Throughput in requests is unaffected (the link delays replies,
        // it does not drop them).
        assert_eq!(fast.completed(1), slow.completed(1));
        assert!(slow.link_bytes[0] > 5.0e6, "bytes {}", slow.link_bytes[0]);
    }

    /// With rate → ∞ the link model degenerates to the fixed-delay path:
    /// same rates, (near-)same response times.
    #[test]
    fn infinite_rate_link_degenerates_to_fixed_delay() {
        use crate::link::{LinkDiscipline, NetModelCfg};
        let a = PrincipalId(1);
        let mk = || {
            SimConfig::new(small_system(), 20.0)
                .with_network_latency(0.01)
                .client(ClientMachine::uniform(0, a, PhasedLoad::constant(60.0, 20.0)), 0)
        };
        let fixed = Simulation::new(mk()).run();
        for disc in [LinkDiscipline::Fifo, LinkDiscipline::FairShare] {
            let netted =
                Simulation::new(mk().with_net(NetModelCfg::uniform(1, 1.0e12, disc))).run();
            assert_eq!(fixed.completed(1), netted.completed(1));
            let r0 = fixed.response[1].mean().unwrap();
            let r1 = netted.response[1].mean().unwrap();
            assert!((r0 - r1).abs() < 1e-4, "{disc:?}: {r0} vs {r1}");
        }
    }

    /// Under a shared fair-share bottleneck, small replies are not stuck
    /// behind queued elephants: their transfer times stay below FIFO's for
    /// the same heavy-tailed traffic.
    #[test]
    fn fair_share_shields_small_transfers() {
        use crate::link::{LinkDiscipline, NetModelCfg};
        let a = PrincipalId(1);
        let run = |disc: LinkDiscipline| {
            let cfg = SimConfig::new(small_system(), 30.0)
                .sized_client(
                    ClientMachine::uniform(0, a, PhasedLoad::constant(40.0, 30.0)),
                    0,
                    covenant_workload::ReplySizes::default(),
                    6144.0,
                    11,
                )
                .with_net(NetModelCfg::uniform(1, 3.5e5, disc));
            Simulation::new(cfg).run()
        };
        let fifo = run(LinkDiscipline::Fifo);
        let fair = run(LinkDiscipline::FairShare);
        // Same byte volume crossed the same-rate link either way (the
        // delivery count may differ by a few in-flight tails at cutoff).
        assert!((fifo.link_bytes[0] - fair.link_bytes[0]).abs() < 1.0);
        assert!(fifo.transfer[0].count.abs_diff(fair.transfer[0].count) < 10);
        // Heavy-tailed sizes punish FIFO (every reply waits behind queued
        // elephants, mean wait ∝ E[S²]); processor sharing is insensitive
        // to the size distribution, so its mean sojourn stays lower.
        let fifo_mean = fifo.transfer[0].mean().expect("transfers");
        let fair_mean = fair.transfer[0].mean().expect("transfers");
        assert!(
            fifo_mean > fair_mean,
            "PS should beat FIFO on heavy tails: {fifo_mean} vs {fair_mean}"
        );
        // The elephants themselves drain slower under PS than FIFO.
        assert!(fair.transfer[0].max >= fifo.transfer[0].max * 0.5);
    }

    /// A mid-run renegotiation re-flows the agreement graph: shrinking B's
    /// mandatory share hands the freed capacity to the optional pool.
    #[test]
    fn agreement_renegotiation_reflows_midrun() {
        let a = PrincipalId(1);
        let b = PrincipalId(2);
        let cfg = SimConfig::new(small_system(), 40.0)
            .client(ClientMachine::uniform(0, a, PhasedLoad::constant(200.0, 40.0)), 0)
            .client(ClientMachine::uniform(1, b, PhasedLoad::constant(200.0, 40.0)), 0)
            .with_agreement_change(20.0, PrincipalId(0), b, 0.2, 1.0);
        let report = Simulation::new(cfg).run();
        // Before: B's mandatory 80 dominates. After [0.8,1] → [0.2,1]:
        // mandatory floors are 20/20 and the 60-unit leftover splits
        // θ-fair, so both settle near 50.
        let b_before = report.rates.mean_rate_secs(b, 8.0, 19.0);
        let b_after = report.rates.mean_rate_secs(b, 25.0, 39.0);
        let a_after = report.rates.mean_rate_secs(a, 25.0, 39.0);
        assert!((b_before - 80.0).abs() < 8.0, "before {b_before}");
        assert!(b_after < 62.0, "B kept its old share: {b_after}");
        assert!(a_after > 38.0, "A never gained: {a_after}");
    }

    /// Streaming/reference agreement holds with the full network model in
    /// play: mixed disciplines, sized clients, a renegotiation, retries.
    #[test]
    fn streaming_matches_reference_with_net() {
        use crate::link::{LinkCfg, LinkDiscipline, NetModelCfg};
        let a = PrincipalId(1);
        let b = PrincipalId(2);
        let mk = || {
            SimConfig::new(small_system(), 25.0)
                .with_tree(Topology::star(2, 0.0), 0.0)
                .with_network_latency(0.005)
                .client(ClientMachine::uniform(0, a, PhasedLoad::constant(140.0, 25.0)), 0)
                .sized_client(
                    ClientMachine::uniform(1, b, PhasedLoad::constant(120.0, 25.0)),
                    1,
                    covenant_workload::ReplySizes::default(),
                    6144.0,
                    13,
                )
                .with_agreement_change(12.0, PrincipalId(0), b, 0.4, 1.0)
                .with_net(NetModelCfg {
                    links: vec![
                        LinkCfg { rate_bytes_per_sec: 4.0e5, discipline: LinkDiscipline::Fifo },
                        LinkCfg {
                            rate_bytes_per_sec: 4.0e5,
                            discipline: LinkDiscipline::FairShare,
                        },
                    ],
                    unit_bytes: 6144.0,
                })
        };
        let streamed = Simulation::new(mk()).run();
        let reference = Simulation::new(mk()).run_reference();
        assert!(
            streamed.outcome_eq(&reference),
            "streamed {streamed:?}\nreference {reference:?}"
        );
        assert!(streamed.transfer[0].count > 100, "fifo transfers");
        assert!(streamed.transfer[1].count > 100, "fair-share transfers");
    }

    /// The streaming heap stays bounded by concurrency under a congested
    /// fair-share bottleneck (wake events are version-guarded, not
    /// accumulated).
    #[test]
    fn bottleneck_keeps_event_queue_bounded() {
        use crate::link::{LinkDiscipline, NetModelCfg};
        let a = PrincipalId(1);
        let cfg = SimConfig::new(small_system(), 20.0)
            .closed_loop_client(
                ClientMachine::uniform(0, a, PhasedLoad::constant(400.0, 20.0)),
                0,
                8,
            )
            .with_net(NetModelCfg::uniform(1, 3.0e5, LinkDiscipline::FairShare));
        let report = Simulation::new(cfg).run();
        assert!(report.events_processed > 3_000, "events {}", report.events_processed);
        assert!(
            report.peak_event_queue < 64,
            "peak queue {} not bounded under the bottleneck",
            report.peak_event_queue
        );
    }

    /// `events_per_sec` is consistent with the recorded counters.
    #[test]
    fn report_throughput_counters() {
        let a = PrincipalId(1);
        let cfg = SimConfig::new(small_system(), 5.0)
            .client(ClientMachine::uniform(0, a, PhasedLoad::constant(50.0, 5.0)), 0);
        let report = Simulation::new(cfg).run();
        assert!(report.wall_secs > 0.0);
        assert!(report.events_processed > 250);
        let eps = report.events_per_sec();
        assert!((eps - report.events_processed as f64 / report.wall_secs).abs() < 1e-6);
    }
}
