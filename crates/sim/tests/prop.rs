//! Property tests for the event queue's deterministic ordering.

use covenant_sim::{Event, EventQueue};
use proptest::prelude::*;

/// One step of an interleaved push/pop schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Push a runtime event at `t0 + slot` (small integer times force many
    /// timestamp collisions).
    Push(u8),
    /// Pop the earliest event.
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // 0..4 → push at that time slot; 4..6 → pop (3:2 push/pop mix).
    (0u8..6).prop_map(|v| if v < 4 { Op::Push(v) } else { Op::Pop })
}

proptest! {
    /// Runtime events at equal timestamps pop in push order (FIFO), no
    /// matter how pushes and pops interleave. The model is a stable sort
    /// of the pushed (time, push-sequence) pairs.
    #[test]
    fn runtime_fifo_survives_interleaved_push_pop(ops in proptest::collection::vec(op_strategy(), 1..64)) {
        let mut q = EventQueue::new();
        // Model: pending (time, seq) pairs, popped by min time then seq.
        let mut pending: Vec<(u8, usize)> = Vec::new();
        let mut seq = 0usize;
        for op in ops {
            match op {
                Op::Push(slot) => {
                    // The server index carries the push sequence number so
                    // the popped order is observable.
                    q.push(slot as f64, Event::Completion { server: seq });
                    pending.push((slot, seq));
                    seq += 1;
                }
                Op::Pop => {
                    let got = q.pop();
                    if pending.is_empty() {
                        prop_assert!(got.is_none());
                    } else {
                        let best = pending
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, &(t, s))| (t, s))
                            .map(|(i, _)| i)
                            .unwrap();
                        let (t, s) = pending.remove(best);
                        let (time, event) = got.expect("queue should not be empty");
                        prop_assert_eq!(time, t as f64);
                        prop_assert_eq!(event, Event::Completion { server: s });
                    }
                }
            }
        }
        // Drain: the remainder also pops in (time, seq) order.
        pending.sort();
        for (t, s) in pending {
            let (time, event) = q.pop().expect("drain");
            prop_assert_eq!(time, t as f64);
            prop_assert_eq!(event, Event::Completion { server: s });
        }
        prop_assert!(q.pop().is_none());
    }

    /// The class ordering (ticks < original arrivals < runtime) holds at
    /// every shared timestamp under arbitrary interleavings, and within a
    /// class the index order is preserved.
    #[test]
    fn classes_keep_rank_under_interleaving(
        ticks in proptest::collection::vec(0u8..4, 0..8),
        arrivals in proptest::collection::vec((0u8..4, 0u8..3), 0..8),
        runtime in proptest::collection::vec(0u8..4, 0..8),
    ) {
        use covenant_agreements::PrincipalId;
        use covenant_sched::{Request, RequestId};
        let mut q = EventQueue::new();
        for (i, &t) in ticks.iter().enumerate() {
            q.push_tick(t as f64, i as u64, Event::WindowTick { redirector: 0 });
        }
        for (i, &(t, client)) in arrivals.iter().enumerate() {
            let req = Request {
                id: RequestId(i as u64),
                principal: PrincipalId(0),
                arrival: t as f64,
                cost: 1.0,
            };
            q.push_arrival(
                t as f64,
                client as usize,
                i as u64,
                Event::Arrival {
                    request: req,
                    redirector: 0,
                    client: client as usize,
                    retries: 0,
                    bytes: 0.0,
                },
            );
        }
        for &t in &runtime {
            q.push(t as f64, Event::Completion { server: 0 });
        }
        // Rank within the popped sequence: time first, then class.
        let mut popped = Vec::new();
        while let Some((time, e)) = q.pop() {
            let class = match e {
                Event::WindowTick { .. } => 0,
                Event::Arrival { .. } => 1,
                _ => 2,
            };
            popped.push((time, class));
        }
        prop_assert!(popped.windows(2).all(|w| w[0] <= w[1]), "order violated: {popped:?}");
        prop_assert_eq!(popped.len(), ticks.len() + arrivals.len() + runtime.len());
    }
}
