//! Request representation.

use covenant_agreements::PrincipalId;
use serde::{Deserialize, Serialize};

/// Globally unique (per run) request identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(pub u64);

/// A client request as seen by a redirector.
///
/// The architecture assumes short-lived requests whose resource consumption
/// is known a priori (by specification or profiling); `cost` expresses that
/// consumption in average-request units — the paper's "large requests are
/// treated as multiple small ones for the purpose of scheduling".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Identifier for tracing.
    pub id: RequestId,
    /// The principal whose agreement funds this request.
    pub principal: PrincipalId,
    /// Arrival time at the redirector, seconds since run start.
    pub arrival: f64,
    /// Resource cost in average-request units (1.0 for a typical request).
    pub cost: f64,
}

impl Request {
    /// A unit-cost request.
    pub fn unit(id: u64, principal: PrincipalId, arrival: f64) -> Self {
        Request { id: RequestId(id), principal, arrival, cost: 1.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_request_has_cost_one() {
        let r = Request::unit(7, PrincipalId(2), 1.5);
        assert_eq!(r.id, RequestId(7));
        assert_eq!(r.principal, PrincipalId(2));
        assert_eq!(r.cost, 1.0);
        assert_eq!(r.arrival, 1.5);
    }
}
