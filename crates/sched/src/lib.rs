//! Time-window queuing schedulers for agreement enforcement.
//!
//! Implements Section 3 of the paper: each redirector logically maintains a
//! queue per principal and, every time window (100 ms in the paper's
//! prototypes), decides what subset of queued requests to forward to which
//! servers. The decision must (a) respect the mandatory/optional access
//! levels implied by the agreement graph, and (b) optimize a global metric —
//! either the community's worst-case response time (via the max-min `θ` LP)
//! or the service provider's income (via the pricing LP).
//!
//! # Components
//!
//! * [`CommunityScheduler`] — the "Global Response Time" linear program:
//!   maximize `θ = min_i (Σ_k x_ik) / n_i` subject to server capacities,
//!   pairwise agreement bounds `MI_ki ≤ x_ik ≤ MI_ki + OI_ki`, and queue
//!   limits; optionally with per-server locality caps.
//! * [`ProviderScheduler`] — the "Total Income of Provider" linear program:
//!   maximize `Σ_i p_i (x_i − MC_i)` subject to aggregate capacity and
//!   `MC_i ≤ x_i ≤ MC_i + OC_i`.
//! * [`Plan`] — the solved per-window schedule, with
//!   [`Plan::scale_for_local_queue`] implementing the distributed rule
//!   `x_local_ij / n_local_i = x_ij / n_i` that lets every redirector apply
//!   the globally-optimal plan to its local queue fraction.
//! * [`WindowScheduler`] — policy dispatch plus the conservative fallback a
//!   redirector uses before global queue information has arrived (half its
//!   mandatory share when peers are unknown; see the paper's Figure 8
//!   discussion).
//!
//! The queuing structures that *apply* a [`Plan`] — the credit gate,
//! explicit queues, and EWMA rate estimator — live in the
//! `covenant-enforce` crate together with the transport-agnostic
//! enforcement state machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod community;
mod multi;
mod plan;
mod provider;
mod request;
mod vclock;
mod window;

pub use cache::{levels_fingerprint, PlanCache};
pub use community::{CommunityScheduler, LocalityCaps, PreparedCommunity};
pub use multi::{MultiCommunityScheduler, PreparedMulti};
pub use plan::Plan;
pub use provider::{PreparedProvider, ProviderScheduler};
pub use request::{Request, RequestId};
pub use vclock::VirtualClock;
pub use window::{GlobalView, Policy, SchedulerConfig, WindowScheduler};
