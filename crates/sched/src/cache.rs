//! Memoization of per-window plans.
//!
//! In steady state the EWMA demand estimator converges to a floating-point
//! fixpoint, so consecutive windows solve the LP on *identical* queue
//! vectors. [`PlanCache`] memoizes the last solved
//! `(access-levels fingerprint, quantized queue vector) → Plan` so those
//! windows skip the simplex entirely. Queue lengths are quantized at
//! [`PlanCache::QUANTUM`] (`1e-6` requests) before comparison: differences
//! below the quantum cannot move any plan by a meaningful amount, while the
//! key stays an exact integer comparison (no tolerance-chaining bugs).
//!
//! The cache holds a single entry — per-window demand walks, it does not
//! oscillate between a working set of vectors — and is invalidated
//! whenever the access levels change.

use crate::Plan;
use covenant_agreements::{AccessLevels, PrincipalId};

/// Incremental FNV-1a over the raw bits of an `f64` sequence.
fn fnv1a_f64(mut h: u64, values: impl IntoIterator<Item = f64>) -> u64 {
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// A stable fingerprint of everything the scheduling LPs read from the
/// access levels: principal count, pairwise mandatory/optional shares, and
/// capacities. Two level tables with equal fingerprints produce identical
/// constraint matrices.
pub fn levels_fingerprint(levels: &AccessLevels) -> u64 {
    let n = levels.len();
    let mut h = 0xcbf29ce484222325u64 ^ (n as u64).wrapping_mul(0x9e3779b97f4a7c15);
    for i in 0..n {
        let pi = PrincipalId(i);
        h = fnv1a_f64(
            h,
            (0..n).flat_map(|j| {
                let pj = PrincipalId(j);
                [levels.mand_share(pi, pj), levels.opt_share(pi, pj)]
            }),
        );
    }
    fnv1a_f64(h, levels.capacities().iter().copied())
}

/// Single-entry memo of the last solved window.
#[derive(Debug, Clone)]
pub struct PlanCache {
    fingerprint: u64,
    key: Vec<i64>,
    plan: Option<Plan>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// Queue-length quantization step for cache keys, in requests.
    pub const QUANTUM: f64 = 1e-6;

    /// An empty cache bound to the given levels fingerprint.
    pub fn new(fingerprint: u64) -> Self {
        PlanCache { fingerprint, key: Vec::new(), plan: None, hits: 0, misses: 0 }
    }

    /// Drops the stored plan and rebinds to a new levels fingerprint
    /// (call when capacities or agreements change).
    pub fn invalidate(&mut self, fingerprint: u64) {
        self.fingerprint = fingerprint;
        self.plan = None;
        self.key.clear();
    }

    fn quantized(q: f64) -> i64 {
        // Saturating cast: demands far beyond i64 range all collapse to the
        // same key, which only costs a cache miss, never a wrong plan.
        (q / Self::QUANTUM).round() as i64
    }

    /// Returns the memoized plan if `queues` quantizes to the stored key.
    /// Counts a hit or a miss either way.
    pub fn lookup(&mut self, queues: &[f64]) -> Option<Plan> {
        if let Some(plan) = &self.plan {
            if self.key.len() == queues.len()
                && queues.iter().zip(&self.key).all(|(&q, &k)| Self::quantized(q) == k)
            {
                self.hits += 1;
                return Some(plan.clone());
            }
        }
        self.misses += 1;
        None
    }

    /// Stores the freshly solved plan for `queues`.
    pub fn store(&mut self, queues: &[f64], plan: &Plan) {
        self.key.clear();
        self.key.extend(queues.iter().map(|&q| Self::quantized(q)));
        self.plan = Some(plan.clone());
    }

    /// The levels fingerprint this cache is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Lookups that returned the memoized plan.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through to the solver.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covenant_agreements::AgreementGraph;

    fn levels() -> AccessLevels {
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 100.0);
        let a = g.add_principal("A", 0.0);
        g.add_agreement(s, a, 0.5, 0.5).unwrap();
        g.access_levels()
    }

    #[test]
    fn identical_queues_hit() {
        let mut c = PlanCache::new(levels_fingerprint(&levels()));
        let plan = Plan::zero(2, 2);
        assert!(c.lookup(&[1.0, 2.0]).is_none());
        c.store(&[1.0, 2.0], &plan);
        assert_eq!(c.lookup(&[1.0, 2.0]), Some(plan));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn sub_quantum_differences_still_hit() {
        let mut c = PlanCache::new(0);
        c.store(&[10.0], &Plan::zero(1, 1));
        assert!(c.lookup(&[10.0 + 1e-9]).is_some());
        assert!(c.lookup(&[10.0 + 1e-5]).is_none());
    }

    #[test]
    fn invalidation_clears_the_entry() {
        let mut c = PlanCache::new(1);
        c.store(&[5.0], &Plan::zero(1, 1));
        c.invalidate(2);
        assert!(c.lookup(&[5.0]).is_none());
        assert_eq!(c.fingerprint(), 2);
    }

    #[test]
    fn fingerprint_tracks_level_changes() {
        let a = levels_fingerprint(&levels());
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 200.0);
        let x = g.add_principal("A", 0.0);
        g.add_agreement(s, x, 0.5, 0.5).unwrap();
        let b = levels_fingerprint(&g.access_levels());
        assert_ne!(a, b);
        assert_eq!(a, levels_fingerprint(&levels()));
    }
}
