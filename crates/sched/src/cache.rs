//! Memoization of per-window plans.
//!
//! In steady state the EWMA demand estimator converges to a floating-point
//! fixpoint, so consecutive windows solve the LP on *identical* queue
//! vectors. [`PlanCache`] memoizes recently solved
//! `(access-levels fingerprint, quantized queue vector) → Plan` entries so
//! those windows skip the simplex entirely. Queue lengths are quantized at
//! [`PlanCache::QUANTUM`] (`1e-6` requests) before comparison: differences
//! below the quantum cannot move any plan by a meaningful amount, while the
//! key stays an exact integer comparison (no tolerance-chaining bugs).
//!
//! The cache is bounded at [`PlanCache::DEFAULT_CAPACITY`] entries with
//! least-recently-used eviction — per-window demand fingerprints churn
//! continuously at large principal counts, and an unbounded map would grow
//! with every distinct quantized vector ever seen. Evictions are counted
//! ([`PlanCache::evictions`]) so deployments can see when the working set
//! outgrows the cache. The whole cache is invalidated whenever the access
//! levels change.
//!
//! Since the warm-started solver landed, the cache is a fast *pre-check* in
//! front of an already-cheap re-solve (a hit saves the dual-simplex repair
//! and the plan extraction), not the only thing standing between a window
//! and a full cold solve.

use crate::Plan;
use covenant_agreements::{AccessLevels, PrincipalId};

/// Incremental FNV-1a over the raw bits of an `f64` sequence.
fn fnv1a_f64(mut h: u64, values: impl IntoIterator<Item = f64>) -> u64 {
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// A stable fingerprint of everything the scheduling LPs read from the
/// access levels: principal count, pairwise mandatory/optional shares, and
/// capacities. Two level tables with equal fingerprints produce identical
/// constraint matrices.
pub fn levels_fingerprint(levels: &AccessLevels) -> u64 {
    let n = levels.len();
    let mut h = 0xcbf29ce484222325u64 ^ (n as u64).wrapping_mul(0x9e3779b97f4a7c15);
    for i in 0..n {
        let pi = PrincipalId(i);
        h = fnv1a_f64(
            h,
            (0..n).flat_map(|j| {
                let pj = PrincipalId(j);
                [levels.mand_share(pi, pj), levels.opt_share(pi, pj)]
            }),
        );
    }
    fnv1a_f64(h, levels.capacities().iter().copied())
}

/// One memoized window.
#[derive(Debug, Clone)]
struct Entry {
    key: Vec<i64>,
    plan: Plan,
    /// Logical time of last use (hit or store) — the LRU ordering.
    used: u64,
}

/// Bounded LRU memo of recently solved windows.
#[derive(Debug, Clone)]
pub struct PlanCache {
    fingerprint: u64,
    entries: Vec<Entry>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    /// Queue-length quantization step for cache keys, in requests.
    pub const QUANTUM: f64 = 1e-6;

    /// Default entry cap. Demand walks oscillate over a handful of
    /// quantized vectors (EWMA fixpoints, alternating phases); a few dozen
    /// entries cover that working set while keeping lookup a short linear
    /// scan and memory bounded regardless of churn.
    pub const DEFAULT_CAPACITY: usize = 32;

    /// An empty cache bound to the given levels fingerprint.
    pub fn new(fingerprint: u64) -> Self {
        Self::with_capacity(fingerprint, Self::DEFAULT_CAPACITY)
    }

    /// An empty cache with an explicit entry cap (at least 1).
    pub fn with_capacity(fingerprint: u64, capacity: usize) -> Self {
        PlanCache {
            fingerprint,
            entries: Vec::new(),
            capacity: capacity.max(1),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Drops every stored plan and rebinds to a new levels fingerprint
    /// (call when capacities or agreements change).
    pub fn invalidate(&mut self, fingerprint: u64) {
        self.fingerprint = fingerprint;
        self.entries.clear();
    }

    fn quantized(q: f64) -> i64 {
        // Saturating cast: demands far beyond i64 range all collapse to the
        // same key, which only costs a cache miss, never a wrong plan.
        (q / Self::QUANTUM).round() as i64
    }

    fn matches(key: &[i64], queues: &[f64]) -> bool {
        key.len() == queues.len()
            && queues.iter().zip(key).all(|(&q, &k)| Self::quantized(q) == k)
    }

    /// Returns the memoized plan if `queues` quantizes to a stored key.
    /// Counts a hit or a miss either way; a hit refreshes the entry's LRU
    /// position.
    pub fn lookup(&mut self, queues: &[f64]) -> Option<Plan> {
        self.clock += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| Self::matches(&e.key, queues)) {
            e.used = self.clock;
            self.hits += 1;
            return Some(e.plan.clone());
        }
        self.misses += 1;
        None
    }

    /// Stores the freshly solved plan for `queues`, evicting the least
    /// recently used entry when the cache is full.
    pub fn store(&mut self, queues: &[f64], plan: &Plan) {
        self.clock += 1;
        let key: Vec<i64> = queues.iter().map(|&q| Self::quantized(q)).collect();
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            e.plan = plan.clone();
            e.used = self.clock;
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.used)
                .map(|(i, _)| i)
            {
                self.entries.swap_remove(oldest);
                self.evictions += 1;
            }
        }
        self.entries.push(Entry { key, plan: plan.clone(), used: self.clock });
    }

    /// The levels fingerprint this cache is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups that returned a memoized plan.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through to the solver.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries pushed out by the LRU cap since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covenant_agreements::AgreementGraph;

    fn levels() -> AccessLevels {
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 100.0);
        let a = g.add_principal("A", 0.0);
        g.add_agreement(s, a, 0.5, 0.5).unwrap();
        g.access_levels()
    }

    #[test]
    fn identical_queues_hit() {
        let mut c = PlanCache::new(levels_fingerprint(&levels()));
        let plan = Plan::zero(2, 2);
        assert!(c.lookup(&[1.0, 2.0]).is_none());
        c.store(&[1.0, 2.0], &plan);
        assert_eq!(c.lookup(&[1.0, 2.0]), Some(plan));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn sub_quantum_differences_still_hit() {
        let mut c = PlanCache::new(0);
        c.store(&[10.0], &Plan::zero(1, 1));
        assert!(c.lookup(&[10.0 + 1e-9]).is_some());
        assert!(c.lookup(&[10.0 + 1e-5]).is_none());
    }

    #[test]
    fn invalidation_clears_every_entry() {
        let mut c = PlanCache::new(1);
        c.store(&[5.0], &Plan::zero(1, 1));
        c.store(&[6.0], &Plan::zero(1, 1));
        c.invalidate(2);
        assert!(c.is_empty());
        assert!(c.lookup(&[5.0]).is_none());
        assert!(c.lookup(&[6.0]).is_none());
        assert_eq!(c.fingerprint(), 2);
    }

    #[test]
    fn multiple_entries_coexist() {
        // An alternating two-phase demand walk must hit on both vectors —
        // the single-entry design this replaces thrashed here.
        let mut c = PlanCache::new(0);
        c.store(&[1.0], &Plan::zero(1, 1));
        c.store(&[2.0], &Plan::zero(1, 1));
        assert!(c.lookup(&[1.0]).is_some());
        assert!(c.lookup(&[2.0]).is_some());
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn lru_cap_evicts_oldest() {
        let mut c = PlanCache::with_capacity(0, 2);
        c.store(&[1.0], &Plan::zero(1, 1));
        c.store(&[2.0], &Plan::zero(1, 1));
        // Touch [1.0] so [2.0] becomes the LRU victim.
        assert!(c.lookup(&[1.0]).is_some());
        c.store(&[3.0], &Plan::zero(1, 1));
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 2);
        assert!(c.lookup(&[2.0]).is_none(), "LRU entry must be gone");
        assert!(c.lookup(&[1.0]).is_some());
        assert!(c.lookup(&[3.0]).is_some());
    }

    #[test]
    fn restore_of_existing_key_does_not_evict() {
        let mut c = PlanCache::with_capacity(0, 2);
        c.store(&[1.0], &Plan::zero(1, 1));
        c.store(&[1.0], &Plan::zero(1, 1));
        c.store(&[2.0], &Plan::zero(1, 1));
        assert_eq!((c.len(), c.evictions()), (2, 0));
    }

    #[test]
    fn churn_stays_bounded() {
        let mut c = PlanCache::with_capacity(0, 4);
        for i in 0..100 {
            c.store(&[i as f64], &Plan::zero(1, 1));
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.evictions(), 96);
        // The four most recent keys survive.
        for i in 96..100 {
            assert!(c.lookup(&[i as f64]).is_some(), "key {i}");
        }
    }

    #[test]
    fn fingerprint_tracks_level_changes() {
        let a = levels_fingerprint(&levels());
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 200.0);
        let x = g.add_principal("A", 0.0);
        g.add_agreement(s, x, 0.5, 0.5).unwrap();
        let b = levels_fingerprint(&g.access_levels());
        assert_ne!(a, b);
        assert_eq!(a, levels_fingerprint(&levels()));
    }
}
