//! The community-context "Global Response Time" linear program (§3.1.2).
//!
//! Participants contribute servers to a shared pool and submit requests; the
//! admission controller minimizes the maximum response time across all
//! participants by maximizing the minimum *fraction of each queue served
//! this window*:
//!
//! ```text
//! maximize   θ
//! subject to Σ_k x_ik ≥ θ·n_i                    ∀i with n_i > 0
//!            Σ_k x_ki ≤ V_i                      ∀i   (server capacity)
//!            x_ik ≤ MI_ki + OI_ki                ∀i,k (agreement upper bounds)
//!            Σ_k x_ik ≥ min(n_i, MC_i)           ∀i   (mandatory guarantee)
//!            Σ_k x_ik ≤ n_i                      ∀i   (queue limit)
//!            Σ_k x_ki ≤ c_i                      ∀i   (optional locality cap)
//! ```
//!
//! The mandatory guarantee is enforced as an *aggregate* floor per
//! principal rather than the paper's per-pair `MI_ki ≤ x_ik` form (whose
//! lower bound the paper drops when `n_i < MC_i`). The aggregate form is
//! what the paper's prototypes measurably do: in Figure 9's third phase, a
//! principal demanding less than its mandatory level (`A` at 400 of 480)
//! is served fully while being *placed* so as to leave the maximum room
//! for others' optional reuse (`B` reaches 240, which per-pair floors
//! would forbid by pinning 160 of `A`'s load onto `B`'s server). Any
//! aggregate floor is always placeable because the per-server mandatory
//! shares partition capacity (`Σ_i MI_ji ≤ V_j`).

use crate::Plan;
use covenant_agreements::{AccessLevels, PrincipalId};
use covenant_lp::{LpStatus, Problem, Relation, SimplexWorkspace, WarmBasis, WarmOutcome, WarmStats};

/// Per-server locality caps: `caps[k]` limits how many requests this
/// redirector may push to principal `k`'s servers in one window (modelling
/// forwarding cost / locality preferences).
#[derive(Debug, Clone, PartialEq)]
pub struct LocalityCaps(pub Vec<f64>);

/// Solver for the community model.
///
/// Stateless apart from configuration; call [`Self::plan`] once per window
/// with window-scaled access levels and (global) queue lengths.
#[derive(Debug, Clone, Default)]
pub struct CommunityScheduler {
    /// Optional per-server locality caps (requests per window).
    pub locality: Option<LocalityCaps>,
}

impl CommunityScheduler {
    /// A scheduler without locality caps.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scheduler with locality caps.
    pub fn with_locality(caps: LocalityCaps) -> Self {
        CommunityScheduler { locality: Some(caps) }
    }

    /// Solves the community LP for one window.
    ///
    /// * `levels` — access levels **already scaled to the window length**
    ///   (see [`AccessLevels::scaled`]); capacities are per-window budgets.
    /// * `queues` — per-principal queue lengths `n_i` (global estimates in
    ///   the distributed setting).
    ///
    /// If the agreement lower bounds make the program infeasible (possible
    /// under tight locality caps), they are dropped and the program re-solved;
    /// a still-infeasible program yields the zero plan.
    pub fn plan(&self, levels: &AccessLevels, queues: &[f64]) -> Plan {
        let mut prepared = PreparedCommunity::new(levels, self.locality.clone());
        prepared.plan_with(&mut SimplexWorkspace::new(), queues)
    }
}

/// The community LP with its constraint matrix built once and reused.
///
/// All rows exist for every window: principals with an empty queue keep a
/// trivially-satisfied coverage row (θ-coefficient 0) and floor row
/// (rhs 0), so the tableau shape is identical across windows and
/// [`SimplexWorkspace`] reuse never reallocates. Per window only the
/// right-hand sides and the queue-derived θ-coefficients are rewritten.
///
/// Row layout: for principal `i`, rows `3i` (queue limit `≤ n_i`),
/// `3i + 1` (θ coverage `≥ 0`), `3i + 2` (mandatory floor `≥ floor_i`);
/// then one capacity row per server (each followed by its locality row
/// when caps are configured).
///
/// Rows carry only the `x_ik` whose agreement upper bound is positive —
/// pairs with no agreement are zero-bounded and structurally absent — so
/// the matrix has `O(agreements)` nonzeros, not `O(n²)`. The θ coefficient
/// sits at slot 0 of every coverage row (the one per-window coefficient
/// rewrite). A principal with no agreements at all keeps an empty queue/
/// floor row and a coverage row of just `−θ·n_i ≥ 0`, which forces `θ = 0`
/// whenever it has demand — exactly what the dense formulation did via its
/// zero-bounded columns.
#[derive(Debug, Clone)]
pub struct PreparedCommunity {
    n: usize,
    base: Problem,
    /// Window-scaled mandatory level `MC_i` per principal.
    mandatory: Vec<f64>,
    /// Persistent basis for the warm-started revised solver.
    warm: WarmBasis,
    /// Windows the warm engine refused and the dense tableau solved.
    dense_fallbacks: u64,
}

impl PreparedCommunity {
    /// Builds the skeleton from window-scaled access levels.
    pub fn new(levels: &AccessLevels, locality: Option<LocalityCaps>) -> Self {
        let n = levels.len();
        let caps = levels.capacities();
        // Variable layout: 0 = θ, then x_{ik} at 1 + i·n + k.
        let xv = |i: usize, k: usize| 1 + i * n + k;
        let mut p = Problem::new(1 + n * n);
        p.set_objective_coeff(0, 1.0);
        if n > 0 {
            p.set_upper_bound(0, 1.0); // θ ≤ 1: cannot serve more than the queue
        }
        // Agreement upper bounds, and which pairs exist at all.
        let mut ub = vec![0.0f64; n * n];
        for i in 0..n {
            let pi = PrincipalId(i);
            for k in 0..n {
                let pk = PrincipalId(k);
                let upper = levels.mand_share(pi, pk) + levels.opt_share(pi, pk);
                ub[i * n + k] = upper.max(0.0);
            }
        }
        let mut mandatory = Vec::with_capacity(n);
        for i in 0..n {
            // Only agreement-backed pairs appear in the rows.
            let row: Vec<(usize, f64)> = (0..n)
                .filter(|&k| ub[i * n + k] > 0.0)
                .map(|k| (xv(i, k), 1.0))
                .collect();
            // Queue limit: Σ_k x_ik ≤ n_i.
            p.add_constraint(row.clone(), Relation::Le, 0.0);
            // θ coverage: Σ_k x_ik − θ n_i ≥ 0. The θ coefficient (slot 0)
            // is rewritten each window.
            let mut cov = Vec::with_capacity(row.len() + 1);
            cov.push((0, 0.0));
            cov.extend_from_slice(&row);
            p.add_constraint(cov, Relation::Ge, 0.0);
            // Mandatory guarantee: demand up to MC_i is always served.
            p.add_constraint(row, Relation::Ge, 0.0);
            for k in 0..n {
                p.set_upper_bound(xv(i, k), ub[i * n + k]);
            }
            mandatory.push(levels.mandatory(PrincipalId(i)));
        }
        // Server capacities: Σ_i x_ik ≤ V_k, plus locality caps.
        for k in 0..n {
            let row: Vec<(usize, f64)> = (0..n)
                .filter(|&i| ub[i * n + k] > 0.0)
                .map(|i| (xv(i, k), 1.0))
                .collect();
            p.add_constraint(row.clone(), Relation::Le, caps[k].max(0.0));
            if let Some(LocalityCaps(c)) = &locality {
                p.add_constraint(row, Relation::Le, c[k].max(0.0));
            }
        }
        PreparedCommunity { n, base: p, mandatory, warm: WarmBasis::new(), dense_fallbacks: 0 }
    }

    /// Number of principals the skeleton was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the skeleton covers no principals.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn update_queues(&mut self, queues: &[f64], floors: bool) {
        for (i, &q) in queues.iter().enumerate().take(self.n) {
            let ni = q.max(0.0);
            self.base.set_constraint_rhs(3 * i, ni);
            self.base.set_constraint_coeff(3 * i + 1, 0, -ni);
            let floor = if floors { self.mandatory[i].min(ni).max(0.0) } else { 0.0 };
            self.base.set_constraint_rhs(3 * i + 2, floor);
        }
    }

    /// Applies `queues` (with mandatory floors) and exposes the underlying
    /// window LP, so the bench harness can time the retained reference
    /// solver on exactly the problem the fast path solves.
    pub fn window_problem(&mut self, queues: &[f64]) -> &Problem {
        assert_eq!(queues.len(), self.n, "queue vector length must match principal count");
        self.update_queues(queues, true);
        &self.base
    }

    fn extract(&self, x: &[f64]) -> Plan {
        let n = self.n;
        let assignments = (0..n)
            .map(|i| (0..n).map(|k| x[1 + i * n + k].max(0.0)).collect())
            .collect();
        Plan { assignments, theta: x.first().copied(), income: None }
    }

    /// Warm solve with dense fallback; `None` means infeasible under both
    /// engines (caller retries without floors).
    fn solve_window(&mut self, ws: &mut SimplexWorkspace) -> Option<Plan> {
        match self.base.solve_warm(&mut self.warm) {
            WarmOutcome::Optimal => Some(self.extract(self.warm.x())),
            WarmOutcome::Infeasible => None,
            WarmOutcome::Unsuitable => {
                self.dense_fallbacks += 1;
                if self.base.solve_in_place(ws) == LpStatus::Optimal {
                    Some(self.extract(ws.x()))
                } else {
                    None
                }
            }
        }
    }

    /// Solves one window, with the same semantics as
    /// [`CommunityScheduler::plan`] (floors dropped on infeasibility, zero
    /// plan as the last resort). The window goes through the warm-started
    /// revised solver, reusing the previous window's basis; `ws` only runs
    /// when the warm engine declares the problem unsuitable.
    pub fn plan_with(&mut self, ws: &mut SimplexWorkspace, queues: &[f64]) -> Plan {
        let n = self.n;
        assert_eq!(queues.len(), n, "queue vector length must match principal count");
        if n == 0 || queues.iter().all(|&q| q <= 0.0) {
            return Plan::zero(n, n);
        }
        self.update_queues(queues, true);
        if let Some(plan) = self.solve_window(ws) {
            return plan;
        }
        self.update_queues(queues, false);
        if let Some(plan) = self.solve_window(ws) {
            return plan;
        }
        Plan::zero(n, n)
    }

    /// Lifetime counters of the warm-started solver.
    pub fn warm_stats(&self) -> WarmStats {
        self.warm.stats()
    }

    /// Windows the warm engine refused and the dense tableau solved.
    pub fn dense_fallbacks(&self) -> u64 {
        self.dense_fallbacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covenant_agreements::AgreementGraph;

    /// Two community members each owning a 100-req/window server, B sharing
    /// half with A (Figure 9 shape, scaled down).
    fn community_pair() -> (AgreementGraph, PrincipalId, PrincipalId) {
        let mut g = AgreementGraph::new();
        let a = g.add_principal("A", 100.0);
        let b = g.add_principal("B", 100.0);
        g.add_agreement(b, a, 0.5, 0.5).unwrap();
        (g, a, b)
    }

    #[test]
    fn both_queues_fully_served_under_light_load() {
        let (g, a, b) = community_pair();
        let lv = g.access_levels();
        let plan = CommunityScheduler::new().plan(&lv, &[30.0, 30.0]);
        assert!((plan.theta.unwrap() - 1.0).abs() < 1e-9);
        assert!((plan.admitted(a) - 30.0).abs() < 1e-9);
        assert!((plan.admitted(b) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn overload_respects_shares() {
        // A floods; B floods. A is entitled to 100 (own) + 50 (from B);
        // B retains 50. θ = min fraction.
        let (g, a, b) = community_pair();
        let lv = g.access_levels();
        let plan = CommunityScheduler::new().plan(&lv, &[1000.0, 1000.0]);
        let got_a = plan.admitted(a);
        let got_b = plan.admitted(b);
        // Total capacity 200 fully used.
        assert!((got_a + got_b - 200.0).abs() < 1e-6);
        // Mandatory guarantees under overload: A ≥ 150, B ≥ 50.
        assert!(got_a >= 150.0 - 1e-6, "A admitted {got_a}");
        assert!(got_b >= 50.0 - 1e-6, "B admitted {got_b}");
    }

    #[test]
    fn figure9_phase3_optional_reuse() {
        // A owns 320, B owns 320 and shares [0.5,0.5] with A. A demands
        // 400 (< its 480 mandatory), B floods. A must be fully served AND
        // placed to leave B the leftover: B gets 160 + (160 − 80) = 240.
        let mut g = AgreementGraph::new();
        let a = g.add_principal("A", 320.0);
        let b = g.add_principal("B", 320.0);
        g.add_agreement(b, a, 0.5, 0.5).unwrap();
        let lv = g.access_levels();
        assert!((lv.mandatory(a) - 480.0).abs() < 1e-9);
        assert!((lv.mandatory(b) - 160.0).abs() < 1e-9);
        assert!((lv.optional(b) - 160.0).abs() < 1e-9);
        let plan = CommunityScheduler::new().plan(&lv, &[400.0, 400.0]);
        assert!((plan.admitted(a) - 400.0).abs() < 1e-6, "A {}", plan.admitted(a));
        assert!((plan.admitted(b) - 240.0).abs() < 1e-6, "B {}", plan.admitted(b));
        // Phase 1: A floods with two clients (800): A pinned at 480, B 160.
        let plan = CommunityScheduler::new().plan(&lv, &[800.0, 400.0]);
        assert!((plan.admitted(a) - 480.0).abs() < 1e-6, "A {}", plan.admitted(a));
        assert!((plan.admitted(b) - 160.0).abs() < 1e-6, "B {}", plan.admitted(b));
    }

    #[test]
    fn figure7_theta_shares_capacity_by_demand() {
        // V=250, both [0.2,1]; demands 270 vs 135 → served 2:1 (166.7/83.3).
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 250.0);
        let a = g.add_principal("A", 0.0);
        let b = g.add_principal("B", 0.0);
        g.add_agreement(s, a, 0.2, 1.0).unwrap();
        g.add_agreement(s, b, 0.2, 1.0).unwrap();
        let lv = g.access_levels();
        let plan = CommunityScheduler::new().plan(&lv, &[0.0, 270.0, 135.0]);
        assert!((plan.admitted(a) - 500.0 / 3.0).abs() < 1e-4, "A {}", plan.admitted(a));
        assert!((plan.admitted(b) - 250.0 / 3.0).abs() < 1e-4, "B {}", plan.admitted(b));
    }

    #[test]
    fn figure6_phase1_mandatory_overrides_theta() {
        // V=320, A [0.2,1] demanding 270, B [0.8,1] demanding 135: B is
        // below its mandatory 256 → fully served even though pure θ-max
        // would give it less; A takes the remainder (185).
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 320.0);
        let a = g.add_principal("A", 0.0);
        let b = g.add_principal("B", 0.0);
        g.add_agreement(s, a, 0.2, 1.0).unwrap();
        g.add_agreement(s, b, 0.8, 1.0).unwrap();
        let lv = g.access_levels();
        let plan = CommunityScheduler::new().plan(&lv, &[0.0, 270.0, 135.0]);
        assert!((plan.admitted(b) - 135.0).abs() < 1e-6, "B {}", plan.admitted(b));
        assert!((plan.admitted(a) - 185.0).abs() < 1e-6, "A {}", plan.admitted(a));
    }

    #[test]
    fn idle_partner_frees_optional_capacity() {
        // B idle: A may use its mandatory 150 but not B's retained 50
        // (A's upper bound on B's server is 50 with a [0.5,0.5] agreement).
        let (g, a, b) = community_pair();
        let lv = g.access_levels();
        let plan = CommunityScheduler::new().plan(&lv, &[1000.0, 0.0]);
        assert!((plan.admitted(a) - 150.0).abs() < 1e-6);
        assert_eq!(plan.admitted(b), 0.0);
    }

    #[test]
    fn optional_headroom_allows_bursting() {
        // Provider-style shares in a community LP: S owns 320, A [0.2,1],
        // B [0.8,1]. With only A active, A can take the whole server.
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 320.0);
        let a = g.add_principal("A", 0.0);
        let b = g.add_principal("B", 0.0);
        g.add_agreement(s, a, 0.2, 1.0).unwrap();
        g.add_agreement(s, b, 0.8, 1.0).unwrap();
        let lv = g.access_levels();
        // Queue order is [S, A, B]: only A has demand.
        let plan = CommunityScheduler::new().plan(&lv, &[0.0, 400.0, 0.0]);
        assert!((plan.admitted(a) - 320.0).abs() < 1e-6);
        assert_eq!(plan.admitted(b), 0.0);
    }

    #[test]
    fn figure6_phase1_shares() {
        // V=320; A [0.2,1] with 270 req/s demand, B [0.8,1] with 135 req/s.
        // B below its mandatory 256 → fully served; A takes the rest (185).
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 320.0);
        let a = g.add_principal("A", 0.0);
        let b = g.add_principal("B", 0.0);
        g.add_agreement(s, a, 0.2, 1.0).unwrap();
        g.add_agreement(s, b, 0.8, 1.0).unwrap();
        let lv = g.access_levels();
        let plan = CommunityScheduler::new().plan(&lv, &[0.0, 270.0, 135.0]);
        let got_a = plan.admitted(a);
        let got_b = plan.admitted(b);
        assert!((got_a + got_b - 320.0).abs() < 1e-6);
        // B's demand is under its mandatory share: every B request admitted.
        // (θ-fairness serves equal fractions when feasible: θ = 320/405.)
        assert!(got_b >= 106.0, "B admitted {got_b}");
        assert!(got_a >= 64.0 - 1e-6, "A admitted {got_a}");
    }

    #[test]
    fn locality_caps_limit_server_load() {
        let (g, a, _b) = community_pair();
        let lv = g.access_levels();
        let sched = CommunityScheduler::with_locality(LocalityCaps(vec![20.0, 20.0]));
        let plan = sched.plan(&lv, &[1000.0, 0.0]);
        assert!(plan.server_load(0) <= 20.0 + 1e-9);
        assert!(plan.server_load(1) <= 20.0 + 1e-9);
        assert!(plan.admitted(a) <= 40.0 + 1e-9);
        // Mandatory floors conflict with the caps; solver must fall back
        // rather than return a zero plan.
        assert!(plan.admitted(a) > 0.0);
    }

    #[test]
    fn empty_queues_give_zero_plan() {
        let (g, ..) = community_pair();
        let lv = g.access_levels();
        let plan = CommunityScheduler::new().plan(&lv, &[0.0, 0.0]);
        assert_eq!(plan.total_admitted(), 0.0);
    }

    #[test]
    fn capacity_never_exceeded() {
        let (g, ..) = community_pair();
        let lv = g.access_levels();
        let plan = CommunityScheduler::new().plan(&lv, &[500.0, 700.0]);
        for k in 0..2 {
            assert!(plan.server_load(k) <= lv.capacities()[k] + 1e-6);
        }
    }

    #[test]
    fn admitted_never_exceeds_queue() {
        let (g, a, b) = community_pair();
        let lv = g.access_levels();
        let plan = CommunityScheduler::new().plan(&lv, &[10.0, 5.0]);
        assert!(plan.admitted(a) <= 10.0 + 1e-9);
        assert!(plan.admitted(b) <= 5.0 + 1e-9);
    }
}
