//! The per-window schedule produced by the LP solvers.

use covenant_agreements::PrincipalId;
use serde::{Deserialize, Serialize};

/// A solved per-window schedule: how many requests of each principal to
/// forward to each server this window.
///
/// Entries are fractional request counts; integerization (with carry-over)
/// happens in `covenant-enforce`'s `CreditGate` / `PrincipalQueues`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// `assignments[i][k]`: requests of principal `i` sent to server `k`.
    pub assignments: Vec<Vec<f64>>,
    /// The community objective `θ` (fraction of every queue served), when
    /// the community model produced this plan.
    pub theta: Option<f64>,
    /// The provider income `Σ p_i (x_i − MC_i)`, when the provider model
    /// produced this plan.
    pub income: Option<f64>,
}

impl Plan {
    /// An all-zero plan over `n` principals and `m` servers (used when a
    /// window has no demand, or as the failure fallback).
    pub fn zero(n: usize, m: usize) -> Self {
        Plan { assignments: vec![vec![0.0; m]; n], theta: None, income: None }
    }

    /// Number of principals.
    pub fn n_principals(&self) -> usize {
        self.assignments.len()
    }

    /// Total admitted for principal `i` across all servers (`Σ_k x_ik`).
    pub fn admitted(&self, i: PrincipalId) -> f64 {
        self.assignments[i.0].iter().sum()
    }

    /// Total load placed on server `k` (`Σ_i x_ik`).
    pub fn server_load(&self, k: usize) -> f64 {
        self.assignments.iter().map(|row| row[k]).sum()
    }

    /// Total requests admitted across all principals.
    pub fn total_admitted(&self) -> f64 {
        self.assignments.iter().flatten().sum()
    }

    /// The coordinated-scheduling rule of §3.2: a redirector holding
    /// `n_local` of the global `n_global` queued requests per principal
    /// applies the same *fraction* of each queue the global plan does:
    /// `x_local_ij = x_ij × n_local_i / n_i`.
    ///
    /// Principals with an empty global queue get zero (nothing to scale).
    pub fn scale_for_local_queue(&self, n_local: &[f64], n_global: &[f64]) -> Plan {
        assert_eq!(n_local.len(), self.assignments.len());
        assert_eq!(n_global.len(), self.assignments.len());
        let assignments = self
            .assignments
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let frac = if n_global[i] > 0.0 { (n_local[i] / n_global[i]).clamp(0.0, 1.0) } else { 0.0 };
                row.iter().map(|x| x * frac).collect()
            })
            .collect();
        Plan { assignments, theta: self.theta, income: self.income }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_shape() {
        let p = Plan::zero(3, 2);
        assert_eq!(p.n_principals(), 3);
        assert_eq!(p.total_admitted(), 0.0);
        assert_eq!(p.admitted(PrincipalId(1)), 0.0);
        assert_eq!(p.server_load(1), 0.0);
    }

    #[test]
    fn aggregates() {
        let p = Plan {
            assignments: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            theta: Some(0.5),
            income: None,
        };
        assert_eq!(p.admitted(PrincipalId(0)), 3.0);
        assert_eq!(p.admitted(PrincipalId(1)), 7.0);
        assert_eq!(p.server_load(0), 4.0);
        assert_eq!(p.server_load(1), 6.0);
        assert_eq!(p.total_admitted(), 10.0);
    }

    #[test]
    fn local_scaling_matches_queue_fractions() {
        let p = Plan {
            assignments: vec![vec![10.0, 10.0], vec![8.0, 0.0]],
            theta: Some(1.0),
            income: None,
        };
        // Redirector holds 25% of principal 0's queue, 100% of principal 1's.
        let local = p.scale_for_local_queue(&[5.0, 8.0], &[20.0, 8.0]);
        assert_eq!(local.assignments[0], vec![2.5, 2.5]);
        assert_eq!(local.assignments[1], vec![8.0, 0.0]);
    }

    #[test]
    fn local_scaling_empty_global_queue_is_zero() {
        let p = Plan { assignments: vec![vec![4.0]], theta: None, income: None };
        let local = p.scale_for_local_queue(&[0.0], &[0.0]);
        assert_eq!(local.assignments[0], vec![0.0]);
    }

    #[test]
    fn local_scaling_clamps_stale_fractions() {
        // Staleness can make n_local > n_global momentarily; the fraction is
        // clamped to 1 so a redirector never over-admits past the plan.
        let p = Plan { assignments: vec![vec![4.0]], theta: None, income: None };
        let local = p.scale_for_local_queue(&[10.0], &[5.0]);
        assert_eq!(local.assignments[0], vec![4.0]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // paired (i, k) matrix indices
    fn sum_of_local_plans_equals_global_plan() {
        let p = Plan {
            assignments: vec![vec![10.0, 6.0], vec![9.0, 3.0]],
            theta: None,
            income: None,
        };
        let global = [20.0, 12.0];
        let locals = [[5.0, 4.0], [15.0, 8.0]];
        let mut total = vec![vec![0.0; 2]; 2];
        for l in &locals {
            let lp = p.scale_for_local_queue(l, &global);
            for i in 0..2 {
                for k in 0..2 {
                    total[i][k] += lp.assignments[i][k];
                }
            }
        }
        for i in 0..2 {
            for k in 0..2 {
                assert!((total[i][k] - p.assignments[i][k]).abs() < 1e-9);
            }
        }
    }
}
