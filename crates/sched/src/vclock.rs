//! Virtual-time proportional-share baseline (paper §6).
//!
//! The paper notes its queuing strategy "builds upon the same *virtual
//! time* notion for proportional resource sharing that has been used in
//! the context of network queuing algorithms [Fair Queuing, VirtualClock]
//! and real-time multimedia CPU scheduling", but replaces the explicit
//! per-packet queue structures with a credit-based implementation better
//! suited to a distributed setting.
//!
//! This module provides the classical comparator: a start-time weighted
//! fair queuing (VirtualClock-style) scheduler over per-principal weights.
//! It is used by the ablation benches to show what plain proportional
//! share *cannot* express — `[lb, ub]` semantics: a weight-based scheduler
//! has no notion of an upper bound (an idle system gives one flow
//! everything) nor of mandatory floors decoupled from the weight ratio,
//! which is exactly why the paper's LP formulation is needed.

use crate::Request;
#[cfg(test)]
use covenant_agreements::PrincipalId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A weighted-fair-queuing scheduler over per-principal virtual time.
///
/// Each principal `i` has weight `w_i`; a request of cost `c` stamps a
/// virtual finish time `F = max(V, F_prev(i)) + c / w_i` where `V` is the
/// global virtual clock (the finish time of the last dispatched request).
/// Dispatch order is ascending `F`, which serves backlogged principals in
/// proportion to their weights.
#[derive(Debug)]
pub struct VirtualClock {
    weights: Vec<f64>,
    last_finish: Vec<f64>,
    vclock: f64,
    heap: BinaryHeap<Stamped>,
}

#[derive(Debug)]
struct Stamped {
    finish: f64,
    seq: u64,
    request: Request,
}

impl PartialEq for Stamped {
    fn eq(&self, other: &Self) -> bool {
        self.finish == other.finish && self.seq == other.seq
    }
}
impl Eq for Stamped {}
impl PartialOrd for Stamped {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Stamped {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (finish, seq); total_cmp gives finite stamps the
        // usual order without a panicking unwrap of partial_cmp.
        other.finish.total_cmp(&self.finish).then(other.seq.cmp(&self.seq))
    }
}

impl VirtualClock {
    /// Creates a scheduler with the given per-principal weights (must be
    /// positive for principals that submit work).
    pub fn new(weights: Vec<f64>) -> Self {
        let n = weights.len();
        VirtualClock {
            weights,
            last_finish: vec![0.0; n],
            vclock: 0.0,
            heap: BinaryHeap::new(),
        }
    }

    /// Enqueues a request, stamping its virtual finish time.
    pub fn enqueue(&mut self, request: Request) {
        let i = request.principal.0;
        let w = self.weights[i].max(1e-12);
        let start = self.vclock.max(self.last_finish[i]);
        let finish = start + request.cost / w;
        self.last_finish[i] = finish;
        let seq = request.id.0;
        self.heap.push(Stamped { finish, seq, request });
    }

    /// Dispatches the request with the smallest virtual finish time.
    pub fn dispatch(&mut self) -> Option<Request> {
        let s = self.heap.pop()?;
        self.vclock = s.finish;
        Some(s.request)
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no requests are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Dispatches up to `budget` cost units, returning the served requests
    /// (the per-window analogue used in the ablation).
    pub fn dispatch_window(&mut self, mut budget: f64) -> Vec<Request> {
        let mut out = Vec::new();
        while let Some(top) = self.heap.peek() {
            if top.request.cost > budget + 1e-9 {
                break;
            }
            let Some(r) = self.dispatch() else { break };
            budget -= r.cost;
            out.push(r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(id: u64, p: usize) -> Request {
        Request::unit(id, PrincipalId(p), 0.0)
    }

    #[test]
    fn backlogged_flows_served_by_weight() {
        // Weights 3:1, both heavily backlogged: service ratio 3:1.
        let mut vc = VirtualClock::new(vec![3.0, 1.0]);
        for id in 0..400 {
            vc.enqueue(unit(id * 2, 0));
            vc.enqueue(unit(id * 2 + 1, 1));
        }
        let served = vc.dispatch_window(100.0);
        let s0 = served.iter().filter(|r| r.principal.0 == 0).count();
        let s1 = served.iter().filter(|r| r.principal.0 == 1).count();
        assert_eq!(s0 + s1, 100);
        assert!((s0 as f64 / s1 as f64 - 3.0).abs() < 0.2, "{s0}:{s1}");
    }

    #[test]
    fn idle_flow_does_not_bank_credit() {
        // Flow 1 idle while flow 0 is served; when flow 1 arrives it gets
        // its weight share *going forward*, no catch-up burst (classic WFQ
        // memorylessness — contrast with the paper's mandatory floors).
        let mut vc = VirtualClock::new(vec![1.0, 1.0]);
        for id in 0..50 {
            vc.enqueue(unit(id, 0));
        }
        let first = vc.dispatch_window(30.0);
        assert_eq!(first.len(), 30);
        // Now flow 1 wakes with a backlog.
        for id in 100..150 {
            vc.enqueue(unit(id, 1));
        }
        let second = vc.dispatch_window(20.0);
        let s1 = second.iter().filter(|r| r.principal.0 == 1).count();
        // Fair share from now on: about half, not all 20.
        assert!((7..=13).contains(&s1), "flow 1 got {s1}");
    }

    #[test]
    fn weights_cannot_express_upper_bounds() {
        // The structural limitation the LP fixes: with only one active
        // flow, WFQ gives it *everything* regardless of any intended ub.
        let mut vc = VirtualClock::new(vec![1.0, 9.0]);
        for id in 0..100 {
            vc.enqueue(unit(id, 0));
        }
        let served = vc.dispatch_window(50.0);
        assert_eq!(served.len(), 50); // flow 0 takes all 50 despite weight 1
    }

    #[test]
    fn costly_requests_consume_proportional_service() {
        let mut vc = VirtualClock::new(vec![1.0, 1.0]);
        for id in 0..20 {
            vc.enqueue(Request {
                id: crate::RequestId(id),
                principal: PrincipalId(0),
                arrival: 0.0,
                cost: 5.0,
            });
            vc.enqueue(unit(1000 + id, 1));
        }
        let served = vc.dispatch_window(30.0);
        let units0: f64 = served.iter().filter(|r| r.principal.0 == 0).map(|r| r.cost).sum();
        let units1: f64 = served.iter().filter(|r| r.principal.0 == 1).map(|r| r.cost).sum();
        // Equal weights → roughly equal cost units despite 5× request sizes.
        assert!((units0 - units1).abs() <= 5.0, "{units0} vs {units1}");
    }

    #[test]
    fn fifo_within_a_flow() {
        let mut vc = VirtualClock::new(vec![1.0]);
        for id in 0..10 {
            vc.enqueue(unit(id, 0));
        }
        let served = vc.dispatch_window(10.0);
        let ids: Vec<u64> = served.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, (0..10).collect::<Vec<u64>>());
    }
}
