//! Per-window scheduling orchestration: policy dispatch and the
//! conservative fallback used before coordination data arrives.

use crate::cache::{levels_fingerprint, PlanCache};
use crate::community::PreparedCommunity;
use crate::provider::PreparedProvider;
use crate::{LocalityCaps, Plan};
use covenant_agreements::{AccessLevels, PrincipalId};
use covenant_lp::SimplexWorkspace;

/// Which optimization the redirector runs each window.
#[derive(Debug, Clone, PartialEq)]
pub enum Policy {
    /// Community context: maximize the minimum served queue fraction `θ`
    /// (minimizes the community-wide maximum response time).
    Community {
        /// Optional per-server locality caps for this redirector.
        locality: Option<LocalityCaps>,
    },
    /// Service-provider context: maximize `Σ p_i (x_i − MC_i)`.
    Provider {
        /// Per-principal price for requests beyond the mandatory level.
        prices: Vec<f64>,
    },
}

/// Redirector-side scheduler configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerConfig {
    /// Scheduling window length in seconds (the paper uses 0.1).
    pub window_secs: f64,
    /// Optimization policy.
    pub policy: Policy,
    /// Fraction of the mandatory share a redirector admits while it has no
    /// global queue information yet. The paper's prototype uses half its
    /// mandatory tickets when one other redirector's state is unknown
    /// (Figure 8, phase 1); with `r` redirectors the natural choice is
    /// `1/r`.
    pub conservative_fraction: f64,
    /// Memoize the last solved `(levels, quantized queues) → Plan` and skip
    /// the LP when consecutive windows see the same demand (exact within
    /// [`PlanCache::QUANTUM`]). Steady-state EWMA estimates converge to a
    /// fixpoint, so this short-circuits most windows of a stable phase.
    /// Never changes admitted plans — a hit replays the identical solve.
    pub plan_cache: bool,
}

impl SchedulerConfig {
    /// The paper's defaults: 100 ms windows, community policy, half the
    /// mandatory share while uncoordinated.
    pub fn community_default() -> Self {
        SchedulerConfig {
            window_secs: 0.1,
            policy: Policy::Community { locality: None },
            conservative_fraction: 0.5,
            plan_cache: true,
        }
    }

    /// Provider policy with the given prices.
    pub fn provider(prices: Vec<f64>) -> Self {
        SchedulerConfig {
            window_secs: 0.1,
            policy: Policy::Provider { prices },
            conservative_fraction: 0.5,
            plan_cache: true,
        }
    }
}

/// What the redirector currently knows about global demand.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalView {
    /// No aggregate information has arrived yet (tree still propagating):
    /// schedule conservatively from local knowledge only.
    Unknown,
    /// Global per-principal queue lengths (possibly stale by the tree's
    /// propagation delay).
    Queues(Vec<f64>),
}

/// The prepared (matrix-built-once) LP behind the configured policy.
#[derive(Debug, Clone)]
enum Engine {
    Community(PreparedCommunity),
    Provider(PreparedProvider),
}

impl Engine {
    fn build(levels: &AccessLevels, policy: &Policy) -> Engine {
        match policy {
            Policy::Community { locality } => {
                Engine::Community(PreparedCommunity::new(levels, locality.clone()))
            }
            Policy::Provider { prices } => {
                Engine::Provider(PreparedProvider::new(levels, prices.clone()))
            }
        }
    }

    fn warm_stats(&self) -> covenant_lp::WarmStats {
        match self {
            Engine::Community(p) => p.warm_stats(),
            Engine::Provider(p) => p.warm_stats(),
        }
    }

    fn dense_fallbacks(&self) -> u64 {
        match self {
            Engine::Community(p) => p.dense_fallbacks(),
            Engine::Provider(p) => p.dense_fallbacks(),
        }
    }
}

/// One redirector's per-window planning engine.
///
/// Holds the window-scaled [`AccessLevels`] (recomputed only when the
/// agreement graph or capacities change), the prepared constraint matrix
/// for the configured policy, a reusable [`SimplexWorkspace`], and the
/// per-window [`PlanCache`]. Planning therefore needs `&mut self`; wrap in
/// a lock when shared.
#[derive(Debug, Clone)]
pub struct WindowScheduler {
    cfg: SchedulerConfig,
    /// Access levels scaled to one window.
    window_levels: AccessLevels,
    engine: Engine,
    lp_ws: SimplexWorkspace,
    cache: PlanCache,
    /// Scratch for the global/local demand merge, reused across windows so
    /// steady-state planning allocates nothing.
    merged_buf: Vec<f64>,
    /// Warm-solver counters accumulated from engines retired by
    /// [`WindowScheduler::update_levels`] (a level change rebuilds the
    /// prepared matrix and its basis; lifetime totals must not reset).
    warm_retired: covenant_lp::WarmStats,
    dense_retired: u64,
}

impl WindowScheduler {
    /// Builds a scheduler from *rate* access levels (requests/second) and a
    /// configuration; levels are scaled to the window internally.
    pub fn new(levels: &AccessLevels, cfg: SchedulerConfig) -> Self {
        assert!(cfg.window_secs > 0.0, "window must be positive");
        assert!(
            (0.0..=1.0).contains(&cfg.conservative_fraction),
            "conservative fraction must be in [0,1]"
        );
        let window_levels = levels.scaled(cfg.window_secs);
        let engine = Engine::build(&window_levels, &cfg.policy);
        let cache = PlanCache::new(levels_fingerprint(&window_levels));
        WindowScheduler {
            window_levels,
            engine,
            lp_ws: SimplexWorkspace::new(),
            cache,
            cfg,
            merged_buf: Vec::new(),
            warm_retired: covenant_lp::WarmStats::default(),
            dense_retired: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// The window-scaled access levels.
    pub fn window_levels(&self) -> &AccessLevels {
        &self.window_levels
    }

    /// Installs new access levels (capacity or agreement change): rebuilds
    /// the prepared constraint matrix (retiring its warm basis into the
    /// lifetime counters) and invalidates the plan cache.
    pub fn update_levels(&mut self, levels: &AccessLevels) {
        let retired = self.engine.warm_stats();
        self.warm_retired.solves += retired.solves;
        self.warm_retired.warm_solves += retired.warm_solves;
        self.warm_retired.cold_starts += retired.cold_starts;
        self.warm_retired.pivots += retired.pivots;
        self.warm_retired.refactorizations += retired.refactorizations;
        self.dense_retired += self.engine.dense_fallbacks();
        self.window_levels = levels.scaled(self.cfg.window_secs);
        self.engine = Engine::build(&self.window_levels, &self.cfg.policy);
        self.cache.invalidate(levels_fingerprint(&self.window_levels));
    }

    /// `(hits, misses)` of the plan cache since construction.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }

    /// Plan-cache entries pushed out by the LRU cap since construction.
    pub fn cache_evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// `(solves, pivots)` across both solver engines: warm revised solves
    /// plus any dense-tableau runs (fallbacks, or everything before the
    /// warm engine existed).
    pub fn lp_stats(&self) -> (u64, u64) {
        let warm = self.warm_stats();
        (self.lp_ws.solves() + warm.solves, self.lp_ws.pivots() + warm.pivots)
    }

    /// Lifetime counters of the warm-started revised solver, including
    /// engines retired by level changes.
    pub fn warm_stats(&self) -> covenant_lp::WarmStats {
        let live = self.engine.warm_stats();
        covenant_lp::WarmStats {
            solves: self.warm_retired.solves + live.solves,
            warm_solves: self.warm_retired.warm_solves + live.warm_solves,
            cold_starts: self.warm_retired.cold_starts + live.cold_starts,
            pivots: self.warm_retired.pivots + live.pivots,
            refactorizations: self.warm_retired.refactorizations + live.refactorizations,
        }
    }

    /// Windows where the warm engine refused and the dense tableau solved.
    pub fn dense_fallbacks(&self) -> u64 {
        self.dense_retired + self.engine.dense_fallbacks()
    }

    /// Plans one window. `global` is what the combining tree has delivered;
    /// `local_queues` are this redirector's own per-principal demands
    /// (requests for the coming window). Returns the *local* plan — already
    /// scaled to this redirector's queue fraction when global data is
    /// available.
    pub fn plan_window(&mut self, global: &GlobalView, local_queues: &[f64]) -> Plan {
        match global {
            GlobalView::Unknown => self.plan_window_shared(None, local_queues),
            GlobalView::Queues(global_queues) => {
                self.plan_window_shared(Some(global_queues), local_queues)
            }
        }
    }

    /// [`WindowScheduler::plan_window`] over borrowed global data: `None`
    /// means the tree has delivered nothing yet. Callers holding the
    /// aggregate behind a shared pointer (the simulator's `DelayedView`)
    /// plan without materializing a `GlobalView`, and the global/local
    /// merge reuses an internal scratch buffer instead of allocating.
    pub fn plan_window_shared(&mut self, global: Option<&[f64]>, local_queues: &[f64]) -> Plan {
        let n = self.window_levels.len();
        assert_eq!(local_queues.len(), n);
        match global {
            None => self.conservative_plan(local_queues),
            Some(global_queues) => {
                assert_eq!(global_queues.len(), n);
                // Never plan below local knowledge: a redirector always
                // knows at least its own demand even if the aggregate is
                // stale or hasn't folded it in yet.
                let mut merged = std::mem::take(&mut self.merged_buf);
                merged.clear();
                merged.extend(global_queues.iter().zip(local_queues).map(|(g, l)| g.max(*l)));
                let global_plan = self.solve(&merged);
                let plan = global_plan.scale_for_local_queue(local_queues, &merged);
                self.merged_buf = merged;
                plan
            }
        }
    }

    /// Plans one window against explicit global queues, returning the
    /// *global* (unscaled) plan. Used by single-redirector deployments and
    /// by tests.
    pub fn plan_global(&mut self, queues: &[f64]) -> Plan {
        self.solve(queues)
    }

    fn solve(&mut self, queues: &[f64]) -> Plan {
        if self.cfg.plan_cache {
            if let Some(plan) = self.cache.lookup(queues) {
                return plan;
            }
        }
        let plan = match &mut self.engine {
            Engine::Community(p) => p.plan_with(&mut self.lp_ws, queues),
            Engine::Provider(p) => p.plan_with(&mut self.lp_ws, queues),
        };
        if self.cfg.plan_cache {
            self.cache.store(queues, &plan);
        }
        plan
    }

    /// Conservative fallback: admit `conservative_fraction` of each
    /// principal's mandatory share, capped by local demand, spread across
    /// servers proportionally to the mandatory entitlement.
    fn conservative_plan(&self, local_queues: &[f64]) -> Plan {
        let n = self.window_levels.len();
        let mut assignments = vec![vec![0.0; n]; n];
        for i in 0..n {
            let pi = PrincipalId(i);
            let mc = self.window_levels.mandatory(pi);
            if mc <= 0.0 {
                continue;
            }
            let budget = (mc * self.cfg.conservative_fraction).min(local_queues[i].max(0.0));
            if budget <= 0.0 {
                continue;
            }
            for (k, slot) in assignments[i].iter_mut().enumerate() {
                let share = self.window_levels.mand_share(pi, PrincipalId(k)) / mc;
                *slot = budget * share;
            }
        }
        Plan { assignments, theta: None, income: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covenant_agreements::AgreementGraph;

    /// Figure 8 setup: server 320 req/s, A [0.8,1], B [0.2,1].
    fn figure8() -> (AgreementGraph, PrincipalId, PrincipalId) {
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 320.0);
        let a = g.add_principal("A", 0.0);
        let b = g.add_principal("B", 0.0);
        g.add_agreement(s, a, 0.8, 1.0).unwrap();
        g.add_agreement(s, b, 0.2, 1.0).unwrap();
        (g, a, b)
    }

    #[test]
    fn conservative_mode_uses_half_mandatory() {
        // Figure 8 phase 1: B's redirector without global info admits half
        // of B's 20% of 320 = 32 req/s (the paper measures ~30).
        let (g, _a, b) = figure8();
        let lv = g.access_levels();
        let mut ws = WindowScheduler::new(&lv, SchedulerConfig::community_default());
        // B floods locally; nothing known globally.
        let plan = ws.plan_window(&GlobalView::Unknown, &[0.0, 0.0, 100.0]);
        // Per 100 ms window: half of 6.4 = 3.2 requests → 32 req/s.
        assert!((plan.admitted(b) - 3.2).abs() < 1e-9, "B got {}", plan.admitted(b));
    }

    #[test]
    fn conservative_mode_caps_at_local_demand() {
        let (g, _a, b) = figure8();
        let lv = g.access_levels();
        let mut ws = WindowScheduler::new(&lv, SchedulerConfig::community_default());
        let plan = ws.plan_window(&GlobalView::Unknown, &[0.0, 0.0, 1.0]);
        assert!((plan.admitted(b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coordinated_mode_scales_to_local_fraction() {
        let (g, a, _b) = figure8();
        let lv = g.access_levels();
        let mut ws = WindowScheduler::new(&lv, SchedulerConfig::community_default());
        // Globally A has 40 queued this window; locally we hold 10 (25%).
        let global = GlobalView::Queues(vec![0.0, 40.0, 0.0]);
        let plan = ws.plan_window(&global, &[0.0, 10.0, 0.0]);
        // Global plan admits min(40, 32-per-window)=32; local share = 25%.
        assert!((plan.admitted(a) - 8.0).abs() < 1e-6, "A got {}", plan.admitted(a));
    }

    #[test]
    fn stale_global_view_merges_local_demand() {
        let (g, a, _b) = figure8();
        let lv = g.access_levels();
        let mut ws = WindowScheduler::new(&lv, SchedulerConfig::community_default());
        // Tree says zero demand, but we locally hold 10 requests for A.
        let global = GlobalView::Queues(vec![0.0, 0.0, 0.0]);
        let plan = ws.plan_window(&global, &[0.0, 10.0, 0.0]);
        assert!(plan.admitted(a) > 0.0, "local demand must not be starved by a stale tree");
    }

    #[test]
    fn provider_policy_dispatches() {
        let (g, a, b) = figure8();
        let lv = g.access_levels();
        let mut ws = WindowScheduler::new(&lv, SchedulerConfig::provider(vec![0.0, 2.0, 1.0]));
        let plan = ws.plan_global(&[0.0, 80.0, 40.0]);
        // Per-window capacity 32: A pays more, B pinned at mandatory 6.4.
        assert!((plan.admitted(b) - 6.4).abs() < 1e-6);
        assert!((plan.admitted(a) - 25.6).abs() < 1e-6);
        assert!(plan.income.is_some());
    }

    #[test]
    fn update_levels_rescales() {
        let (g, _a, b) = figure8();
        let lv = g.access_levels();
        let mut ws = WindowScheduler::new(&lv, SchedulerConfig::community_default());
        let mut g2 = AgreementGraph::new();
        let s = g2.add_principal("S", 640.0);
        let a2 = g2.add_principal("A", 0.0);
        let b2 = g2.add_principal("B", 0.0);
        g2.add_agreement(s, a2, 0.8, 1.0).unwrap();
        g2.add_agreement(s, b2, 0.2, 1.0).unwrap();
        ws.update_levels(&g2.access_levels());
        let plan = ws.plan_window(&GlobalView::Unknown, &[0.0, 0.0, 100.0]);
        assert!((plan.admitted(b) - 6.4).abs() < 1e-9);
    }

    #[test]
    fn repeated_queues_hit_the_plan_cache() {
        let (g, ..) = figure8();
        let lv = g.access_levels();
        let mut ws = WindowScheduler::new(&lv, SchedulerConfig::community_default());
        let queues = vec![0.0, 40.0, 25.0];
        let first = ws.plan_global(&queues);
        let (solves_after_first, _) = ws.lp_stats();
        for _ in 0..5 {
            assert_eq!(ws.plan_global(&queues), first);
        }
        let (hits, misses) = ws.cache_stats();
        assert_eq!(hits, 5);
        assert_eq!(misses, 1);
        // Cache hits must not have touched the solver.
        assert_eq!(ws.lp_stats().0, solves_after_first);
    }

    #[test]
    fn plan_cache_never_changes_plans() {
        let (g, ..) = figure8();
        let lv = g.access_levels();
        let mut cached = WindowScheduler::new(&lv, SchedulerConfig::community_default());
        let mut uncached = WindowScheduler::new(
            &lv,
            SchedulerConfig { plan_cache: false, ..SchedulerConfig::community_default() },
        );
        // A demand walk with repeats: hits and misses interleave. The
        // final vector differs sub-quantum from the first, so the cache is
        // allowed to replay the earlier plan — plans must agree within the
        // quantum, not bit-for-bit.
        let walks =
            [[0.0, 10.0, 5.0], [0.0, 10.0, 5.0], [0.0, 12.0, 5.0], [0.0, 10.0, 5.0 + 1e-9]];
        for q in &walks {
            let a = cached.plan_global(q);
            let b = uncached.plan_global(q);
            for (ra, rb) in a.assignments.iter().zip(&b.assignments) {
                for (va, vb) in ra.iter().zip(rb) {
                    assert!((va - vb).abs() <= 1e-6, "queues {q:?}: {va} vs {vb}");
                }
            }
            assert!(
                (a.theta.unwrap_or(0.0) - b.theta.unwrap_or(0.0)).abs() <= 1e-6,
                "queues {q:?}"
            );
        }
        assert!(cached.cache_stats().0 > 0, "walk contained repeats; cache must hit");
        assert_eq!(uncached.cache_stats(), (0, 0));
    }

    #[test]
    fn update_levels_invalidates_the_cache() {
        let (g, _a, b) = figure8();
        let lv = g.access_levels();
        let mut ws = WindowScheduler::new(&lv, SchedulerConfig::community_default());
        let queues = vec![0.0, 0.0, 100.0];
        let _ = ws.plan_global(&queues);
        let mut g2 = AgreementGraph::new();
        let s = g2.add_principal("S", 640.0);
        let a2 = g2.add_principal("A", 0.0);
        let b2 = g2.add_principal("B", 0.0);
        g2.add_agreement(s, a2, 0.8, 1.0).unwrap();
        g2.add_agreement(s, b2, 0.2, 1.0).unwrap();
        ws.update_levels(&g2.access_levels());
        // Same queue vector, new levels: must re-solve, not replay. Alone on
        // the doubled server, B bursts to the full 64 per window (a stale
        // replay would still say 32).
        let plan = ws.plan_global(&queues);
        assert!((plan.admitted(b) - 64.0).abs() < 1e-6, "B {}", plan.admitted(b));
        assert_eq!(ws.cache_stats().0, 0);
    }
}
