//! Multi-resource window scheduling (§3.1.1's vector quantities).
//!
//! Same max-min `θ` objective as [`crate::CommunityScheduler`], but each
//! request of principal `i` consumes a *cost vector* `c_i` (CPU, bandwidth,
//! …) and every server has a capacity vector. Per-server constraints apply
//! per resource kind; a principal's admission rate is limited by whichever
//! kind binds first.

use crate::Plan;
use covenant_agreements::{MultiAccessLevels, PrincipalId, ResourceKind, ResourceVector};
use covenant_lp::{LpStatus, Problem, Relation, SimplexWorkspace, WarmBasis, WarmOutcome, WarmStats};

/// Community scheduler over multiple resource kinds.
#[derive(Debug, Clone)]
pub struct MultiCommunityScheduler {
    /// Per-principal request cost vectors (units of each kind consumed by
    /// one request).
    pub costs: Vec<ResourceVector>,
}

impl MultiCommunityScheduler {
    /// Creates a scheduler with the given per-principal request costs.
    pub fn new(costs: Vec<ResourceVector>) -> Self {
        MultiCommunityScheduler { costs }
    }

    /// Solves the windowed multi-resource LP.
    ///
    /// * `levels` — per-kind access levels **scaled to the window**;
    /// * `queues` — per-principal demands (requests this window).
    pub fn plan(&self, levels: &MultiAccessLevels, queues: &[f64]) -> Plan {
        let n = levels.len();
        let kinds = levels.n_kinds();
        assert_eq!(queues.len(), n);
        assert_eq!(self.costs.len(), n);
        for c in &self.costs {
            assert_eq!(c.len(), kinds, "cost vector must cover every kind");
        }
        let mut prepared = PreparedMulti::new(levels, &self.costs);
        prepared.plan_with(&mut SimplexWorkspace::new(), queues)
    }
}

/// The multi-resource community LP with its constraint matrix built once.
///
/// Same row discipline as [`crate::community::PreparedCommunity`]: rows
/// `3i` / `3i + 1` / `3i + 2` are principal `i`'s queue limit, θ coverage,
/// and mandatory floor, followed by the static per-server per-kind
/// capacity rows. Upper bounds are static except for zero-cost principals,
/// whose only ceiling is their queue length.
#[derive(Debug, Clone)]
pub struct PreparedMulti {
    n: usize,
    base: Problem,
    /// Per-principal mandatory admission rate at the binding kind.
    floors: Vec<f64>,
    /// Principals whose cost vector has no positive entry (queue-bounded).
    zero_cost: Vec<bool>,
    /// Persistent basis for the warm-started revised solver.
    warm: WarmBasis,
    /// Windows the warm engine refused and the dense tableau solved.
    dense_fallbacks: u64,
}

impl PreparedMulti {
    /// Builds the skeleton from window-scaled multi-kind access levels and
    /// per-principal request cost vectors.
    pub fn new(levels: &MultiAccessLevels, costs: &[ResourceVector]) -> Self {
        let n = levels.len();
        let kinds = levels.n_kinds();
        assert_eq!(costs.len(), n);
        for c in costs {
            assert_eq!(c.len(), kinds, "cost vector must cover every kind");
        }
        let xv = |i: usize, k: usize| 1 + i * n + k;
        let mut p = Problem::new(1 + n * n);
        p.set_objective_coeff(0, 1.0);
        if n > 0 {
            p.set_upper_bound(0, 1.0);
        }
        let mut floors = Vec::with_capacity(n);
        let mut zero_cost = Vec::with_capacity(n);
        for (i, cost) in costs.iter().enumerate() {
            let pi = PrincipalId(i);
            let is_zero_cost = cost.0.iter().all(|&c| c <= 0.0);
            // Pairwise ceilings: binding kind per (i, server) pair.
            let mut ubs = vec![0.0f64; n];
            for (k, slot) in ubs.iter_mut().enumerate() {
                let pk = PrincipalId(k);
                let mut ub = f64::INFINITY;
                for r in 0..kinds {
                    let c = cost.0[r];
                    if c > 0.0 {
                        let lv = levels.kind(ResourceKind(r));
                        ub = ub.min((lv.mand_share(pi, pk) + lv.opt_share(pi, pk)) / c);
                    }
                }
                // Zero-cost requests are only bounded by the queue; that
                // bound is installed per window.
                *slot = if ub.is_finite() { ub.max(0.0) } else { 0.0 };
                p.set_upper_bound(xv(i, k), *slot);
            }
            // Only pairs that can ever carry load appear in the rows: a
            // positive static ceiling, or any pair of a zero-cost principal
            // (whose ceiling is its queue, installed per window).
            let row: Vec<(usize, f64)> = (0..n)
                .filter(|&k| is_zero_cost || ubs[k] > 0.0)
                .map(|k| (xv(i, k), 1.0))
                .collect();
            p.add_constraint(row.clone(), Relation::Le, 0.0);
            // θ coverage with the per-window θ coefficient at slot 0.
            let mut cov = Vec::with_capacity(row.len() + 1);
            cov.push((0, 0.0));
            cov.extend_from_slice(&row);
            p.add_constraint(cov, Relation::Ge, 0.0);
            p.add_constraint(row, Relation::Ge, 0.0);
            zero_cost.push(is_zero_cost);
            // Mandatory guarantee at the binding-kind rate.
            let floor = levels.mandatory_rate(pi, cost);
            floors.push(if floor.is_finite() { floor } else { 0.0 });
        }
        // Per-server, per-kind capacity.
        for k in 0..n {
            for r in 0..kinds {
                let lv = levels.kind(ResourceKind(r));
                let row: Vec<(usize, f64)> = (0..n)
                    .map(|i| (xv(i, k), costs[i].0[r]))
                    // Exact-zero sparsity skip: drops structurally absent
                    // coefficients only, not a numeric tolerance test.
                    .filter(|(_, c)| *c != 0.0) // covenant: allow(float-eq)
                    .collect();
                if !row.is_empty() {
                    p.add_constraint(row, Relation::Le, lv.capacities()[k].max(0.0));
                }
            }
        }
        PreparedMulti {
            n,
            base: p,
            floors,
            zero_cost,
            warm: WarmBasis::new(),
            dense_fallbacks: 0,
        }
    }

    /// Number of principals the skeleton was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the skeleton covers no principals.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn update_queues(&mut self, queues: &[f64], floors: bool) {
        let n = self.n;
        for (i, &q) in queues.iter().enumerate().take(n) {
            let ni = q.max(0.0);
            self.base.set_constraint_rhs(3 * i, ni);
            self.base.set_constraint_coeff(3 * i + 1, 0, -ni);
            let floor = if floors { self.floors[i].min(ni).max(0.0) } else { 0.0 };
            self.base.set_constraint_rhs(3 * i + 2, floor);
            if self.zero_cost[i] {
                for k in 0..n {
                    self.base.set_upper_bound_exact(1 + i * n + k, ni);
                }
            }
        }
    }

    fn extract(&self, x: &[f64]) -> Plan {
        let n = self.n;
        let assignments = (0..n)
            .map(|i| (0..n).map(|k| x[1 + i * n + k].max(0.0)).collect())
            .collect();
        Plan { assignments, theta: x.first().copied(), income: None }
    }

    /// Warm solve with dense fallback; `None` means infeasible under both
    /// engines (caller retries without floors).
    fn solve_window(&mut self, ws: &mut SimplexWorkspace) -> Option<Plan> {
        match self.base.solve_warm(&mut self.warm) {
            WarmOutcome::Optimal => Some(self.extract(self.warm.x())),
            WarmOutcome::Infeasible => None,
            WarmOutcome::Unsuitable => {
                self.dense_fallbacks += 1;
                if self.base.solve_in_place(ws) == LpStatus::Optimal {
                    Some(self.extract(ws.x()))
                } else {
                    None
                }
            }
        }
    }

    /// Solves one window, with the same semantics as
    /// [`MultiCommunityScheduler::plan`]. The window goes through the
    /// warm-started revised solver; `ws` only runs when the warm engine
    /// declares the problem unsuitable.
    pub fn plan_with(&mut self, ws: &mut SimplexWorkspace, queues: &[f64]) -> Plan {
        let n = self.n;
        assert_eq!(queues.len(), n);
        if n == 0 || queues.iter().all(|&q| q <= 0.0) {
            return Plan::zero(n, n);
        }
        self.update_queues(queues, true);
        if let Some(plan) = self.solve_window(ws) {
            return plan;
        }
        self.update_queues(queues, false);
        if let Some(plan) = self.solve_window(ws) {
            return plan;
        }
        Plan::zero(n, n)
    }

    /// Lifetime counters of the warm-started solver.
    pub fn warm_stats(&self) -> WarmStats {
        self.warm.stats()
    }

    /// Windows the warm engine refused and the dense tableau solved.
    pub fn dense_fallbacks(&self) -> u64 {
        self.dense_fallbacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covenant_agreements::MultiAgreementGraph;

    /// Server with 100 cpu and 40 bw per window; A and B each [0.5, 0.5].
    fn system() -> (MultiAgreementGraph, PrincipalId, PrincipalId) {
        let mut g = MultiAgreementGraph::new(&["cpu", "bw"]);
        let s = g.add_principal("S", ResourceVector(vec![100.0, 40.0]));
        let a = g.add_principal("A", ResourceVector(vec![0.0, 0.0]));
        let b = g.add_principal("B", ResourceVector(vec![0.0, 0.0]));
        g.add_agreement(s, a, 0.5, 0.5).unwrap();
        g.add_agreement(s, b, 0.5, 0.5).unwrap();
        (g, a, b)
    }

    #[test]
    fn scarce_kind_binds_admission() {
        let (g, a, b) = system();
        let lv = g.access_levels();
        // A's requests are bandwidth-heavy (1 cpu, 2 bw); B's are pure cpu.
        let sched = MultiCommunityScheduler::new(vec![
            ResourceVector(vec![1.0, 0.0]),
            ResourceVector(vec![1.0, 2.0]),
            ResourceVector(vec![1.0, 0.0]),
        ]);
        let plan = sched.plan(&lv, &[0.0, 100.0, 100.0]);
        // A limited by bw: 20/window (50% of 40 / 2); B by cpu: 50/window.
        assert!((plan.admitted(a) - 10.0).abs() < 1e-6, "A {}", plan.admitted(a));
        assert!((plan.admitted(b) - 50.0).abs() < 1e-6, "B {}", plan.admitted(b));
    }

    #[test]
    fn uniform_costs_match_single_resource_behavior() {
        let (g, a, b) = system();
        let lv = g.access_levels();
        let sched = MultiCommunityScheduler::new(vec![
            ResourceVector::uniform(1.0, 2),
            ResourceVector::uniform(1.0, 2),
            ResourceVector::uniform(1.0, 2),
        ]);
        // bw (40) binds for everyone: A and B each mandatorily 20.
        let plan = sched.plan(&lv, &[0.0, 100.0, 100.0]);
        assert!((plan.admitted(a) - 20.0).abs() < 1e-6);
        assert!((plan.admitted(b) - 20.0).abs() < 1e-6);
    }

    #[test]
    fn light_demand_fully_served() {
        let (g, a, b) = system();
        let lv = g.access_levels();
        let sched = MultiCommunityScheduler::new(vec![
            ResourceVector::uniform(1.0, 2),
            ResourceVector::uniform(1.0, 2),
            ResourceVector::uniform(1.0, 2),
        ]);
        let plan = sched.plan(&lv, &[0.0, 5.0, 3.0]);
        assert!((plan.admitted(a) - 5.0).abs() < 1e-6);
        assert!((plan.admitted(b) - 3.0).abs() < 1e-6);
        assert!((plan.theta.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_respected_per_kind() {
        let (g, ..) = system();
        let lv = g.access_levels();
        let costs = vec![
            ResourceVector(vec![1.0, 0.5]),
            ResourceVector(vec![2.0, 1.0]),
            ResourceVector(vec![0.5, 1.5]),
        ];
        let sched = MultiCommunityScheduler::new(costs.clone());
        let plan = sched.plan(&lv, &[0.0, 500.0, 500.0]);
        for r in 0..2 {
            let load: f64 = (0..3)
                .map(|i| plan.assignments[i][0] * costs[i].0[r])
                .sum();
            let cap = lv.kind(ResourceKind(r)).capacities()[0];
            assert!(load <= cap + 1e-6, "kind {r}: {load} > {cap}");
        }
    }

    #[test]
    fn empty_demand_zero_plan() {
        let (g, ..) = system();
        let lv = g.access_levels();
        let sched = MultiCommunityScheduler::new(vec![
            ResourceVector::uniform(1.0, 2),
            ResourceVector::uniform(1.0, 2),
            ResourceVector::uniform(1.0, 2),
        ]);
        let plan = sched.plan(&lv, &[0.0, 0.0, 0.0]);
        assert_eq!(plan.total_admitted(), 0.0);
    }
}
