//! The service-provider "Total Income" linear program (§3.1.2).
//!
//! A provider `s` negotiates a price `p_i` with each customer `i` for every
//! request processed beyond the mandatory service level; admission maximizes
//! income while honouring every agreement:
//!
//! ```text
//! maximize   Σ_i p_i (x_i − MC_i)
//! subject to Σ_i x_i ≤ V_s
//!            MC_i ≤ x_i ≤ MC_i + OC_i   ∀i (floor relaxed to min(MC_i, n_i))
//!            x_i ≤ n_i                  ∀i
//! ```

use crate::Plan;
use covenant_agreements::{AccessLevels, PrincipalId};
use covenant_lp::{LpStatus, Problem, Relation, SimplexWorkspace, WarmBasis, WarmOutcome, WarmStats};

/// Solver for the provider model.
#[derive(Debug, Clone, PartialEq)]
pub struct ProviderScheduler {
    /// Per-principal price `p_i` for each request beyond the mandatory
    /// level. Principals that are not customers (e.g. the provider itself)
    /// should carry price 0.
    pub prices: Vec<f64>,
}

impl ProviderScheduler {
    /// Creates a provider scheduler with the given price vector.
    pub fn new(prices: Vec<f64>) -> Self {
        ProviderScheduler { prices }
    }

    /// Solves the provider LP for one window and splits the admitted totals
    /// across the provider's servers (greedy fill in server-id order —
    /// which server processes a request is immaterial to the income model).
    ///
    /// `levels` must be window-scaled; `queues` are the (global) queue
    /// lengths `n_i`.
    pub fn plan(&self, levels: &AccessLevels, queues: &[f64]) -> Plan {
        let mut prepared = PreparedProvider::new(levels, self.prices.clone());
        prepared.plan_with(&mut SimplexWorkspace::new(), queues)
    }
}

/// The provider LP with its constraint matrix built once and reused.
///
/// Row 0 is the aggregate capacity constraint; row `1 + i` is principal
/// `i`'s mandatory floor (rhs 0 when it has no demand, so the row set —
/// and therefore the tableau shape — never changes between windows). Per
/// window only the floor right-hand sides and the demand-capped upper
/// bounds are rewritten.
#[derive(Debug, Clone)]
pub struct PreparedProvider {
    n: usize,
    base: Problem,
    mandatory: Vec<f64>,
    optional: Vec<f64>,
    caps: Vec<f64>,
    prices: Vec<f64>,
    /// Persistent basis for the warm-started revised solver.
    warm: WarmBasis,
    /// Windows the warm engine refused and the dense tableau solved.
    dense_fallbacks: u64,
}

impl PreparedProvider {
    /// Builds the skeleton from window-scaled access levels and prices.
    pub fn new(levels: &AccessLevels, prices: Vec<f64>) -> Self {
        let n = levels.len();
        assert_eq!(prices.len(), n, "price vector length must match principal count");
        let caps = levels.capacities().to_vec();
        let v_total: f64 = caps.iter().sum();
        let mut p = Problem::new(n);
        p.set_objective(prices.clone());
        let cap_row: Vec<(usize, f64)> = (0..n).map(|i| (i, 1.0)).collect();
        p.add_constraint(cap_row, Relation::Le, v_total);
        let mut mandatory = Vec::with_capacity(n);
        let mut optional = Vec::with_capacity(n);
        for i in 0..n {
            let pi = PrincipalId(i);
            p.add_constraint(vec![(i, 1.0)], Relation::Ge, 0.0);
            p.set_upper_bound(i, 0.0);
            mandatory.push(levels.mandatory(pi));
            optional.push(levels.optional(pi));
        }
        PreparedProvider {
            n,
            base: p,
            mandatory,
            optional,
            caps,
            prices,
            warm: WarmBasis::new(),
            dense_fallbacks: 0,
        }
    }

    /// Number of principals the skeleton was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the skeleton covers no principals.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Solves one window through `ws`, with the same semantics as
    /// [`ProviderScheduler::plan`].
    pub fn plan_with(&mut self, ws: &mut SimplexWorkspace, queues: &[f64]) -> Plan {
        let n = self.n;
        assert_eq!(queues.len(), n, "queue vector length must match principal count");
        if n == 0 || queues.iter().all(|&q| q <= 0.0) {
            return Plan::zero(n, n);
        }
        for (i, &q) in queues.iter().enumerate() {
            let ni = q.max(0.0);
            let (mc, oc) = (self.mandatory[i], self.optional[i]);
            self.base.set_upper_bound_exact(i, (mc + oc).min(ni).max(0.0));
            self.base.set_constraint_rhs(1 + i, mc.min(ni).max(0.0));
        }
        // Warm-started revised solve; dense tableau only on refusal.
        let totals: &[f64] = match self.base.solve_warm(&mut self.warm) {
            WarmOutcome::Optimal => self.warm.x(),
            WarmOutcome::Infeasible => return Plan::zero(n, n),
            WarmOutcome::Unsuitable => {
                self.dense_fallbacks += 1;
                if self.base.solve_in_place(ws) != LpStatus::Optimal {
                    return Plan::zero(n, n);
                }
                ws.x()
            }
        };

        // Greedy split across servers, never exceeding any single server.
        let mut remaining: Vec<f64> = self.caps.clone();
        let mut assignments = vec![vec![0.0; n]; n];
        for i in 0..n {
            let mut need = totals[i];
            for k in 0..n {
                if need <= 0.0 {
                    break;
                }
                let take = need.min(remaining[k]);
                assignments[i][k] = take;
                remaining[k] -= take;
                need -= take;
            }
        }

        let income: f64 = (0..n)
            .map(|i| self.prices[i] * (totals[i] - self.mandatory[i].min(queues[i])))
            .sum();
        Plan { assignments, theta: None, income: Some(income) }
    }

    /// Lifetime counters of the warm-started solver.
    pub fn warm_stats(&self) -> WarmStats {
        self.warm.stats()
    }

    /// Windows the warm engine refused and the dense tableau solved.
    pub fn dense_fallbacks(&self) -> u64 {
        self.dense_fallbacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covenant_agreements::AgreementGraph;

    /// Figure 10 setup: provider with two 320-req/s servers, customers
    /// A [0.8, 1] (pays more) and B [0.2, 1].
    fn figure10() -> (AgreementGraph, PrincipalId, PrincipalId, PrincipalId) {
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 640.0);
        let a = g.add_principal("A", 0.0);
        let b = g.add_principal("B", 0.0);
        g.add_agreement(s, a, 0.8, 1.0).unwrap();
        g.add_agreement(s, b, 0.2, 1.0).unwrap();
        (g, s, a, b)
    }

    #[test]
    fn phase1_b_pinned_to_mandatory() {
        // Both customers flood; A pays more → B held at its mandatory 128,
        // A gets the remaining 512.
        let (g, _s, a, b) = figure10();
        let lv = g.access_levels();
        let sched = ProviderScheduler::new(vec![0.0, 2.0, 1.0]);
        let plan = sched.plan(&lv, &[0.0, 800.0, 400.0]);
        assert!((plan.admitted(b) - 128.0).abs() < 1e-6, "B {}", plan.admitted(b));
        assert!((plan.admitted(a) - 512.0).abs() < 1e-6, "A {}", plan.admitted(a));
    }

    #[test]
    fn idle_expensive_customer_frees_capacity() {
        // A idle → B can burst to its upper bound (the full pool).
        let (g, _s, _a, b) = figure10();
        let lv = g.access_levels();
        let sched = ProviderScheduler::new(vec![0.0, 2.0, 1.0]);
        let plan = sched.plan(&lv, &[0.0, 0.0, 400.0]);
        assert!((plan.admitted(b) - 400.0).abs() < 1e-6);
    }

    #[test]
    fn partial_a_load_shares_rest() {
        // Figure 10 phase 3: A at 400 (one client machine), B flooding.
        // A admitted fully (within its [512, 640] envelope → 400 ≤ 512 so
        // A's floor is min(512, 400) = 400), B takes the remaining 240.
        let (g, _s, a, b) = figure10();
        let lv = g.access_levels();
        let sched = ProviderScheduler::new(vec![0.0, 2.0, 1.0]);
        let plan = sched.plan(&lv, &[0.0, 400.0, 400.0]);
        assert!((plan.admitted(a) - 400.0).abs() < 1e-6);
        assert!((plan.admitted(b) - 240.0).abs() < 1e-6);
    }

    #[test]
    fn server_split_respects_individual_capacities() {
        // Two physical servers of 320 each (expressed as two provider
        // principals sharing everything with customers is overkill here;
        // instead check the greedy split caps at each server's budget).
        let (g, ..) = figure10();
        let lv = g.access_levels();
        let sched = ProviderScheduler::new(vec![0.0, 2.0, 1.0]);
        let plan = sched.plan(&lv, &[0.0, 800.0, 400.0]);
        for k in 0..3 {
            assert!(plan.server_load(k) <= lv.capacities()[k] + 1e-6);
        }
        assert!((plan.total_admitted() - 640.0).abs() < 1e-6);
    }

    #[test]
    fn income_reported() {
        let (g, ..) = figure10();
        let lv = g.access_levels();
        let sched = ProviderScheduler::new(vec![0.0, 2.0, 1.0]);
        let plan = sched.plan(&lv, &[0.0, 800.0, 400.0]);
        // A beyond mandatory: 0 (512 = MC_A); B beyond mandatory: 0.
        // Income = 2·(512−512) + 1·(128−128) = 0 under total overload.
        assert!((plan.income.unwrap() - 0.0).abs() < 1e-6);
        // With A idle, B bursts: income = 1·(400 − 0) since B's effective
        // floor is min(128, 400) = 128 → income = 400 − 128 = 272.
        let plan = sched.plan(&lv, &[0.0, 0.0, 400.0]);
        assert!((plan.income.unwrap() - 272.0).abs() < 1e-6);
    }

    #[test]
    fn empty_queues_zero_plan() {
        let (g, ..) = figure10();
        let lv = g.access_levels();
        let sched = ProviderScheduler::new(vec![0.0, 2.0, 1.0]);
        let plan = sched.plan(&lv, &[0.0, 0.0, 0.0]);
        assert_eq!(plan.total_admitted(), 0.0);
    }

    #[test]
    fn cheap_customer_still_gets_mandatory_floor() {
        // Even with price 0, B's mandatory floor holds under overload.
        let (g, _s, a, b) = figure10();
        let lv = g.access_levels();
        let sched = ProviderScheduler::new(vec![0.0, 5.0, 0.0]);
        let plan = sched.plan(&lv, &[0.0, 10_000.0, 10_000.0]);
        assert!(plan.admitted(b) >= 128.0 - 1e-6);
        assert!(plan.admitted(a) >= 512.0 - 1e-6);
    }
}
