//! Property tests for the window schedulers and queuing structures.

// Plans are (principal × server) matrices; paired i/k index loops mirror the
// paper's notation better than nested iterator chains.
#![allow(clippy::needless_range_loop)]

use covenant_agreements::{AgreementGraph, PrincipalId};
use covenant_sched::{
    Admission, CommunityScheduler, CreditGate, Plan, PrincipalQueues, ProviderScheduler, Request,
};
use proptest::prelude::*;

fn graph_and_queues() -> impl Strategy<Value = (AgreementGraph, Vec<f64>)> {
    (2usize..6).prop_flat_map(|n| {
        let caps = proptest::collection::vec(0.0..500.0f64, n);
        let edges = proptest::collection::vec((0.0..0.3f64, 0.0..0.6f64, any::<bool>()), n * n);
        let queues = proptest::collection::vec(0.0..600.0f64, n);
        (caps, edges, queues).prop_map(move |(caps, edges, queues)| {
            let mut g = AgreementGraph::new();
            let ids: Vec<_> = caps
                .iter()
                .enumerate()
                .map(|(i, &c)| g.add_principal(format!("P{i}"), c))
                .collect();
            let mut budget = vec![1.0f64; n];
            for (idx, (lb_raw, width, on)) in edges.into_iter().enumerate() {
                let (i, j) = (idx / n, idx % n);
                if !on || i == j {
                    continue;
                }
                let lb = lb_raw.min(budget[i] - 0.02).max(0.0);
                let ub = (lb + width).min(1.0);
                if g.add_agreement(ids[i], ids[j], lb, ub).is_ok() {
                    budget[i] -= lb;
                }
            }
            (g, queues)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Community plans satisfy every safety property on arbitrary systems.
    #[test]
    fn community_plan_invariants((g, queues) in graph_and_queues()) {
        let lv = g.access_levels();
        let plan = CommunityScheduler::new().plan(&lv, &queues);
        let n = g.len();
        for k in 0..n {
            prop_assert!(plan.server_load(k) <= lv.capacities()[k] + 1e-6);
        }
        for i in 0..n {
            let p = PrincipalId(i);
            prop_assert!(plan.admitted(p) <= queues[i] + 1e-6);
            prop_assert!(plan.admitted(p) >= lv.mandatory(p).min(queues[i]) - 1e-6,
                "P{i} mandatory violated: {} < {}", plan.admitted(p), lv.mandatory(p).min(queues[i]));
            for k in 0..n {
                let ub = lv.mand_share(p, PrincipalId(k)) + lv.opt_share(p, PrincipalId(k));
                prop_assert!(plan.assignments[i][k] <= ub + 1e-6);
            }
        }
        if let Some(theta) = plan.theta {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&theta));
        }
    }

    /// Provider plans satisfy the same safety envelope.
    #[test]
    fn provider_plan_invariants((g, queues) in graph_and_queues(), seed in 0u64..1000) {
        let lv = g.access_levels();
        let n = g.len();
        let prices: Vec<f64> = (0..n).map(|i| ((seed as usize + i) % 7) as f64).collect();
        let plan = ProviderScheduler::new(prices).plan(&lv, &queues);
        let total: f64 = lv.capacities().iter().sum();
        prop_assert!(plan.total_admitted() <= total + 1e-6);
        for i in 0..n {
            let p = PrincipalId(i);
            prop_assert!(plan.admitted(p) <= queues[i] + 1e-6);
            prop_assert!(plan.admitted(p) <= lv.mandatory(p) + lv.optional(p) + 1e-6);
            prop_assert!(plan.admitted(p) >= lv.mandatory(p).min(queues[i]) - 1e-6);
        }
        for k in 0..n {
            prop_assert!(plan.server_load(k) <= lv.capacities()[k] + 1e-6);
        }
    }

    /// The distributed scaling rule conserves the global plan: local plans
    /// over any partition of the queues sum back to the global plan.
    #[test]
    fn local_scaling_partitions_global_plan(
        (g, queues) in graph_and_queues(),
        splits in proptest::collection::vec(0.0..1.0f64, 2..6),
    ) {
        let lv = g.access_levels();
        let plan = CommunityScheduler::new().plan(&lv, &queues);
        let n = g.len();
        // Partition each queue across the redirectors by normalized splits.
        let total_split: f64 = splits.iter().sum::<f64>().max(1e-9);
        let mut recon = vec![vec![0.0; n]; n];
        for s in &splits {
            let frac = s / total_split;
            let local: Vec<f64> = queues.iter().map(|q| q * frac).collect();
            let lp = plan.scale_for_local_queue(&local, &queues);
            for i in 0..n {
                for k in 0..n {
                    recon[i][k] += lp.assignments[i][k];
                }
            }
        }
        for i in 0..n {
            for k in 0..n {
                prop_assert!((recon[i][k] - plan.assignments[i][k]).abs() < 1e-6,
                    "pair ({i},{k}): {} vs {}", recon[i][k], plan.assignments[i][k]);
            }
        }
    }

    /// The credit gate never admits more than quota + burst headroom, for
    /// any admission pattern.
    #[test]
    fn credit_gate_conservation(
        quotas in proptest::collection::vec(0.0..20.0f64, 1..5),
        pattern in proptest::collection::vec(0usize..5, 0..200),
    ) {
        let windows = 8usize;
        let n = quotas.len();
        let mut gate = CreditGate::new(n, n);
        let plan = Plan {
            assignments: quotas.iter().map(|&q| {
                let mut row = vec![0.0; n];
                row[0] = q;
                row
            }).collect(),
            theta: None,
            income: None,
        };
        let mut admitted = vec![0u64; n];
        let mut id = 0;
        for _ in 0..windows {
            gate.roll_window(&plan);
            for &p in &pattern {
                if p < n {
                    if matches!(gate.admit(&Request::unit(id, PrincipalId(p), 0.0)), Admission::Admit { .. }) {
                        admitted[p] += 1;
                    }
                    id += 1;
                }
            }
        }
        for i in 0..n {
            // Total admitted ≤ windows × quota + burst headroom (2 windows).
            let cap = (windows as f64 + 2.0) * quotas[i];
            prop_assert!(admitted[i] as f64 <= cap + 1e-6,
                "principal {i}: {} > {}", admitted[i], cap);
        }
    }

    /// Explicit queues release in FIFO order, never exceed the budget, and
    /// never lose requests.
    #[test]
    fn explicit_queue_conservation(
        pushes in proptest::collection::vec(0usize..3, 0..120),
        budget in 0.0..30.0f64,
    ) {
        let n = 3;
        let mut q = PrincipalQueues::new(n);
        for (id, &p) in pushes.iter().enumerate() {
            q.push(Request::unit(id as u64, PrincipalId(p), 0.0));
        }
        let before = q.total_len();
        let plan = Plan {
            assignments: (0..n).map(|_| vec![budget / n as f64; n]).collect(),
            theta: None,
            income: None,
        };
        let released = q.release(&plan);
        prop_assert_eq!(released.len() + q.total_len(), before);
        // Per principal: released ≤ budget (unit costs).
        for i in 0..n {
            let cnt = released.iter().filter(|d| d.request.principal.0 == i).count();
            prop_assert!(cnt as f64 <= budget + 1e-9);
            // FIFO within principal: ids increasing.
            let ids: Vec<u64> = released
                .iter()
                .filter(|d| d.request.principal.0 == i)
                .map(|d| d.request.id.0)
                .collect();
            prop_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
