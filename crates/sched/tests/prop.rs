//! Property tests for the window schedulers and queuing structures.

// Plans are (principal × server) matrices; paired i/k index loops mirror the
// paper's notation better than nested iterator chains.
#![allow(clippy::needless_range_loop)]

use covenant_agreements::{AgreementGraph, PrincipalId};
use covenant_lp::{LpOutcome, SimplexWorkspace};
use covenant_sched::{
    CommunityScheduler, PreparedCommunity, ProviderScheduler, SchedulerConfig, WindowScheduler,
};
use proptest::prelude::*;
use proptest::TestCaseError;

fn graph_and_queues() -> impl Strategy<Value = (AgreementGraph, Vec<f64>)> {
    (2usize..6).prop_flat_map(|n| {
        let caps = proptest::collection::vec(0.0..500.0f64, n);
        let edges = proptest::collection::vec((0.0..0.3f64, 0.0..0.6f64, any::<bool>()), n * n);
        let queues = proptest::collection::vec(0.0..600.0f64, n);
        (caps, edges, queues).prop_map(move |(caps, edges, queues)| {
            let mut g = AgreementGraph::new();
            let ids: Vec<_> = caps
                .iter()
                .enumerate()
                .map(|(i, &c)| g.add_principal(format!("P{i}"), c))
                .collect();
            let mut budget = vec![1.0f64; n];
            for (idx, (lb_raw, width, on)) in edges.into_iter().enumerate() {
                let (i, j) = (idx / n, idx % n);
                if !on || i == j {
                    continue;
                }
                let lb = lb_raw.min(budget[i] - 0.02).max(0.0);
                let ub = (lb + width).min(1.0);
                if g.add_agreement(ids[i], ids[j], lb, ub).is_ok() {
                    budget[i] -= lb;
                }
            }
            (g, queues)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Community plans satisfy every safety property on arbitrary systems.
    #[test]
    fn community_plan_invariants((g, queues) in graph_and_queues()) {
        let lv = g.access_levels();
        let plan = CommunityScheduler::new().plan(&lv, &queues);
        let n = g.len();
        for k in 0..n {
            prop_assert!(plan.server_load(k) <= lv.capacities()[k] + 1e-6);
        }
        for i in 0..n {
            let p = PrincipalId(i);
            prop_assert!(plan.admitted(p) <= queues[i] + 1e-6);
            prop_assert!(plan.admitted(p) >= lv.mandatory(p).min(queues[i]) - 1e-6,
                "P{i} mandatory violated: {} < {}", plan.admitted(p), lv.mandatory(p).min(queues[i]));
            for k in 0..n {
                let ub = lv.mand_share(p, PrincipalId(k)) + lv.opt_share(p, PrincipalId(k));
                prop_assert!(plan.assignments[i][k] <= ub + 1e-6);
            }
        }
        if let Some(theta) = plan.theta {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&theta));
        }
    }

    /// Provider plans satisfy the same safety envelope.
    #[test]
    fn provider_plan_invariants((g, queues) in graph_and_queues(), seed in 0u64..1000) {
        let lv = g.access_levels();
        let n = g.len();
        let prices: Vec<f64> = (0..n).map(|i| ((seed as usize + i) % 7) as f64).collect();
        let plan = ProviderScheduler::new(prices).plan(&lv, &queues);
        let total: f64 = lv.capacities().iter().sum();
        prop_assert!(plan.total_admitted() <= total + 1e-6);
        for i in 0..n {
            let p = PrincipalId(i);
            prop_assert!(plan.admitted(p) <= queues[i] + 1e-6);
            prop_assert!(plan.admitted(p) <= lv.mandatory(p) + lv.optional(p) + 1e-6);
            prop_assert!(plan.admitted(p) >= lv.mandatory(p).min(queues[i]) - 1e-6);
        }
        for k in 0..n {
            prop_assert!(plan.server_load(k) <= lv.capacities()[k] + 1e-6);
        }
    }

    /// The distributed scaling rule conserves the global plan: local plans
    /// over any partition of the queues sum back to the global plan.
    #[test]
    fn local_scaling_partitions_global_plan(
        (g, queues) in graph_and_queues(),
        splits in proptest::collection::vec(0.0..1.0f64, 2..6),
    ) {
        let lv = g.access_levels();
        let plan = CommunityScheduler::new().plan(&lv, &queues);
        let n = g.len();
        // Partition each queue across the redirectors by normalized splits.
        let total_split: f64 = splits.iter().sum::<f64>().max(1e-9);
        let mut recon = vec![vec![0.0; n]; n];
        for s in &splits {
            let frac = s / total_split;
            let local: Vec<f64> = queues.iter().map(|q| q * frac).collect();
            let lp = plan.scale_for_local_queue(&local, &queues);
            for i in 0..n {
                for k in 0..n {
                    recon[i][k] += lp.assignments[i][k];
                }
            }
        }
        for i in 0..n {
            for k in 0..n {
                prop_assert!((recon[i][k] - plan.assignments[i][k]).abs() < 1e-6,
                    "pair ({i},{k}): {} vs {}", recon[i][k], plan.assignments[i][k]);
            }
        }
    }

    /// Window regime for the warm-started solver: one prepared skeleton, a
    /// walk of perturbed queue vectors, one basis persisted across windows.
    /// Every window's θ must equal the reference oracle's optimum on
    /// exactly the problem the fast path solved, the plan must be feasible
    /// for it, and the dense fallback must never fire.
    #[test]
    fn warm_window_walk_matches_reference(
        (g, queues) in graph_and_queues(),
        walk in proptest::collection::vec(proptest::collection::vec(-40.0..40.0f64, 6), 1..6),
    ) {
        let lv = g.access_levels();
        let n = g.len();
        let mut prepared = PreparedCommunity::new(&lv, None);
        let mut ws = SimplexWorkspace::new();
        let mut q = queues.clone();
        for step in &walk {
            for i in 0..n {
                q[i] = (q[i] + step[i % step.len()]).max(0.0);
            }
            if q.iter().all(|&v| v <= 0.0) {
                continue; // plan_with short-circuits to the zero plan
            }
            let plan = prepared.plan_with(&mut ws, &q);
            // When floors are infeasible plan_with retries without them;
            // safety invariants are covered by community_plan_invariants.
            if let LpOutcome::Optimal(s) = prepared.window_problem(&q).solve_reference() {
                prop_assert!(
                    (plan.theta.unwrap_or(0.0) - s.objective).abs() < 1e-6,
                    "queues {:?}: warm θ {:?} vs reference {}",
                    q, plan.theta, s.objective
                );
                // The plan must be feasible for the window problem it
                // claims to solve (θ re-attached as variable 0).
                let mut x = vec![0.0; 1 + n * n];
                x[0] = plan.theta.unwrap_or(0.0);
                for i in 0..n {
                    for k in 0..n {
                        x[1 + i * n + k] = plan.assignments[i][k];
                    }
                }
                prop_assert!(
                    prepared.window_problem(&q).is_feasible(&x, 1e-5),
                    "warm plan infeasible for its own window"
                );
            }
        }
        prop_assert_eq!(prepared.dense_fallbacks(), 0, "dense fallback fired");
    }

    /// A level change mid-walk (update_levels) rebuilds the skeleton; the
    /// scheduler must keep matching the oracle on the new levels and the
    /// replacement engine must cold-start rather than reuse a stale basis.
    #[test]
    fn warm_survives_level_change_mid_walk(
        (g, queues) in graph_and_queues(),
        cap_scale in 1.25..3.0f64,
    ) {
        let n = g.len();
        let lv1 = g.access_levels();
        let mut sched = WindowScheduler::new(&lv1, SchedulerConfig::community_default());
        let mut q = queues.clone();
        q[0] = q[0].max(1.0); // never the all-idle short-circuit
        let check = |sched: &mut WindowScheduler, q: &[f64]| -> Result<(), TestCaseError> {
            let plan = sched.plan_global(q);
            let mut oracle = PreparedCommunity::new(sched.window_levels(), None);
            if let LpOutcome::Optimal(s) = oracle.window_problem(q).solve_reference() {
                prop_assert!(
                    (plan.theta.unwrap_or(0.0) - s.objective).abs() < 1e-6,
                    "θ {:?} vs reference {}", plan.theta, s.objective
                );
            }
            Ok(())
        };
        check(&mut sched, &q)?;
        q[0] += 5.0;
        check(&mut sched, &q)?;
        let cold_before = sched.warm_stats().cold_starts;
        // Scale every capacity: same principals and share fractions, new
        // levels. `lv1` is in rates (unscaled), like the graph capacities.
        let mut g2 = AgreementGraph::new();
        let ids: Vec<_> = (0..n)
            .map(|i| g2.add_principal(format!("P{i}"), lv1.capacities()[i] * cap_scale))
            .collect();
        for j in 0..n {
            let cap_j = lv1.capacities()[j];
            if cap_j <= 0.0 {
                continue;
            }
            for i in 0..n {
                if i == j {
                    continue;
                }
                // i's entitlement on server j, as fractions of j's capacity.
                let m = lv1.mand_share(PrincipalId(i), PrincipalId(j));
                let o = lv1.opt_share(PrincipalId(i), PrincipalId(j));
                if m + o > 0.0 {
                    let lb = (m / cap_j).min(1.0);
                    let ub = ((m + o) / cap_j).min(1.0);
                    let _ = g2.add_agreement(ids[j], ids[i], lb, ub);
                }
            }
        }
        sched.update_levels(&g2.access_levels());
        check(&mut sched, &q)?;
        q[0] += 5.0;
        check(&mut sched, &q)?;
        prop_assert!(
            sched.warm_stats().cold_starts > cold_before,
            "rebuilt engine must cold-start: {:?}", sched.warm_stats()
        );
        prop_assert_eq!(sched.dense_fallbacks(), 0);
    }

}
