//! Property tests for the window schedulers and queuing structures.

// Plans are (principal × server) matrices; paired i/k index loops mirror the
// paper's notation better than nested iterator chains.
#![allow(clippy::needless_range_loop)]

use covenant_agreements::{AgreementGraph, PrincipalId};
use covenant_sched::{CommunityScheduler, ProviderScheduler};
use proptest::prelude::*;

fn graph_and_queues() -> impl Strategy<Value = (AgreementGraph, Vec<f64>)> {
    (2usize..6).prop_flat_map(|n| {
        let caps = proptest::collection::vec(0.0..500.0f64, n);
        let edges = proptest::collection::vec((0.0..0.3f64, 0.0..0.6f64, any::<bool>()), n * n);
        let queues = proptest::collection::vec(0.0..600.0f64, n);
        (caps, edges, queues).prop_map(move |(caps, edges, queues)| {
            let mut g = AgreementGraph::new();
            let ids: Vec<_> = caps
                .iter()
                .enumerate()
                .map(|(i, &c)| g.add_principal(format!("P{i}"), c))
                .collect();
            let mut budget = vec![1.0f64; n];
            for (idx, (lb_raw, width, on)) in edges.into_iter().enumerate() {
                let (i, j) = (idx / n, idx % n);
                if !on || i == j {
                    continue;
                }
                let lb = lb_raw.min(budget[i] - 0.02).max(0.0);
                let ub = (lb + width).min(1.0);
                if g.add_agreement(ids[i], ids[j], lb, ub).is_ok() {
                    budget[i] -= lb;
                }
            }
            (g, queues)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Community plans satisfy every safety property on arbitrary systems.
    #[test]
    fn community_plan_invariants((g, queues) in graph_and_queues()) {
        let lv = g.access_levels();
        let plan = CommunityScheduler::new().plan(&lv, &queues);
        let n = g.len();
        for k in 0..n {
            prop_assert!(plan.server_load(k) <= lv.capacities()[k] + 1e-6);
        }
        for i in 0..n {
            let p = PrincipalId(i);
            prop_assert!(plan.admitted(p) <= queues[i] + 1e-6);
            prop_assert!(plan.admitted(p) >= lv.mandatory(p).min(queues[i]) - 1e-6,
                "P{i} mandatory violated: {} < {}", plan.admitted(p), lv.mandatory(p).min(queues[i]));
            for k in 0..n {
                let ub = lv.mand_share(p, PrincipalId(k)) + lv.opt_share(p, PrincipalId(k));
                prop_assert!(plan.assignments[i][k] <= ub + 1e-6);
            }
        }
        if let Some(theta) = plan.theta {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&theta));
        }
    }

    /// Provider plans satisfy the same safety envelope.
    #[test]
    fn provider_plan_invariants((g, queues) in graph_and_queues(), seed in 0u64..1000) {
        let lv = g.access_levels();
        let n = g.len();
        let prices: Vec<f64> = (0..n).map(|i| ((seed as usize + i) % 7) as f64).collect();
        let plan = ProviderScheduler::new(prices).plan(&lv, &queues);
        let total: f64 = lv.capacities().iter().sum();
        prop_assert!(plan.total_admitted() <= total + 1e-6);
        for i in 0..n {
            let p = PrincipalId(i);
            prop_assert!(plan.admitted(p) <= queues[i] + 1e-6);
            prop_assert!(plan.admitted(p) <= lv.mandatory(p) + lv.optional(p) + 1e-6);
            prop_assert!(plan.admitted(p) >= lv.mandatory(p).min(queues[i]) - 1e-6);
        }
        for k in 0..n {
            prop_assert!(plan.server_load(k) <= lv.capacities()[k] + 1e-6);
        }
    }

    /// The distributed scaling rule conserves the global plan: local plans
    /// over any partition of the queues sum back to the global plan.
    #[test]
    fn local_scaling_partitions_global_plan(
        (g, queues) in graph_and_queues(),
        splits in proptest::collection::vec(0.0..1.0f64, 2..6),
    ) {
        let lv = g.access_levels();
        let plan = CommunityScheduler::new().plan(&lv, &queues);
        let n = g.len();
        // Partition each queue across the redirectors by normalized splits.
        let total_split: f64 = splits.iter().sum::<f64>().max(1e-9);
        let mut recon = vec![vec![0.0; n]; n];
        for s in &splits {
            let frac = s / total_split;
            let local: Vec<f64> = queues.iter().map(|q| q * frac).collect();
            let lp = plan.scale_for_local_queue(&local, &queues);
            for i in 0..n {
                for k in 0..n {
                    recon[i][k] += lp.assignments[i][k];
                }
            }
        }
        for i in 0..n {
            for k in 0..n {
                prop_assert!((recon[i][k] - plan.assignments[i][k]).abs() < 1e-6,
                    "pair ({i},{k}): {} vs {}", recon[i][k], plan.assignments[i][k]);
            }
        }
    }

}
