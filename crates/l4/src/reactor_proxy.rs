//! Thread-per-core L4 proxy on the readiness reactor.
//!
//! [`ShardedL4`] replaces the legacy accept-thread + splice-thread-pair
//! data plane with N reactor shards. Each shard owns `SO_REUSEPORT`
//! listeners for every fronted service, an epoll instance, a lock-free
//! [`ShardCore`] for admission, a private affinity map, and a private
//! parking lot — one thread carries thousands of concurrent relays as
//! nonblocking state machines instead of two blocking threads each.
//!
//! Semantics match the legacy [`crate::L4Redirector`]: admission is
//! charged at accept time to the service's principal, deferred
//! connections park FIFO up to `park_limit` (shed with RST beyond it),
//! and parked connections reinject through the shared
//! [`reinject_fifo`] loop right after each window roll — here inside the
//! shard's own event loop rather than a daemon thread.

use covenant_agreements::{AccessLevels, PrincipalId};
use covenant_coord::{Coordinator, ShardCore};
use covenant_enforce::{reinject_fifo, ShardSnapshot, ShardStats};
use covenant_reactor::{
    connect_nonblocking, reuseport_listener, set_rst_on_close, Epoll, Event, Interest, Io,
    SendBuf, Slab, WakeFd, WakeHandle, WindowTicker,
};
use covenant_sched::SchedulerConfig;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{IpAddr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::L4Config;

/// Epoll token of the shard's wake eventfd.
const TOKEN_WAKE: u64 = 0;
/// Service listener tokens start here (one per fronted service).
const TOKEN_SVC_BASE: u64 = 1;

/// Relay buffer high-watermark per direction: past this the shard stops
/// reading from the faster side until the slower side drains.
const HIGH_WATER: usize = 64 * 1024;
/// Per-shard cap on live relays; accepts beyond it are shed with RST.
const MAX_RELAYS: usize = 2048;

/// One admitted connection being relayed: a client/backend socket pair
/// and the pending bytes in each direction.
struct Relay {
    client: TcpStream,
    backend: TcpStream,
    /// Bytes read from the client, pending toward the backend.
    c2b: SendBuf,
    /// Bytes read from the backend, pending toward the client.
    b2c: SendBuf,
    /// Nonblocking connect still in flight (completion = writability).
    connecting: bool,
    client_eof: bool,
    backend_eof: bool,
    /// `shutdown(Write)` already propagated to that side.
    client_shut: bool,
    backend_shut: bool,
    client_interest: Interest,
    backend_interest: Interest,
}

/// Pump outcome for one relay.
enum Pump {
    Alive,
    /// Both directions finished cleanly.
    Done,
    /// I/O error or failed connect: tear down silently (client sees RST
    /// or EOF, same as the legacy splice path).
    Dead,
}

/// Moves whatever bytes are movable through one relay. Pure function of
/// the pair — no shard state, so it borrows only the slab entry.
fn pump(relay: &mut Relay) -> Pump {
    // Client → backend: read while there is room, flush once connected.
    while !relay.client_eof {
        match relay.c2b.read_from(&mut relay.client, HIGH_WATER) {
            Ok(Io::Progress(_)) => {}
            Ok(Io::WouldBlock) => break,
            Ok(Io::Eof) => relay.client_eof = true,
            Err(_) => return Pump::Dead,
        }
    }
    if !relay.connecting {
        if !relay.c2b.is_empty() && relay.c2b.flush_into(&mut relay.backend).is_err() {
            return Pump::Dead;
        }
        if relay.client_eof && relay.c2b.is_empty() && !relay.backend_shut {
            let _ = relay.backend.shutdown(Shutdown::Write);
            relay.backend_shut = true;
        }
        // Backend → client, mirrored.
        while !relay.backend_eof {
            match relay.b2c.read_from(&mut relay.backend, HIGH_WATER) {
                Ok(Io::Progress(_)) => {}
                Ok(Io::WouldBlock) => break,
                Ok(Io::Eof) => relay.backend_eof = true,
                Err(_) => return Pump::Dead,
            }
        }
        if !relay.b2c.is_empty() && relay.b2c.flush_into(&mut relay.client).is_err() {
            return Pump::Dead;
        }
        if relay.backend_eof && relay.b2c.is_empty() && !relay.client_shut {
            let _ = relay.client.shutdown(Shutdown::Write);
            relay.client_shut = true;
        }
    }
    if relay.client_eof && relay.backend_eof && relay.c2b.is_empty() && relay.b2c.is_empty() {
        Pump::Done
    } else {
        Pump::Alive
    }
}

/// Everything one L4 shard thread owns exclusively.
struct ShardRuntime {
    epoll: Epoll,
    wake: WakeFd,
    /// One reuseport listener per fronted service, with its principal.
    services: Vec<(TcpListener, PrincipalId)>,
    conns: Slab<Relay>,
    core: ShardCore,
    stats: Arc<ShardStats>,
    stop: Arc<AtomicBool>,
    backends: HashMap<usize, SocketAddr>,
    /// Client-IP → server affinity, shard-private (a client that hops
    /// shards may re-pin; allocations still bound it).
    affinity: HashMap<IpAddr, usize>,
    /// Parked client connections per principal, FIFO, shard-private.
    parked: Vec<VecDeque<(TcpStream, SocketAddr)>>,
    park_limit: usize,
    refused: Arc<AtomicU64>,
    spliced: Arc<AtomicU64>,
    /// First connection token: `TOKEN_SVC_BASE + services.len()`; relay
    /// `key` side `s` maps to `conn_base + 2·key + s`.
    conn_base: u64,
}

impl ShardRuntime {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut ticker = WindowTicker::new(self.core.window_secs());
        loop {
            let timeout = ticker.poll_timeout_ms(self.core.coordinator().now());
            if self.epoll.wait(&mut events, timeout).is_err() {
                break;
            }
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            let now = self.core.coordinator().now();
            let mut verdicts = 0u64;
            let ticked = match ticker.due(now) {
                Some(boundary) => {
                    // Publish the parked backlog with the roll, then give
                    // fresh credit to the FIFO head — the legacy daemon's
                    // backlog/after_roll hooks, inlined.
                    let counts: Vec<f64> =
                        self.parked.iter().map(|q| q.len() as f64).collect();
                    self.core.roll_window_at(Some(&counts), boundary);
                    self.drain_parked(boundary, &mut verdicts);
                    true
                }
                None => false,
            };
            for i in 0..events.len() {
                let Some(ev) = events.get(i).copied() else {
                    break;
                };
                match ev.token {
                    TOKEN_WAKE => self.wake.drain(),
                    t if t < self.conn_base => {
                        let svc = (t - TOKEN_SVC_BASE) as usize;
                        self.accept_ready(svc, now, &mut verdicts);
                    }
                    t => {
                        let rel = t - self.conn_base;
                        self.relay_ready((rel / 2) as usize, rel % 2 == 1, ev);
                    }
                }
            }
            if !events.is_empty() || ticked {
                self.stats.record_wake(verdicts);
                self.stats.store_counters(&self.core.counters());
            }
        }
    }

    /// Drains the accept backlog of service `svc`, charging each
    /// connection to the service's principal at `now`.
    fn accept_ready(&mut self, svc: usize, now: f64, verdicts: &mut u64) {
        loop {
            let Some((listener, principal)) = self.services.get(svc) else { return };
            let principal = *principal;
            match listener.accept() {
                Ok((stream, peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let preferred = self.affinity.get(&peer.ip()).copied();
                    *verdicts += 1;
                    match self.core.try_admit_at(principal, preferred, now) {
                        Some(server) => self.begin_relay(stream, peer, server),
                        None => self.park(principal, stream, peer),
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break, // WouldBlock: backlog drained.
            }
        }
    }

    /// Parks a deferred connection FIFO, shedding with RST past the
    /// per-principal limit (the kernel-queue-bound analogue).
    fn park(&mut self, principal: PrincipalId, stream: TcpStream, peer: SocketAddr) {
        match self.parked.get_mut(principal.0) {
            Some(q) if q.len() < self.park_limit => q.push_back((stream, peer)),
            _ => {
                let _ = set_rst_on_close(&stream);
                self.refused.fetch_add(1, Ordering::Relaxed);
                self.stats.record_shed();
            }
        }
    }

    /// The shared FIFO reinjection loop, fed by this shard's private
    /// parking lot: per principal, drain while the fresh window's credit
    /// readmits, stop at the first defer.
    fn drain_parked(&mut self, now: f64, verdicts: &mut u64) {
        let n = self.parked.len();
        let mut admitted: Vec<(TcpStream, SocketAddr, usize)> = Vec::new();
        let core = &mut self.core;
        let affinity = &self.affinity;
        let counted = &mut *verdicts;
        reinject_fifo(
            n,
            &mut self.parked,
            |i, (_, peer): &(TcpStream, SocketAddr)| {
                let preferred = affinity.get(&peer.ip()).copied();
                *counted += 1;
                core.readmit_at(PrincipalId(i), preferred, now)
            },
            |(stream, peer), server| admitted.push((stream, peer, server)),
        );
        for (stream, peer, server) in admitted {
            self.begin_relay(stream, peer, server);
        }
    }

    /// Starts the nonblocking backend connect and registers the pair.
    fn begin_relay(&mut self, client: TcpStream, peer: SocketAddr, server: usize) {
        let Some(&backend_addr) = self.backends.get(&server) else {
            return; // no such backend: drop the connection
        };
        if self.conns.len() >= MAX_RELAYS {
            let _ = set_rst_on_close(&client);
            self.refused.fetch_add(1, Ordering::Relaxed);
            self.stats.record_shed();
            return;
        }
        self.affinity.insert(peer.ip(), server);
        let Ok(backend) = connect_nonblocking(backend_addr) else {
            return;
        };
        let _ = backend.set_nodelay(true);
        let key = self.conns.insert(Relay {
            client,
            backend,
            c2b: SendBuf::new(),
            b2c: SendBuf::new(),
            connecting: true,
            client_eof: false,
            backend_eof: false,
            client_shut: false,
            backend_shut: false,
            client_interest: Interest::READ,
            backend_interest: Interest::WRITE,
        });
        let base = self.conn_base + 2 * key as u64;
        let registered = match self.conns.get(key) {
            Some(r) => {
                self.epoll.add(&r.client, base, Interest::READ).is_ok()
                    && self.epoll.add(&r.backend, base + 1, Interest::WRITE).is_ok()
            }
            None => false,
        };
        if !registered {
            self.teardown(key);
        }
    }

    fn relay_ready(&mut self, key: usize, backend_side: bool, ev: Event) {
        let outcome = match self.conns.get_mut(key) {
            None => return,
            Some(relay) => {
                if ev.error && !(backend_side && relay.connecting) {
                    Pump::Dead
                } else {
                    if backend_side && relay.connecting && (ev.writable || ev.error || ev.closed)
                    {
                        // SO_ERROR tells connect success from refusal.
                        match covenant_reactor::take_socket_error(&relay.backend) {
                            Ok(None) => relay.connecting = false,
                            _ => {
                                self.teardown(key);
                                return;
                            }
                        }
                    }
                    pump(relay)
                }
            }
        };
        match outcome {
            Pump::Alive => self.update_interest(key),
            Pump::Done => {
                self.spliced.fetch_add(1, Ordering::Relaxed);
                self.teardown(key);
            }
            Pump::Dead => self.teardown(key),
        }
    }

    /// Reconciles both sides' epoll interest with buffer state.
    fn update_interest(&mut self, key: usize) {
        let base = self.conn_base + 2 * key as u64;
        let mut broken = false;
        if let Some(r) = self.conns.get_mut(key) {
            let mut want_c = Interest::NONE;
            if !r.client_eof && r.c2b.len() < HIGH_WATER {
                want_c = want_c | Interest::READ;
            }
            if !r.b2c.is_empty() {
                want_c = want_c | Interest::WRITE;
            }
            let want_b = if r.connecting {
                Interest::WRITE
            } else {
                let mut w = Interest::NONE;
                if !r.backend_eof && r.b2c.len() < HIGH_WATER {
                    w = w | Interest::READ;
                }
                if !r.c2b.is_empty() {
                    w = w | Interest::WRITE;
                }
                w
            };
            if want_c != r.client_interest {
                if self.epoll.modify(&r.client, base, want_c).is_ok() {
                    r.client_interest = want_c;
                } else {
                    broken = true;
                }
            }
            if want_b != r.backend_interest {
                if self.epoll.modify(&r.backend, base + 1, want_b).is_ok() {
                    r.backend_interest = want_b;
                } else {
                    broken = true;
                }
            }
        }
        if broken {
            self.teardown(key);
        }
    }

    fn teardown(&mut self, key: usize) {
        if let Some(relay) = self.conns.remove(key) {
            let _ = self.epoll.remove(&relay.client);
            let _ = self.epoll.remove(&relay.backend);
        }
    }
}

/// A running sharded Layer-4 redirector: N reactor threads, each fronting
/// every service through its own `SO_REUSEPORT` listener, enforcing one
/// agreement graph through the shared coordination tree (shard *i*
/// publishes as tree node *i*).
pub struct ShardedL4 {
    stop: Arc<AtomicBool>,
    wakes: Vec<WakeHandle>,
    handles: Vec<JoinHandle<()>>,
    stats: Vec<Arc<ShardStats>>,
    refused: Arc<AtomicU64>,
    spliced: Arc<AtomicU64>,
    service_addrs: Vec<(PrincipalId, SocketAddr)>,
}

impl ShardedL4 {
    /// Binds `shards` reuseport listener sets and starts one reactor
    /// thread per shard. Window rolls and parked reinjection run inside
    /// each shard's event loop (no daemon thread).
    pub fn start(
        cfg: L4Config,
        shards: usize,
        levels: &AccessLevels,
        sched: SchedulerConfig,
        coordinator: Coordinator,
    ) -> io::Result<ShardedL4> {
        ShardedL4::start_at(cfg, shards, levels, sched, coordinator, 0)
    }

    /// Like [`Self::start`], but shard *i* publishes as tree node
    /// `base_node + i` — multiple proxy instances (or cluster processes)
    /// can share one coordination tree without colliding on leaf ids.
    pub fn start_at(
        cfg: L4Config,
        shards: usize,
        levels: &AccessLevels,
        sched: SchedulerConfig,
        coordinator: Coordinator,
        base_node: usize,
    ) -> io::Result<ShardedL4> {
        let shards = shards.max(1);
        let n_principals = cfg
            .services
            .iter()
            .map(|s| s.principal.0 + 1)
            .chain(cfg.backends.keys().map(|&k| k + 1))
            .max()
            .unwrap_or(1);

        // Shard 0 resolves every port-0 bind; later shards share the
        // concrete ports.
        let mut service_addrs: Vec<(PrincipalId, SocketAddr)> = Vec::new();
        let mut per_shard: Vec<Vec<(TcpListener, PrincipalId)>> = Vec::new();
        for shard in 0..shards {
            let mut listeners = Vec::new();
            for (i, svc) in cfg.services.iter().enumerate() {
                let addr: SocketAddr = match service_addrs.get(i) {
                    Some(&(_, resolved)) => resolved,
                    None => svc
                        .bind
                        .parse()
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?,
                };
                let listener = reuseport_listener(addr)?;
                if shard == 0 {
                    service_addrs.push((svc.principal, listener.local_addr()?));
                }
                listeners.push((listener, svc.principal));
            }
            per_shard.push(listeners);
        }

        let stop = Arc::new(AtomicBool::new(false));
        let refused = Arc::new(AtomicU64::new(0));
        let spliced = Arc::new(AtomicU64::new(0));
        let mut wakes = Vec::new();
        let mut stats = Vec::new();
        let mut handles = Vec::new();
        let spawn_result: io::Result<()> = (|| {
            for (node, services) in per_shard.into_iter().enumerate() {
                let epoll = Epoll::new()?;
                let (wake, handle) = WakeFd::new()?;
                epoll.add(&wake, TOKEN_WAKE, Interest::READ)?;
                for (i, (listener, _)) in services.iter().enumerate() {
                    epoll.add(listener, TOKEN_SVC_BASE + i as u64, Interest::READ)?;
                }
                let conn_base = TOKEN_SVC_BASE + services.len() as u64;
                let shard_stats = Arc::new(ShardStats::new());
                let runtime = ShardRuntime {
                    epoll,
                    wake,
                    services,
                    conns: Slab::new(),
                    core: ShardCore::new(base_node + node, levels, sched.clone(), coordinator.clone()),
                    stats: Arc::clone(&shard_stats),
                    stop: Arc::clone(&stop),
                    backends: cfg.backends.clone(),
                    affinity: HashMap::new(),
                    parked: (0..n_principals).map(|_| VecDeque::new()).collect(),
                    park_limit: cfg.park_limit,
                    refused: Arc::clone(&refused),
                    spliced: Arc::clone(&spliced),
                    conn_base,
                };
                let joiner = std::thread::Builder::new()
                    .name(format!("l4-shard-{node}"))
                    .spawn(move || runtime.run())?;
                wakes.push(handle);
                stats.push(shard_stats);
                handles.push(joiner);
            }
            Ok(())
        })();
        let mut this =
            ShardedL4 { stop, wakes, handles, stats, refused, spliced, service_addrs };
        if let Err(e) = spawn_result {
            this.shutdown();
            return Err(e);
        }
        Ok(this)
    }

    /// The bound address fronting `principal`, if configured.
    pub fn service_addr(&self, principal: PrincipalId) -> Option<SocketAddr> {
        self.service_addrs
            .iter()
            .find(|(p, _)| *p == principal)
            .map(|(_, a)| *a)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.stats.len()
    }

    /// Connections relayed end-to-end cleanly, across all shards.
    pub fn spliced(&self) -> u64 {
        self.spliced.load(Ordering::Relaxed)
    }

    /// Connections shed with RST (park overflow or relay cap).
    pub fn refused(&self) -> u64 {
        self.refused.load(Ordering::Relaxed)
    }

    /// Point-in-time per-shard snapshots, ordered by shard index.
    pub fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        self.stats.iter().map(|s| s.snapshot()).collect()
    }

    /// Signals every shard and joins their threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        for w in &self.wakes {
            w.wake();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ShardedL4 {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::L4Service;
    use covenant_agreements::AgreementGraph;
    use covenant_http::{HttpClient, OriginServer, StatusCode};
    use covenant_tree::Topology;
    use std::time::{Duration, Instant};

    /// Origin 200/s shared [0.25,1] (A) / [0.75,1] (B).
    fn system() -> (AgreementGraph, PrincipalId, PrincipalId) {
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 200.0);
        let a = g.add_principal("A", 0.0);
        let b = g.add_principal("B", 0.0);
        g.add_agreement(s, a, 0.25, 1.0).unwrap();
        g.add_agreement(s, b, 0.75, 1.0).unwrap();
        (g, a, b)
    }

    #[test]
    fn sharded_l4_proxies_http_transparently() {
        let (g, a, _b) = system();
        let origin =
            OriginServer::bind("127.0.0.1:0", 1000.0, 128, Duration::from_secs(2)).unwrap();
        let proxy = ShardedL4::start(
            L4Config {
                services: vec![L4Service { principal: a, bind: "127.0.0.1:0".into() }],
                backends: [(0, origin.addr())].into(),
                park_limit: 1024,
                live_limit: 1024,
            },
            2,
            &g.access_levels(),
            SchedulerConfig::community_default(),
            Coordinator::new(Topology::star(2, 0.0), 0.0),
        )
        .unwrap();
        let addr = proxy.service_addr(a).unwrap();

        // First requests may park until the estimator primes; retry.
        let client = HttpClient::new();
        let deadline = Instant::now() + Duration::from_secs(3);
        let mut ok = false;
        while Instant::now() < deadline {
            if let Ok(r) = client.get(&format!("http://{addr}/page")) {
                assert_eq!(r.response.status, StatusCode::OK);
                assert_eq!(r.response.body.len(), 128);
                assert_eq!(r.redirects, 0, "L4 path must not redirect");
                ok = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        assert!(ok, "no request ever completed through the sharded L4 proxy");
        let deadline = Instant::now() + Duration::from_secs(1);
        while proxy.spliced() < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(proxy.spliced() >= 1);
    }

    #[test]
    fn sharded_l4_enforces_shares_end_to_end() {
        let (g, a, b) = system();
        let origin =
            OriginServer::bind("127.0.0.1:0", 1000.0, 64, Duration::from_secs(2)).unwrap();
        let proxy = ShardedL4::start(
            L4Config {
                services: vec![
                    L4Service { principal: a, bind: "127.0.0.1:0".into() },
                    L4Service { principal: b, bind: "127.0.0.1:0".into() },
                ],
                backends: [(0, origin.addr())].into(),
                park_limit: 8,
                live_limit: 1024,
            },
            2,
            &g.access_levels(),
            SchedulerConfig::community_default(),
            Coordinator::new(Topology::star(2, 0.0), 0.0),
        )
        .unwrap();

        const THREADS_PER_PRINCIPAL: usize = 8;
        let deadline = Instant::now() + Duration::from_secs(3);
        let mut joiners = Vec::new();
        for principal in [a, b] {
            let addr = proxy.service_addr(principal).unwrap();
            for _ in 0..THREADS_PER_PRINCIPAL {
                joiners.push(std::thread::spawn(move || {
                    let client =
                        HttpClient { timeout: Duration::from_millis(400), ..HttpClient::new() };
                    let mut completed = 0u64;
                    while Instant::now() < deadline {
                        if let Ok(r) = client.get(&format!("http://{addr}/x")) {
                            if r.response.status == StatusCode::OK {
                                completed += 1;
                            }
                        }
                    }
                    completed
                }));
            }
        }
        let results: Vec<u64> = joiners.into_iter().map(|h| h.join().unwrap()).collect();
        let got_a: u64 = results[..THREADS_PER_PRINCIPAL].iter().sum();
        let got_b: u64 = results[THREADS_PER_PRINCIPAL..].iter().sum();
        let ratio = got_b as f64 / got_a.max(1) as f64;
        assert!(
            (1.8..=5.0).contains(&ratio),
            "B/A completion ratio {ratio:.2} (A={got_a}, B={got_b})"
        );
        let total = got_a + got_b;
        assert!(total <= 850, "completed {total} > capacity budget");
        assert!(total >= 250, "completed only {total}");
        // Telemetry: every shard handled traffic and recorded verdicts.
        let snaps = proxy.shard_snapshots();
        assert!(snaps.iter().all(|s| s.batched_verdicts > 0), "{snaps:?}");
    }

    #[test]
    fn park_limit_sheds_overflow_per_shard() {
        // Zero-entitlement principal: every connection parks; beyond the
        // limit they are shed with RST.
        let mut g = AgreementGraph::new();
        let _s = g.add_principal("S", 100.0);
        let a = g.add_principal("A", 0.0); // no agreement → zero quota
        let proxy = ShardedL4::start(
            L4Config {
                services: vec![L4Service { principal: a, bind: "127.0.0.1:0".into() }],
                backends: HashMap::new(),
                park_limit: 2,
                live_limit: 1024,
            },
            1,
            &g.access_levels(),
            SchedulerConfig::community_default(),
            Coordinator::new(Topology::star(1, 0.0), 0.0),
        )
        .unwrap();
        let addr = proxy.service_addr(a).unwrap();
        let mut conns = Vec::new();
        for _ in 0..6 {
            conns.push(std::net::TcpStream::connect(addr).unwrap());
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        while proxy.refused() < 4 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(proxy.refused() >= 4, "refused {}", proxy.refused());
    }
}
