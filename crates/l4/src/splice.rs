//! Bidirectional byte-stream splicing between two TCP connections.

use std::io;
use std::net::{Shutdown, TcpStream};

/// Copies bytes in both directions between `client` and `backend` until
/// both sides close, then returns (client→backend bytes, backend→client
/// bytes). The forward direction runs on a helper thread; the reverse on
/// the calling thread.
pub fn splice_streams(client: TcpStream, backend: TcpStream) -> io::Result<(u64, u64)> {
    let c2 = client.try_clone()?;
    let b2 = backend.try_clone()?;
    let forward = std::thread::Builder::new()
        .name("l4-splice-fwd".into())
        .spawn(move || copy_then_shutdown(c2, b2))?;
    let back_bytes = copy_then_shutdown(backend, client)?;
    let fwd_bytes = forward
        .join()
        .map_err(|_| io::Error::other("splice thread panicked"))??;
    Ok((fwd_bytes, back_bytes))
}

/// Copies `from` into `to` until EOF, then half-closes `to`'s write side so
/// the peer sees the end of stream.
fn copy_then_shutdown(mut from: TcpStream, mut to: TcpStream) -> io::Result<u64> {
    let n = io::copy(&mut from, &mut to).unwrap_or(0);
    let _ = to.shutdown(Shutdown::Write);
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    /// Echo server that doubles each received byte count by echoing back.
    fn echo_listener() -> (TcpListener, std::net::SocketAddr) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        (l, addr)
    }

    #[test]
    fn splices_request_and_response() {
        let (backend_listener, backend_addr) = echo_listener();
        // Backend: read everything, reply with "pong", close.
        let backend_thread = std::thread::spawn(move || {
            let (mut s, _) = backend_listener.accept().unwrap();
            let mut buf = [0u8; 4];
            s.read_exact(&mut buf).unwrap();
            assert_eq!(&buf, b"ping");
            s.write_all(b"pong!").unwrap();
        });

        // Proxy listener: accept one client, splice to backend.
        let (proxy_listener, proxy_addr) = echo_listener();
        let proxy_thread = std::thread::spawn(move || {
            let (client_side, _) = proxy_listener.accept().unwrap();
            let backend_side = TcpStream::connect(backend_addr).unwrap();
            splice_streams(client_side, backend_side).unwrap()
        });

        let mut client = TcpStream::connect(proxy_addr).unwrap();
        client.write_all(b"ping").unwrap();
        client.shutdown(Shutdown::Write).unwrap();
        let mut reply = Vec::new();
        client.read_to_end(&mut reply).unwrap();
        assert_eq!(reply, b"pong!");

        backend_thread.join().unwrap();
        let (fwd, back) = proxy_thread.join().unwrap();
        assert_eq!(fwd, 4);
        assert_eq!(back, 5);
    }
}
