//! The L4 redirector proper: per-principal listeners, accept-time
//! admission, connection parking, affinity.

use crate::splice_streams;
use covenant_agreements::PrincipalId;
use covenant_coord::{AdmissionControl, DaemonHooks, WindowDaemon};
use covenant_enforce::reinject_fifo;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One fronted service: connections to this listener are charged to
/// `principal`.
#[derive(Debug, Clone)]
pub struct L4Service {
    /// The principal whose agreements fund this service's traffic.
    pub principal: PrincipalId,
    /// Bind address for the service's virtual IP/port (use port 0 for an
    /// ephemeral port).
    pub bind: String,
}

/// Static configuration of one L4 redirector.
#[derive(Debug, Clone)]
pub struct L4Config {
    /// Fronted services (one listener per principal).
    pub services: Vec<L4Service>,
    /// Backend server address per server index (principal id of owner).
    pub backends: HashMap<usize, SocketAddr>,
    /// Maximum parked connections per principal (the kernel queue bound);
    /// connections beyond it are refused (RST analogue).
    pub park_limit: usize,
    /// Maximum concurrently relayed connections (the splice-thread pool
    /// bound); admitted connections beyond it are shed with RST instead
    /// of spawning threads without bound.
    pub live_limit: usize,
}

/// Shared mutable state between accept threads and the window daemon.
struct Shared {
    ctrl: Arc<AdmissionControl>,
    backends: HashMap<usize, SocketAddr>,
    /// Parked client connections per principal, FIFO.
    parked: Mutex<Vec<VecDeque<(TcpStream, SocketAddr)>>>,
    /// Client-IP → server affinity.
    affinity: Mutex<HashMap<IpAddr, usize>>,
    /// Connections refused because the park queue was full.
    refused: AtomicU64,
    /// Connections spliced end-to-end.
    spliced: AtomicU64,
    /// Connections currently being relayed (splice threads alive).
    live: AtomicU64,
    /// Cap on `live`; beyond it admitted connections are shed with RST.
    live_limit: usize,
    stop: AtomicBool,
}

impl Shared {
    /// Forwards an admitted connection to `server`, recording affinity.
    fn forward(self: &Arc<Self>, client: TcpStream, peer: SocketAddr, server: usize) {
        let Some(&backend) = self.backends.get(&server) else {
            return; // no such backend: drop the connection
        };
        // Counting gate on the splice-thread pool: past the cap the
        // connection is shed with RST immediately — bounded threads, and
        // the client learns at once instead of queueing on a doomed spawn.
        if self.live.fetch_add(1, Ordering::AcqRel) >= self.live_limit as u64 {
            self.live.fetch_sub(1, Ordering::AcqRel);
            let _ = covenant_reactor::set_rst_on_close(&client);
            self.refused.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.affinity.lock().insert(peer.ip(), server);
        let shared = Arc::clone(self);
        let spawned = std::thread::Builder::new()
            .name("l4-conn".into())
            .spawn(move || {
                if let Ok(backend_stream) = TcpStream::connect(backend) {
                    let _ = backend_stream.set_nodelay(true);
                    let _ = client.set_nodelay(true);
                    if splice_streams(client, backend_stream).is_ok() {
                        shared.spliced.fetch_add(1, Ordering::Relaxed);
                    }
                }
                shared.live.fetch_sub(1, Ordering::AcqRel);
            });
        // A failed spawn (thread exhaustion) drops the connection — the
        // client sees RST, the same outcome as a refused park.
        if spawned.is_err() {
            self.live.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Parked-connection counts per principal (the daemon's backlog hint).
    fn parked_counts(&self, n: usize) -> Vec<f64> {
        let parked = self.parked.lock();
        (0..n).map(|i| parked[i].len() as f64).collect()
    }

    /// Reinjects parked connections that the fresh window's credit admits
    /// (the shared FIFO loop: per principal, drain while the gate admits,
    /// stop at the first defer).
    fn drain_parked(self: &Arc<Self>) {
        let mut parked = self.parked.lock();
        let n = parked.len();
        reinject_fifo(
            n,
            &mut *parked,
            |i, (_, peer): &(TcpStream, SocketAddr)| {
                let preferred = self.affinity.lock().get(&peer.ip()).copied();
                self.ctrl.readmit(PrincipalId(i), preferred)
            },
            |(stream, peer), server| self.forward(stream, peer, server),
        );
    }
}

/// A running Layer-4 redirector.
pub struct L4Redirector {
    shared: Arc<Shared>,
    daemon: WindowDaemon,
    accept_threads: Vec<JoinHandle<()>>,
    service_addrs: Vec<(PrincipalId, SocketAddr)>,
}

impl L4Redirector {
    /// Binds every service listener and starts the accept loops and the
    /// window daemon.
    pub fn start(cfg: L4Config, ctrl: Arc<AdmissionControl>) -> io::Result<Self> {
        let n_principals = {
            // Infer the principal-vector width from the largest id in use.
            cfg.services
                .iter()
                .map(|s| s.principal.0 + 1)
                .chain(cfg.backends.keys().map(|&k| k + 1))
                .max()
                .unwrap_or(1)
        };
        let shared = Arc::new(Shared {
            ctrl: Arc::clone(&ctrl),
            backends: cfg.backends.clone(),
            parked: Mutex::new((0..n_principals).map(|_| VecDeque::new()).collect()),
            affinity: Mutex::new(HashMap::new()),
            refused: AtomicU64::new(0),
            spliced: AtomicU64::new(0),
            live: AtomicU64::new(0),
            live_limit: cfg.live_limit,
            stop: AtomicBool::new(false),
        });

        let mut accept_threads = Vec::new();
        let mut service_addrs = Vec::new();
        for svc in &cfg.services {
            let listener = TcpListener::bind(&svc.bind)?;
            let addr = listener.local_addr()?;
            listener.set_nonblocking(true)?;
            service_addrs.push((svc.principal, addr));
            let shared2 = Arc::clone(&shared);
            let principal = svc.principal;
            let park_limit = cfg.park_limit;
            accept_threads.push(
                std::thread::Builder::new()
                    .name(format!("l4-accept-{}", principal.0))
                    .spawn(move || {
                        while !shared2.stop.load(Ordering::Relaxed) {
                            match listener.accept() {
                                Ok((stream, peer)) => {
                                    let preferred =
                                        shared2.affinity.lock().get(&peer.ip()).copied();
                                    match shared2.ctrl.try_admit(principal, preferred) {
                                        Some(server) => shared2.forward(stream, peer, server),
                                        None => {
                                            let mut parked = shared2.parked.lock();
                                            let q = &mut parked[principal.0];
                                            if q.len() < park_limit {
                                                q.push_back((stream, peer));
                                            } else {
                                                drop(parked);
                                                shared2
                                                    .refused
                                                    .fetch_add(1, Ordering::Relaxed);
                                                // Dropping the stream sends RST/FIN.
                                            }
                                        }
                                    }
                                }
                                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                    std::thread::sleep(Duration::from_millis(1));
                                }
                                Err(_) => break,
                            }
                        }
                    })?,
            );
        }

        // Window daemon: publish parked backlog, then reinject after roll.
        let shared_backlog = Arc::clone(&shared);
        let shared_drain = Arc::clone(&shared);
        let hooks = DaemonHooks {
            backlog: Some(Box::new(move || shared_backlog.parked_counts(n_principals))),
            after_roll: Some(Box::new(move || shared_drain.drain_parked())),
        };
        let window = Duration::from_secs_f64(ctrl.window_secs());
        let daemon = WindowDaemon::start(ctrl, window, hooks)?;

        Ok(L4Redirector { shared, daemon, accept_threads, service_addrs })
    }

    /// The bound address fronting `principal`, if configured.
    pub fn service_addr(&self, principal: PrincipalId) -> Option<SocketAddr> {
        self.service_addrs
            .iter()
            .find(|(p, _)| *p == principal)
            .map(|(_, a)| *a)
    }

    /// Connections fully spliced so far.
    pub fn spliced(&self) -> u64 {
        self.shared.spliced.load(Ordering::Relaxed)
    }

    /// Connections refused at the park limit or the live-relay cap.
    pub fn refused(&self) -> u64 {
        self.shared.refused.load(Ordering::Relaxed)
    }

    /// Connections currently being relayed by splice threads.
    pub fn live(&self) -> u64 {
        self.shared.live.load(Ordering::Relaxed)
    }

    /// Currently parked connections per principal.
    pub fn parked_counts(&self) -> Vec<f64> {
        let n = self.shared.parked.lock().len();
        self.shared.parked_counts(n)
    }

    /// Stops accept loops and the daemon.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.daemon.shutdown();
        for h in self.accept_threads.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for L4Redirector {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covenant_agreements::AgreementGraph;
    use covenant_coord::Coordinator;
    use covenant_http::{HttpClient, OriginServer, StatusCode};
    use covenant_sched::SchedulerConfig;
    use covenant_tree::Topology;
    use std::time::Instant;

    /// Origin 200/s shared [0.25,1] (A) / [0.75,1] (B).
    fn system() -> (AgreementGraph, PrincipalId, PrincipalId) {
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 200.0);
        let a = g.add_principal("A", 0.0);
        let b = g.add_principal("B", 0.0);
        g.add_agreement(s, a, 0.25, 1.0).unwrap();
        g.add_agreement(s, b, 0.75, 1.0).unwrap();
        (g, a, b)
    }

    #[test]
    fn l4_proxies_http_transparently() {
        let (g, a, _b) = system();
        let origin =
            OriginServer::bind("127.0.0.1:0", 1000.0, 128, Duration::from_secs(2)).unwrap();
        let ctrl = AdmissionControl::new(
            0,
            &g.access_levels(),
            SchedulerConfig::community_default(),
            Coordinator::new(Topology::star(1, 0.0), 0.0),
        );
        let cfg = L4Config {
            services: vec![L4Service { principal: a, bind: "127.0.0.1:0".into() }],
            backends: [(0, origin.addr())].into(),
            park_limit: 1024,
            live_limit: 1024,
        };
        let redirector = L4Redirector::start(cfg, ctrl).unwrap();
        let addr = redirector.service_addr(a).unwrap();

        // First requests may park until the estimator primes; retry briefly.
        let client = HttpClient::new();
        let deadline = Instant::now() + Duration::from_secs(3);
        let mut ok = false;
        while Instant::now() < deadline {
            if let Ok(r) = client.get(&format!("http://{addr}/page")) {
                assert_eq!(r.response.status, StatusCode::OK);
                assert_eq!(r.response.body.len(), 128);
                assert_eq!(r.redirects, 0, "L4 path must not redirect");
                ok = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        assert!(ok, "no request ever completed through the L4 proxy");
        // The splice thread's counter update may lag the client read.
        let deadline = Instant::now() + Duration::from_secs(1);
        while redirector.spliced() < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(redirector.spliced() >= 1);
    }

    #[test]
    fn l4_enforces_shares_end_to_end() {
        let (g, a, b) = system();
        let origin =
            OriginServer::bind("127.0.0.1:0", 1000.0, 64, Duration::from_secs(2)).unwrap();
        let ctrl = AdmissionControl::new(
            0,
            &g.access_levels(),
            SchedulerConfig::community_default(),
            Coordinator::new(Topology::star(1, 0.0), 0.0),
        );
        let cfg = L4Config {
            services: vec![
                L4Service { principal: a, bind: "127.0.0.1:0".into() },
                L4Service { principal: b, bind: "127.0.0.1:0".into() },
            ],
            backends: [(0, origin.addr())].into(),
            park_limit: 8,
            live_limit: 1024,
        };
        let redirector = L4Redirector::start(cfg, ctrl).unwrap();

        // Flood: several concurrent closed-loop clients per principal so
        // offered load far exceeds the 200 req/s pool and quotas bind.
        const THREADS_PER_PRINCIPAL: usize = 8;
        let deadline = Instant::now() + Duration::from_secs(3);
        let mut handles = Vec::new();
        for principal in [a, b] {
            let addr = redirector.service_addr(principal).unwrap();
            for _ in 0..THREADS_PER_PRINCIPAL {
                handles.push(std::thread::spawn(move || {
                    let client =
                        HttpClient { timeout: Duration::from_millis(400), ..HttpClient::new() };
                    let mut completed = 0u64;
                    while Instant::now() < deadline {
                        if let Ok(r) = client.get(&format!("http://{addr}/x")) {
                            if r.response.status == StatusCode::OK {
                                completed += 1;
                            }
                        }
                    }
                    completed
                }));
            }
        }
        let results: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let got_a: u64 = results[..THREADS_PER_PRINCIPAL].iter().sum();
        let got_b: u64 = results[THREADS_PER_PRINCIPAL..].iter().sum();
        let ratio = got_b as f64 / got_a.max(1) as f64;
        assert!(
            (1.8..=5.0).contains(&ratio),
            "B/A completion ratio {ratio:.2} (A={got_a}, B={got_b})"
        );
        let total = got_a + got_b;
        assert!(total <= 850, "completed {total} > capacity budget");
        assert!(total >= 250, "completed only {total}");
    }

    #[test]
    fn affinity_pins_client_to_one_backend() {
        // Two origin servers both entitled to serve A's requests: a single
        // client (one source IP) must stick to whichever backend it was
        // first assigned, as long as allocations allow (§4.2's SSL-session
        // consideration).
        let mut g = AgreementGraph::new();
        let s1 = g.add_principal("S1", 100.0);
        let s2 = g.add_principal("S2", 100.0);
        let a = g.add_principal("A", 0.0);
        g.add_agreement(s1, a, 0.5, 1.0).unwrap();
        g.add_agreement(s2, a, 0.5, 1.0).unwrap();

        let o1 = OriginServer::bind("127.0.0.1:0", 1000.0, 16, Duration::from_secs(1)).unwrap();
        let o2 = OriginServer::bind("127.0.0.1:0", 1000.0, 16, Duration::from_secs(1)).unwrap();
        let ctrl = AdmissionControl::new(
            0,
            &g.access_levels(),
            SchedulerConfig::community_default(),
            Coordinator::new(Topology::star(1, 0.0), 0.0),
        );
        let cfg = L4Config {
            services: vec![L4Service { principal: a, bind: "127.0.0.1:0".into() }],
            backends: [(0, o1.addr()), (1, o2.addr())].into(),
            park_limit: 256,
            live_limit: 1024,
        };
        let redirector = L4Redirector::start(cfg, ctrl).unwrap();
        let addr = redirector.service_addr(a).unwrap();

        let client = HttpClient { timeout: Duration::from_millis(500), ..HttpClient::new() };
        let deadline = Instant::now() + Duration::from_secs(3);
        let mut completed = 0;
        while completed < 40 && Instant::now() < deadline {
            if let Ok(r) = client.get(&format!("http://{addr}/x")) {
                if r.response.status == StatusCode::OK {
                    completed += 1;
                }
            }
        }
        assert!(completed >= 40, "only {completed} completed");
        let (s1_served, s2_served) = (o1.served(), o2.served());
        let max = s1_served.max(s2_served);
        let min = s1_served.min(s2_served);
        assert!(
            max >= 38 && min <= 2,
            "affinity not sticky: backend split {s1_served}/{s2_served}"
        );
    }

    /// With a zero live-relay cap every *admitted* connection is shed at
    /// the counting gate — no splice thread is ever spawned, and the
    /// refusal counter proves the gate (not the park queue) fired.
    #[test]
    fn live_limit_gates_splice_threads() {
        let (g, a, _b) = system();
        let origin =
            OriginServer::bind("127.0.0.1:0", 1000.0, 16, Duration::from_secs(1)).unwrap();
        let ctrl = AdmissionControl::new(
            0,
            &g.access_levels(),
            SchedulerConfig::community_default(),
            Coordinator::new(Topology::star(1, 0.0), 0.0),
        );
        let cfg = L4Config {
            services: vec![L4Service { principal: a, bind: "127.0.0.1:0".into() }],
            backends: [(0, origin.addr())].into(),
            park_limit: 1024,
            live_limit: 0,
        };
        let redirector = L4Redirector::start(cfg, ctrl).unwrap();
        let addr = redirector.service_addr(a).unwrap();

        let client = HttpClient { timeout: Duration::from_millis(300), ..HttpClient::new() };
        let deadline = Instant::now() + Duration::from_secs(3);
        while redirector.refused() == 0 && Instant::now() < deadline {
            // Admitted connections hit the gate and reset; none complete.
            assert!(client.get(&format!("http://{addr}/x")).is_err());
        }
        assert!(redirector.refused() > 0, "gate never fired");
        assert_eq!(redirector.live(), 0, "no splice thread may be live");
        assert_eq!(redirector.spliced(), 0);
    }

    #[test]
    fn park_limit_refuses_overflow() {
        // Zero-entitlement principal: every connection parks; beyond the
        // limit they are refused.
        let mut g = AgreementGraph::new();
        let _s = g.add_principal("S", 100.0);
        let a = g.add_principal("A", 0.0); // no agreement → zero quota
        let ctrl = AdmissionControl::new(
            0,
            &g.access_levels(),
            SchedulerConfig::community_default(),
            Coordinator::new(Topology::star(1, 0.0), 0.0),
        );
        let cfg = L4Config {
            services: vec![L4Service { principal: a, bind: "127.0.0.1:0".into() }],
            backends: HashMap::new(),
            park_limit: 2,
            live_limit: 1024,
        };
        let redirector = L4Redirector::start(cfg, ctrl).unwrap();
        let addr = redirector.service_addr(a).unwrap();
        let mut conns = Vec::new();
        for _ in 0..6 {
            conns.push(TcpStream::connect(addr).unwrap());
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        while redirector.refused() < 4 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(redirector.refused() >= 4, "refused {}", redirector.refused());
        assert_eq!(redirector.parked_counts()[1], 2.0);
    }
}
