//! Layer-4 redirector (paper §4.2).
//!
//! The paper's L4 prototype is a Linux Virtual Server NAT module: on a TCP
//! SYN it picks a server per the current scheduling decision, rewrites the
//! packet, and forwards; out-of-quota connections are parked in a
//! per-principal kernel queue and reinjected in later windows. Connection
//! affinity keeps one client on one server while agreements allow, so
//! SSL-style pairwise sessions survive.
//!
//! This crate is the user-space analogue with identical enforcement
//! semantics: a [`L4Redirector`] accepts connections (one listening port
//! per principal — the pure Layer-4 way to attribute traffic), consults the
//! shared [`covenant_coord::AdmissionControl`] at accept time, and either
//! splices the byte stream to the assigned backend or parks the connection
//! for a later window. Only the packet-rewriting plumbing differs from the
//! kernel module, and that part the paper itself treats as substrate (LVS).

//! Two data planes implement these semantics: the legacy blocking
//! [`L4Redirector`] (accept threads + a bounded splice-thread pool) and
//! the thread-per-core [`ShardedL4`] reactor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod proxy;
mod reactor_proxy;
mod splice;

pub use proxy::{L4Config, L4Redirector, L4Service};
pub use reactor_proxy::ShardedL4;
pub use splice::splice_streams;
