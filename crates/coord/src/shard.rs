//! Single-owner per-shard admission state for reactor data planes.

use crate::{Coordinator, TreeCoordination};
use covenant_agreements::{AccessLevels, PrincipalId};
use covenant_enforce::{ArrivalOutcome, EnforcementCore, EnforcementCounters, QueueMode};
use covenant_sched::{Request, SchedulerConfig};

/// The admission state machine one reactor shard owns *exclusively*.
///
/// This is [`crate::AdmissionControl`] with the mutex removed: a shard's
/// event loop is single-threaded, so its verdict path takes no locks at
/// all — the entire batch of arrivals harvested from one readiness wake
/// runs straight through the enforcement core. Shards meet each other
/// only inside the shared [`Coordinator`] tree (each shard is one more
/// leaf node), and only at window boundaries via [`Self::roll_window_at`]
/// — the paper's point that redirectors need window-granularity
/// coordination, applied at core granularity.
///
/// Every entry point takes an explicit `now` so the same machine serves
/// both live loops (passing `Coordinator::now()` sampled once per wake)
/// and virtual-time differential replays — decision-for-decision the
/// same behaviour as the mutexed control plane, which the multi-shard
/// differential test pins down.
pub struct ShardCore {
    node: usize,
    coordinator: Coordinator,
    next_request_id: u64,
    core: EnforcementCore<TreeCoordination>,
    released: Vec<(Request, usize)>,
}

impl ShardCore {
    /// Builds the shard core joining the tree as leaf `node`.
    pub fn new(
        node: usize,
        levels: &AccessLevels,
        cfg: SchedulerConfig,
        coordinator: Coordinator,
    ) -> ShardCore {
        let core = EnforcementCore::new(
            levels,
            cfg,
            // Reactor transports answer out-of-quota work themselves
            // (self-redirect, external parking) — the core never holds
            // requests internally.
            QueueMode::CreditRetry { retry_delay: 0.0 },
            TreeCoordination::new(coordinator.clone(), node),
        );
        ShardCore { node, coordinator, next_request_id: 0, core, released: Vec::new() }
    }

    /// The tree node this shard publishes demand as.
    pub fn node(&self) -> usize {
        self.node
    }

    /// The scheduling window length, seconds.
    pub fn window_secs(&self) -> f64 {
        self.core.window_secs()
    }

    /// The shared coordinator (the shard loop's clock source).
    pub fn coordinator(&self) -> &Coordinator {
        &self.coordinator
    }

    /// Attempts to admit one unit-cost request for `principal` at time
    /// `now`, preferring `preferred` when it still has allocation.
    /// Returns the assigned server on success.
    pub fn try_admit_at(
        &mut self,
        principal: PrincipalId,
        preferred: Option<usize>,
        now: f64,
    ) -> Option<usize> {
        let id = self.next_request_id;
        self.next_request_id += 1;
        let req = Request::unit(id, principal, now);
        match self.core.on_arrival_preferring(req, preferred) {
            ArrivalOutcome::Forward { server } => Some(server),
            ArrivalOutcome::Defer | ArrivalOutcome::Queued => None,
        }
    }

    /// Like [`Self::try_admit_at`] but for parked work being reinjected:
    /// already counted as an arrival, so it must not inflate the demand
    /// estimate again.
    pub fn readmit_at(
        &mut self,
        principal: PrincipalId,
        preferred: Option<usize>,
        now: f64,
    ) -> Option<usize> {
        let id = self.next_request_id;
        self.next_request_id += 1;
        let req = Request::unit(id, principal, now);
        self.core.readmit(&req, preferred)
    }

    /// Rolls one scheduling window at time `now` — the shard loop calls
    /// this at each elapsed `k·w` boundary (read-before-publish, one
    /// window stale, identical to the simulator; see
    /// [`crate::AdmissionControl::roll_window_at`]).
    pub fn roll_window_at(&mut self, backlog: Option<&[f64]>, now: f64) {
        self.released.clear();
        self.core.on_window_tick(now, backlog, &mut self.released);
        debug_assert!(self.released.is_empty(), "credit mode never holds requests");
    }

    /// A full counter snapshot for the sharded observability payload.
    pub fn counters(&self) -> EnforcementCounters {
        self.core.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdmissionControl;
    use covenant_agreements::AgreementGraph;
    use covenant_tree::Topology;

    fn levels() -> AccessLevels {
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 100.0);
        let a = g.add_principal("A", 0.0);
        let b = g.add_principal("B", 0.0);
        g.add_agreement(s, a, 0.2, 1.0).unwrap();
        g.add_agreement(s, b, 0.8, 1.0).unwrap();
        g.access_levels()
    }

    /// The shard core is the mutexed control plane minus the mutex: an
    /// identical arrival/roll sequence must produce identical decisions.
    #[test]
    fn matches_admission_control_decision_for_decision() {
        let levels = levels();
        let window = SchedulerConfig::community_default().window_secs;
        let a = PrincipalId(1);
        let b = PrincipalId(2);

        let ctrl_coord = Coordinator::new(Topology::star(2, 0.0), 0.0);
        let ctrls: Vec<_> = (0..2)
            .map(|n| {
                AdmissionControl::new(
                    n,
                    &levels,
                    SchedulerConfig::community_default(),
                    ctrl_coord.clone(),
                )
            })
            .collect();

        let shard_coord = Coordinator::new(Topology::star(2, 0.0), 0.0);
        let mut shards: Vec<_> = (0..2)
            .map(|n| {
                ShardCore::new(
                    n,
                    &levels,
                    SchedulerConfig::community_default(),
                    shard_coord.clone(),
                )
            })
            .collect();

        for w in 0..40u64 {
            let t = w as f64 * window;
            for node in 0..2 {
                ctrls[node].roll_window_at(None, t);
                shards[node].roll_window_at(None, t);
            }
            // Interleaved contention on both nodes within the window.
            for i in 0..12 {
                let (node, p) = match i % 4 {
                    0 => (0, a),
                    1 => (1, b),
                    2 => (0, b),
                    _ => (1, a),
                };
                let arrival_t = t + (i as f64 + 1.0) * 0.001;
                let want = ctrls[node].try_admit(p, None);
                let got = shards[node].try_admit_at(p, None, arrival_t);
                assert_eq!(got, want, "window {w} arrival {i} node {node} {p:?}");
            }
        }
        // Both planes actually admitted and deferred (the comparison is
        // meaningless otherwise).
        let c = shards[0].counters();
        assert!(c.admitted > 0 && c.deferred > 0, "{c:?}");
    }

    #[test]
    fn shard_cores_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ShardCore>();
    }
}
