//! Coordination runtime for the socket prototypes.
//!
//! The paper's redirector prototypes pair a data plane (HTTP redirection or
//! packet forwarding) with a control plane: a user-space daemon that, every
//! 100 ms window, (1) publishes local queue/demand state into the combining
//! tree, (2) reads back the lagged global aggregate, (3) solves the
//! scheduling LP, and (4) installs the resulting admission quotas into the
//! data plane. This crate is that control plane, shared by the Layer-7 and
//! Layer-4 prototypes:
//!
//! * [`Coordinator`] — an in-process combining tree: each redirector
//!   publishes its demand vector; aggregates become visible to node `i`
//!   only after that node's tree lag (plus any injected extra lag);
//! * [`AdmissionControl`] — the per-redirector state machine (credit gate,
//!   demand estimator, window scheduler) with a thread-safe admission entry
//!   point for the data plane;
//! * [`WindowDaemon`] — the background ticker thread driving
//!   [`AdmissionControl::roll_window`] on the configured cadence;
//! * [`ShardCore`] — the single-owner, lock-free variant of
//!   [`AdmissionControl`] that reactor shards run, one per event loop,
//!   each joining the tree as its own leaf.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod coordinator;
mod daemon;
mod shard;

pub use admission::AdmissionControl;
pub use coordinator::{Coordinator, TreeCoordination};
pub use daemon::{DaemonHooks, WindowDaemon};
pub use shard::ShardCore;
