//! Coordination endpoint shared by redirector threads.
//!
//! `Coordinator` is a thin, clonable handle over a [`CoordTransport`]: the
//! in-process combining tree ([`InProcessTree`], the default), or a socket
//! transport from `covenant-wire` where tree edges are real connections.
//! Everything above it — [`TreeCoordination`], `AdmissionControl`,
//! `ShardCore` — is transport-agnostic.

use covenant_enforce::CoordinationView;
use covenant_tree::{CoordTransport, InProcessTree, Topology};
use std::sync::Arc;
use std::time::Instant;

/// A clonable coordination endpoint: thread-safe publish/read of
/// per-principal demand vectors with per-node information lag, plus the
/// deployment's shared clock.
///
/// Over the default in-process transport, every [`Coordinator::publish`]
/// triggers one aggregation round (the tree combines whatever each node
/// last reported — exactly the estimate-lag semantics of the paper's
/// periodic exchange), and the result becomes visible to each node once
/// its tree lag has elapsed. Over a wire transport the same calls enqueue
/// frames to real peers and read whatever aggregates have arrived.
#[derive(Clone)]
pub struct Coordinator {
    transport: Arc<dyn CoordTransport>,
    epoch: Instant,
    extra_lag: f64,
}

impl Coordinator {
    /// Creates a coordinator over an in-process tree on `topology`, with
    /// `extra_lag` seconds added to every node's visibility delay
    /// (Figure 8's injected 10 s).
    pub fn new(topology: Topology, extra_lag: f64) -> Self {
        Coordinator::with_transport(Arc::new(InProcessTree::new(topology, extra_lag)), extra_lag)
    }

    /// Creates a coordinator over an explicit transport (e.g. a
    /// `covenant-wire` socket tree). If the transport owns a physical
    /// clock, its epoch becomes the deployment clock so arrival stamps and
    /// [`Coordinator::now`] share one time base.
    pub fn with_transport(transport: Arc<dyn CoordTransport>, extra_lag: f64) -> Self {
        let epoch = transport.clock_epoch().unwrap_or_else(|| {
            // The coordinator *is* the live deployment's clock source:
            // every data-plane timestamp derives from this epoch via
            // `Coordinator::now`, so this is the one sanctioned read.
            Instant::now() // covenant: allow(wall-clock)
        });
        Coordinator { transport, epoch, extra_lag }
    }

    /// Seconds since this coordinator was created (the shared clock).
    pub fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// The extra lag injected on top of tree propagation.
    pub fn extra_lag(&self) -> f64 {
        self.extra_lag
    }

    /// Number of redirector nodes.
    pub fn len(&self) -> usize {
        self.transport.nodes()
    }

    /// True if the tree has no nodes (never constructible via [`Topology`]).
    pub fn is_empty(&self) -> bool {
        self.transport.nodes() == 0
    }

    /// Publishes node `node`'s current demand vector and runs one
    /// aggregation round over the latest values from every node.
    pub fn publish(&self, node: usize, demand: Vec<f64>) {
        self.publish_at(node, demand, self.now());
    }

    /// Like [`Self::publish`], but at an explicit time `t` (virtual-time
    /// replays, e.g. the sim-vs-live differential tests). Times earlier
    /// than the previous round are clamped forward so the per-node views
    /// stay monotone.
    pub fn publish_at(&self, node: usize, demand: Vec<f64>, t: f64) {
        self.transport.publish_at(node, demand, t);
    }

    /// Reads the aggregate visible to `node` at the current time, if its
    /// lag has elapsed.
    pub fn read(&self, node: usize) -> Option<Vec<f64>> {
        self.transport.read_at(node, self.now())
    }

    /// Reads the aggregate visible to `node` at time `t`, excluding
    /// same-instant publishes ([`covenant_tree::DelayedView::read_before`]):
    /// inside a window-roll round, where every node publishes at the same
    /// boundary time, no node observes this round's publications. This is
    /// the read the enforcement core's read-before-publish tick order
    /// relies on.
    pub fn read_at(&self, node: usize, t: f64) -> Option<Vec<f64>> {
        self.transport.read_before(node, t)
    }

    /// Total tree messages exchanged so far, as observed by this endpoint.
    pub fn messages(&self) -> u64 {
        self.transport.messages()
    }

    /// The transport this coordinator publishes and reads through.
    pub fn transport(&self) -> &Arc<dyn CoordTransport> {
        &self.transport
    }
}

/// One node's [`CoordinationView`] onto the shared [`Coordinator`] tree —
/// the live counterpart of the simulator's `DelayedCoordination`.
///
/// `read` uses [`Coordinator::read_at`]'s strictly-before semantics, so the
/// enforcement core's read-before-publish tick order sees at best the
/// *previous* round's aggregate — one window stale, exactly like the
/// simulator — even when several nodes roll at the same boundary time.
pub struct TreeCoordination {
    coordinator: Coordinator,
    node: usize,
    /// Owned copy of the last read aggregate (the trait hands out a slice).
    read_buf: Option<Vec<f64>>,
}

impl TreeCoordination {
    /// A view for tree node `node`.
    pub fn new(coordinator: Coordinator, node: usize) -> Self {
        TreeCoordination { coordinator, node, read_buf: None }
    }
}

impl CoordinationView for TreeCoordination {
    fn read(&mut self, now: f64) -> Option<&[f64]> {
        self.read_buf = self.coordinator.read_at(self.node, now);
        self.read_buf.as_deref()
    }

    fn publish(&mut self, now: f64, demand: &[f64]) {
        self.coordinator.publish_at(self.node, demand.to_vec(), now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_across_publishers() {
        let c = Coordinator::new(Topology::star(2, 0.0), 0.0);
        c.publish(0, vec![10.0, 0.0]);
        c.publish(1, vec![5.0, 7.0]);
        let agg = c.read(0).expect("visible with zero lag");
        assert_eq!(agg, vec![15.0, 7.0]);
        assert_eq!(c.read(1).unwrap(), vec![15.0, 7.0]);
    }

    #[test]
    fn missing_publishers_count_as_zero() {
        let c = Coordinator::new(Topology::star(3, 0.0), 0.0);
        c.publish(1, vec![4.0]);
        assert_eq!(c.read(1).unwrap(), vec![4.0]);
    }

    #[test]
    fn extra_lag_hides_fresh_aggregates() {
        let c = Coordinator::new(Topology::star(2, 0.0), 30.0);
        c.publish(0, vec![1.0]);
        // 30 s of lag cannot have elapsed in a unit test.
        assert_eq!(c.read(0), None);
        assert_eq!(c.read(1), None);
    }

    #[test]
    fn message_count_grows_per_round() {
        let c = Coordinator::new(Topology::star(4, 0.0), 0.0);
        assert_eq!(c.messages(), 0);
        c.publish(0, vec![1.0]);
        assert_eq!(c.messages(), 6); // 2(n-1) = 6
        c.publish(1, vec![1.0]);
        assert_eq!(c.messages(), 12);
    }

    #[test]
    fn explicit_transport_is_shared_across_clones() {
        let transport = Arc::new(InProcessTree::new(Topology::star(2, 0.0), 0.0));
        let c = Coordinator::with_transport(transport, 0.0);
        let c2 = c.clone();
        c.publish_at(0, vec![2.0], 0.0);
        c2.publish_at(1, vec![3.0], 0.0);
        assert_eq!(c.transport().read_at(0, 0.0).unwrap(), vec![5.0]);
    }
}
