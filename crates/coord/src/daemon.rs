//! The background window ticker (the paper's user-space daemon loop).

use crate::AdmissionControl;
use covenant_enforce::next_aligned_boundary;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Data-plane hooks the daemon invokes around each window roll.
#[derive(Default)]
pub struct DaemonHooks {
    /// Supplies extra per-principal backlog (e.g. L4 parked connections)
    /// folded into the published demand.
    pub backlog: Option<Box<dyn Fn() -> Vec<f64> + Send>>,
    /// Runs after credits are installed (e.g. L4 drains parked connections
    /// against the fresh quota).
    pub after_roll: Option<Box<dyn Fn() + Send>>,
}

/// A running window ticker; stops and joins on drop.
pub struct WindowDaemon {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl WindowDaemon {
    /// Starts ticking `ctrl` every `window`, with optional hooks. Fails
    /// when the ticker thread cannot be spawned — without it no credits
    /// are ever installed, so callers must surface the error rather than
    /// run an enforcement-dead redirector.
    pub fn start(
        ctrl: Arc<AdmissionControl>,
        window: Duration,
        hooks: DaemonHooks,
    ) -> io::Result<Self> {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(format!("window-daemon-{}", ctrl.node()))
            .spawn(move || {
                let mut next = Instant::now() + window;
                while !stop2.load(Ordering::Relaxed) {
                    let now = Instant::now();
                    if now < next {
                        std::thread::sleep((next - now).min(Duration::from_millis(5)));
                        continue;
                    }
                    next = next_aligned_boundary(next, now, window);
                    let backlog = hooks.backlog.as_ref().map(|f| f());
                    ctrl.roll_window(backlog);
                    if let Some(after) = &hooks.after_roll {
                        after();
                    }
                }
            })?;
        Ok(WindowDaemon { stop, handle: Some(handle) })
    }

    /// Stops the ticker and joins it (idempotent).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for WindowDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coordinator;
    use covenant_agreements::{AgreementGraph, PrincipalId};
    use covenant_sched::SchedulerConfig;
    use covenant_tree::Topology;

    #[test]
    fn daemon_rolls_windows_in_background() {
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 100.0);
        let a = g.add_principal("A", 0.0);
        g.add_agreement(s, a, 0.5, 1.0).unwrap();
        let ctrl = AdmissionControl::new(
            0,
            &g.access_levels(),
            SchedulerConfig::community_default(),
            Coordinator::new(Topology::star(1, 0.0), 0.0),
        );
        let mut daemon = WindowDaemon::start(
            Arc::clone(&ctrl),
            Duration::from_millis(20),
            DaemonHooks::default(),
        )
        .unwrap();
        // Offer load; after a few windows the gate should be admitting.
        let principal = PrincipalId(1);
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut admitted = false;
        while Instant::now() < deadline {
            if ctrl.try_admit(principal, None).is_some() {
                admitted = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        daemon.shutdown();
        assert!(admitted, "daemon never installed credit");
    }

    #[test]
    fn hooks_are_invoked() {
        use std::sync::atomic::AtomicUsize;
        let mut g = AgreementGraph::new();
        let _s = g.add_principal("S", 10.0);
        let ctrl = AdmissionControl::new(
            0,
            &g.access_levels(),
            SchedulerConfig::community_default(),
            Coordinator::new(Topology::star(1, 0.0), 0.0),
        );
        let rolls = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&rolls);
        let hooks = DaemonHooks {
            backlog: Some(Box::new(|| vec![0.0])),
            after_roll: Some(Box::new(move || {
                r2.fetch_add(1, Ordering::Relaxed);
            })),
        };
        let mut daemon = WindowDaemon::start(ctrl, Duration::from_millis(10), hooks).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        while rolls.load(Ordering::Relaxed) < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        daemon.shutdown();
        assert!(rolls.load(Ordering::Relaxed) >= 3);
    }
}
