//! Thread-safe per-redirector admission state.

use crate::Coordinator;
use covenant_agreements::{AccessLevels, PrincipalId};
use covenant_sched::{
    Admission, CreditGate, GlobalView, Plan, RateEstimator, Request, SchedulerConfig,
    WindowScheduler,
};
use parking_lot::Mutex;
use std::sync::Arc;

struct Inner {
    /// Owns prepared LP matrices and the plan cache, so planning is `&mut`.
    scheduler: WindowScheduler,
    gate: CreditGate,
    estimator: RateEstimator,
    arrivals_this_window: Vec<f64>,
    last_plan: Plan,
    next_request_id: u64,
    admitted: u64,
    deferred: u64,
}

/// The admission state machine one redirector's data plane consults.
///
/// `try_admit` is called on the request path (HTTP handler thread or TCP
/// accept thread); `roll_window` is called by the [`crate::WindowDaemon`]
/// every scheduling window.
pub struct AdmissionControl {
    node: usize,
    coordinator: Coordinator,
    /// The window length, duplicated out of the scheduler so daemons can
    /// read it without taking the admission lock.
    window_secs: f64,
    inner: Mutex<Inner>,
}

impl AdmissionControl {
    /// Builds the admission control for tree node `node`.
    pub fn new(
        node: usize,
        levels: &AccessLevels,
        cfg: SchedulerConfig,
        coordinator: Coordinator,
    ) -> Arc<Self> {
        let n = levels.len();
        Arc::new(AdmissionControl {
            node,
            coordinator,
            window_secs: cfg.window_secs,
            inner: Mutex::new(Inner {
                scheduler: WindowScheduler::new(levels, cfg),
                gate: CreditGate::new(n, n),
                estimator: RateEstimator::new(n, 0.5),
                arrivals_this_window: vec![0.0; n],
                last_plan: Plan::zero(n, n),
                next_request_id: 0,
                admitted: 0,
                deferred: 0,
            }),
        })
    }

    /// The tree node this control plane instance belongs to.
    pub fn node(&self) -> usize {
        self.node
    }

    /// The scheduling window length, seconds (daemons must tick at exactly
    /// this cadence — quotas are scaled to it).
    pub fn window_secs(&self) -> f64 {
        self.window_secs
    }

    /// The shared coordinator.
    pub fn coordinator(&self) -> &Coordinator {
        &self.coordinator
    }

    /// Attempts to admit one unit-cost request for `principal`, preferring
    /// `preferred` server when it still has allocation (connection
    /// affinity). Returns the assigned server on success.
    pub fn try_admit(&self, principal: PrincipalId, preferred: Option<usize>) -> Option<usize> {
        let mut inner = self.inner.lock();
        inner.arrivals_this_window[principal.0] += 1.0;
        let id = inner.next_request_id;
        inner.next_request_id += 1;
        let req = Request::unit(id, principal, self.coordinator.now());
        match inner.gate.admit_with_preference(&req, preferred) {
            Admission::Admit { server } => {
                inner.admitted += 1;
                Some(server)
            }
            Admission::Defer => {
                inner.deferred += 1;
                None
            }
        }
    }

    /// Records an arrival without consulting the gate — used by explicit
    /// queuing, where requests always park and the per-window drain decides
    /// release (the paper's first L7 implementation).
    pub fn note_arrival(&self, principal: PrincipalId) {
        let mut inner = self.inner.lock();
        inner.arrivals_this_window[principal.0] += 1.0;
    }

    /// Like [`Self::try_admit`] but for *parked* work being reinjected: the
    /// request was already counted as an arrival when it first reached the
    /// redirector, and its continued presence is reported via the backlog
    /// hint, so it must not inflate the demand estimate again.
    pub fn readmit(&self, principal: PrincipalId, preferred: Option<usize>) -> Option<usize> {
        let mut inner = self.inner.lock();
        let id = inner.next_request_id;
        inner.next_request_id += 1;
        let req = Request::unit(id, principal, self.coordinator.now());
        match inner.gate.admit_with_preference(&req, preferred) {
            Admission::Admit { server } => {
                inner.admitted += 1;
                Some(server)
            }
            Admission::Defer => None,
        }
    }

    /// Rolls one scheduling window: folds the arrivals just observed into
    /// the demand estimator, publishes local demand (estimates plus any
    /// data-plane backlog, e.g. L4 parked connections) into the tree, reads
    /// the lagged global view, solves the LP, and installs fresh credits.
    pub fn roll_window(&self, backlog: Option<Vec<f64>>) {
        let mut inner = self.inner.lock();
        let arrivals = inner.arrivals_this_window.clone();
        inner.estimator.observe(&arrivals);
        for a in &mut inner.arrivals_this_window {
            *a = 0.0;
        }
        let mut demand: Vec<f64> = inner.estimator.estimates().to_vec();
        if let Some(b) = backlog {
            for (d, x) in demand.iter_mut().zip(b) {
                *d += x;
            }
        }
        // Publish while holding the lock: admissions pause briefly, but the
        // LP is tiny and windows are 100 ms.
        self.coordinator.publish(self.node, demand.clone());
        let view = match self.coordinator.read(self.node) {
            Some(v) => GlobalView::Queues(v),
            None => GlobalView::Unknown,
        };
        let plan = inner.scheduler.plan_window(&view, &demand);
        inner.gate.roll_window(&plan);
        inner.last_plan = plan;
    }

    /// `(hits, misses)` of the scheduler's plan cache since start.
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        self.inner.lock().scheduler.cache_stats()
    }

    /// The most recent installed plan (per-window request budgets).
    pub fn last_plan(&self) -> Plan {
        self.inner.lock().last_plan.clone()
    }

    /// (admitted, deferred) counters since start.
    pub fn counters(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.admitted, inner.deferred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covenant_agreements::AgreementGraph;
    use covenant_tree::Topology;

    fn levels() -> AccessLevels {
        // Server 100 req/s, A [0.2,1], B [0.8,1].
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 100.0);
        let a = g.add_principal("A", 0.0);
        let b = g.add_principal("B", 0.0);
        g.add_agreement(s, a, 0.2, 1.0).unwrap();
        g.add_agreement(s, b, 0.8, 1.0).unwrap();
        g.access_levels()
    }

    fn control() -> Arc<AdmissionControl> {
        AdmissionControl::new(
            0,
            &levels(),
            SchedulerConfig::community_default(),
            Coordinator::new(Topology::star(1, 0.0), 0.0),
        )
    }

    #[test]
    fn cold_start_defers_then_admits() {
        let ctrl = control();
        let a = PrincipalId(1);
        // No window rolled yet: everything defers.
        assert_eq!(ctrl.try_admit(a, None), None);
        assert_eq!(ctrl.try_admit(a, None), None);
        // Roll: estimator saw 2 arrivals → demand 2/window; plan admits 2.
        ctrl.roll_window(None);
        assert!(ctrl.try_admit(a, None).is_some());
        assert!(ctrl.try_admit(a, None).is_some());
        let (admitted, deferred) = ctrl.counters();
        assert_eq!((admitted, deferred), (2, 2));
    }

    #[test]
    fn quota_respects_agreement_share() {
        let ctrl = control();
        let a = PrincipalId(1);
        let b = PrincipalId(2);
        // Saturate both principals for a few windows to prime estimates.
        for _ in 0..6 {
            for _ in 0..30 {
                let _ = ctrl.try_admit(a, None);
                let _ = ctrl.try_admit(b, None);
            }
            ctrl.roll_window(None);
        }
        // One more saturated window: count admissions.
        let mut got_a = 0;
        let mut got_b = 0;
        for _ in 0..30 {
            if ctrl.try_admit(a, None).is_some() {
                got_a += 1;
            }
            if ctrl.try_admit(b, None).is_some() {
                got_b += 1;
            }
        }
        // Per 100 ms window: capacity 10; B entitled to 8, A to 2 (with
        // ±1 tolerance for credit carry-over).
        assert!((got_b as i64 - 8).abs() <= 1, "B got {got_b}");
        assert!((got_a as i64 - 2).abs() <= 1, "A got {got_a}");
    }

    #[test]
    fn backlog_hint_raises_demand() {
        let ctrl = control();
        let b = PrincipalId(2);
        // No arrivals at all, but a parked backlog of 5 for B.
        ctrl.roll_window(Some(vec![0.0, 0.0, 5.0]));
        // B now has quota ≥ 5 (capacity 10/window, B entitled to 8).
        let mut got = 0;
        for _ in 0..5 {
            if ctrl.try_admit(b, None).is_some() {
                got += 1;
            }
        }
        assert_eq!(got, 5);
    }

    #[test]
    fn last_plan_is_observable() {
        let ctrl = control();
        let a = PrincipalId(1);
        for _ in 0..3 {
            let _ = ctrl.try_admit(a, None);
        }
        ctrl.roll_window(None);
        let plan = ctrl.last_plan();
        assert!(plan.admitted(a) > 0.0);
    }
}
